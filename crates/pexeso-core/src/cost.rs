//! Cost model and optimal-m selection (Section III-E).
//!
//! The expected verification cost of a query workload is
//! `E = Σ_{q ∈ C} N(SQR(q', τ))` (Eq. 1), where `C` is the multiset of
//! query-vector occurrences in candidate pairs. `N` is upper-bounded via
//! per-dimension PDFs of the mapped vectors (Eq. 2):
//! `N̂ = min_i ∫ PDFᵢ over [q'ᵢ − τ − w/2, q'ᵢ + τ + w/2]`, with `w` the
//! leaf-cell width — the minimum over dimensions because a vector survives
//! only if *no* dimension filters it.
//!
//! Blocking is cheap (Table VI shows it is negligible), so candidate sets
//! are obtained by actually blocking a sampled workload per candidate `m`;
//! only verification is estimated. The paper optimises fractional `m` by
//! gradient descent and ceils; we evaluate the (small, discrete) range
//! exhaustively and refine with a parabola fit, which is equivalent here
//! and deterministic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::block::{block, BlockOutput};
use crate::column::ColumnSet;
use crate::config::{ExecPolicy, LemmaFlags, MAX_LEVELS};
use crate::error::Result;
use crate::exec;
use crate::grid::{GridParams, HierarchicalGrid};
use crate::histogram::Histogram;
use crate::invindex::InvertedIndex;
use crate::mapping::MappedVectors;
use crate::metric::Metric;
use crate::stats::SearchStats;
use crate::util::FastMap;

/// Vectors sampled from the repository as the query workload.
const WORKLOAD_SAMPLE: usize = 256;
/// Repository vectors sampled for blocking-based candidate counting.
const RV_SAMPLE: usize = 20_000;
/// Histogram bins per pivot dimension.
const PDF_BINS: usize = 64;
/// τ values of the synthetic workload, as fractions of the span
/// (the paper suggests 0–10 % of the maximum distance).
const WORKLOAD_TAUS: [f32; 3] = [0.02, 0.05, 0.08];

/// Per-dimension PDFs of the mapped repository vectors.
pub struct PivotSpacePdfs {
    pub dims: Vec<Histogram>,
    pub n_vectors: usize,
}

impl PivotSpacePdfs {
    pub fn build(mapped: &MappedVectors, span: f32) -> Self {
        let k = mapped.num_pivots();
        let dims = (0..k)
            .map(|i| Histogram::from_values(mapped.iter().map(|mv| mv[i]), 0.0, span, PDF_BINS))
            .collect();
        Self {
            dims,
            n_vectors: mapped.len(),
        }
    }

    /// Eq. 2: upper bound on the vectors inside `SQR(q', τ)` when the leaf
    /// cell width is `w`.
    pub fn n_max(&self, q_mapped: &[f32], tau: f32, cell_width: f32) -> f64 {
        let half = cell_width / 2.0;
        let frac = q_mapped
            .iter()
            .zip(self.dims.iter())
            .map(|(&q, h)| h.mass_in(q - tau - half, q + tau + half))
            .fold(f64::INFINITY, f64::min);
        frac * self.n_vectors as f64
    }
}

/// Expected verification cost (Eq. 1) of a sampled workload at grid depth
/// `m`, using real blocking for `C` and Eq. 2 for `N`.
fn expected_cost(
    m: usize,
    span: f32,
    workload: &MappedVectors,
    rv_sample: &MappedVectors,
    pdfs: &PivotSpacePdfs,
    taus: &[f32],
) -> Result<f64> {
    let params = GridParams::new(workload.num_pivots(), m, span)?;
    let hgq = HierarchicalGrid::build(params.clone(), workload)?;
    let hgrv = HierarchicalGrid::build_keys_only(params.clone(), rv_sample)?;
    let cell_width = params.cell_width(m);
    let mut total = 0.0f64;
    for &tau_frac in taus {
        let tau = tau_frac * span;
        let mut stats = SearchStats::new();
        let out = block(
            &hgq,
            &hgrv,
            workload,
            tau,
            LemmaFlags::all(),
            None,
            FastMap::default(),
            &mut stats,
        );
        for (q, cells) in &out.candidates {
            let nmax = pdfs.n_max(workload.get(*q as usize), tau, cell_width);
            total += nmax * cells.len() as f64;
        }
    }
    Ok(total)
}

/// Fit a parabola through three points around the discrete argmin and
/// return the fractional minimiser, mimicking the paper's gradient-descent
/// + ceiling step. Falls back to the discrete argmin at the range edges.
fn parabola_refine(costs: &[f64], argmin: usize) -> f64 {
    if argmin == 0 || argmin + 1 >= costs.len() {
        return (argmin + 1) as f64; // m is 1-based
    }
    let (y0, y1, y2) = (costs[argmin - 1], costs[argmin], costs[argmin + 1]);
    let denom = y0 - 2.0 * y1 + y2;
    if denom.abs() < 1e-12 {
        return (argmin + 1) as f64;
    }
    let offset = 0.5 * (y0 - y2) / denom;
    (argmin + 1) as f64 + offset.clamp(-1.0, 1.0)
}

/// Result of the optimal-m analysis, exposed for the Table VI companion
/// experiment ("optimal m obtained by analysis").
#[derive(Debug, Clone)]
pub struct LevelChoice {
    /// Expected cost per m (index 0 = m 1).
    pub costs: Vec<f64>,
    /// Fractional minimiser after parabola refinement.
    pub fractional_m: f64,
    /// Final integer choice: ceil(fractional), clamped to the legal range.
    pub chosen_m: usize,
}

/// Analyse the expected cost across m = 1..=MAX_LEVELS.
pub fn analyze_levels<M: Metric>(
    columns: &ColumnSet,
    rv_mapped: &MappedVectors,
    _pivots: &[Vec<f32>],
    _metric: &M,
    span: f32,
    seed: u64,
) -> Result<LevelChoice> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0571e5);

    // Workload: sampled repository vectors re-used as queries (option 1 in
    // Section III-E: "sample a subset of R as query workload").
    let n = rv_mapped.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    let workload_idx = &idx[..WORKLOAD_SAMPLE.min(n)];
    let k = rv_mapped.num_pivots();
    let mut wl_data = Vec::with_capacity(workload_idx.len() * k);
    for &i in workload_idx {
        wl_data.extend_from_slice(rv_mapped.get(i));
    }
    let workload = MappedVectors::from_raw(k, wl_data)?;

    // Sampled repository for blocking.
    let rv_idx = &idx[..RV_SAMPLE.min(n)];
    let mut rv_data = Vec::with_capacity(rv_idx.len() * k);
    for &i in rv_idx {
        rv_data.extend_from_slice(rv_mapped.get(i));
    }
    let rv_sample = MappedVectors::from_raw(k, rv_data)?;

    let pdfs = PivotSpacePdfs::build(rv_mapped, span);
    let _ = columns; // columns reserved for future workload-shaping

    let mut costs = Vec::with_capacity(MAX_LEVELS);
    for m in 1..=MAX_LEVELS {
        costs.push(expected_cost(
            m,
            span,
            &workload,
            &rv_sample,
            &pdfs,
            &WORKLOAD_TAUS,
        )?);
    }
    let argmin = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let fractional = parabola_refine(&costs, argmin);
    let chosen = (fractional.ceil() as usize).clamp(1, MAX_LEVELS);
    Ok(LevelChoice {
        costs,
        fractional_m: fractional,
        chosen_m: chosen,
    })
}

/// Cheap per-column bounds on the number of matching query records,
/// derived from the blocking output alone (no exact distances).
///
/// For a column `S` and query column `Q`:
///
/// * `lower[S]` counts query vectors whose *matching* cells (Lemma 5/6)
///   contain `S` — each is a definite match, so the exact count is at
///   least `lower[S]`;
/// * `upper[S]` counts query vectors whose matching **or** candidate
///   cells contain `S` — blocking is lossless, so a query vector that
///   appears in neither can never match `S` and the exact count is at
///   most `upper[S]`.
///
/// This is the top-k analogue of the Eq. 1 cost estimate: the same cheap
/// postings-walk that prices verification also brackets every column's
/// join size, which [`crate::verify::verify_topk`] uses to seed and then
/// adaptively tighten the k-th-best threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMatchBounds {
    /// Definite matches per column (exact count is ≥ this).
    pub lower: Vec<u32>,
    /// Possible matches per column (exact count is ≤ this).
    pub upper: Vec<u32>,
    /// Total vector appearances of the column across the query's matching
    /// and candidate cells — a density heuristic (columns saturate the
    /// per-query upper bound long before they differ in it, but a column
    /// with many vectors inside the query's cells is far more likely to
    /// match every query vector). Ordering only; never used for pruning.
    pub weight: Vec<u64>,
}

/// Compute [`ColumnMatchBounds`] with one postings walk. Deleted columns
/// get `(0, 0)`. The column space is sharded across the policy's threads
/// exactly like verification, so the result is identical for every policy.
pub fn column_match_bounds(
    blocked: &BlockOutput,
    inv: &InvertedIndex,
    n_cols: usize,
    n_q: usize,
    deleted: Option<&[bool]>,
    policy: ExecPolicy,
) -> ColumnMatchBounds {
    let shards = exec::map_ranges_min(policy, n_cols, 2, |cols| {
        bounds_range(blocked, inv, cols, n_q, deleted)
    });
    let mut lower = Vec::with_capacity(n_cols);
    let mut upper = Vec::with_capacity(n_cols);
    let mut weight = Vec::with_capacity(n_cols);
    for (lo, up, w) in shards {
        lower.extend(lo);
        upper.extend(up);
        weight.extend(w);
    }
    ColumnMatchBounds {
        lower,
        upper,
        weight,
    }
}

/// The bounds walk restricted to columns in `cols` (shard-local state).
fn bounds_range(
    blocked: &BlockOutput,
    inv: &InvertedIndex,
    cols: std::ops::Range<usize>,
    n_q: usize,
    deleted: Option<&[bool]>,
) -> (Vec<u32>, Vec<u32>, Vec<u64>) {
    let (lo, hi) = (cols.start, cols.end);
    let width = hi - lo;
    let mut lower = vec![0u32; width];
    let mut upper = vec![0u32; width];
    let mut weight = vec![0u64; width];
    // Generation stamps, one per query vector (gen = q + 1).
    let mut def_stamp = vec![0u32; width];
    let mut any_stamp = vec![0u32; width];
    let skip = |col: u32| -> bool { deleted.is_some_and(|d| d[col as usize]) };
    let mut mi = 0usize;
    let mut ci = 0usize;
    for q in 0..n_q as u32 {
        let gen = q + 1;
        if mi < blocked.matching.len() && blocked.matching[mi].0 == q {
            for &cell in &blocked.matching[mi].1 {
                let Some(postings) = inv.postings(cell) else {
                    continue;
                };
                for (slot, &col) in postings.cols.iter().enumerate() {
                    let c = col as usize;
                    if c < lo || c >= hi || skip(col) {
                        continue;
                    }
                    let s = c - lo;
                    weight[s] += postings.vectors_of(slot).len() as u64;
                    if def_stamp[s] != gen {
                        def_stamp[s] = gen;
                        lower[s] += 1;
                    }
                    if any_stamp[s] != gen {
                        any_stamp[s] = gen;
                        upper[s] += 1;
                    }
                }
            }
            mi += 1;
        }
        if ci < blocked.candidates.len() && blocked.candidates[ci].0 == q {
            for &cell in &blocked.candidates[ci].1 {
                let Some(postings) = inv.postings(cell) else {
                    continue;
                };
                for (slot, &col) in postings.cols.iter().enumerate() {
                    let c = col as usize;
                    if c < lo || c >= hi || skip(col) {
                        continue;
                    }
                    let s = c - lo;
                    weight[s] += postings.vectors_of(slot).len() as u64;
                    if any_stamp[s] != gen {
                        any_stamp[s] = gen;
                        upper[s] += 1;
                    }
                }
            }
            ci += 1;
        }
    }
    (lower, upper, weight)
}

/// Seed for the adaptive top-k threshold: the k-th best `(lower bound,
/// column id)` entry under the documented tie-break (count descending,
/// then id ascending). Because at least k columns reach their lower
/// bounds exactly or better, the final k-th best *exact* entry can never
/// rank below this seed — so any column whose upper-bound entry ranks
/// strictly below it is safely pruned before exact verification.
///
/// Returns `None` when fewer than `k` columns have a positive lower
/// bound (no sound seed exists yet; the threshold then grows only as the
/// result heap fills).
pub fn topk_seed(bounds: &ColumnMatchBounds, k: usize) -> Option<(u32, u32)> {
    if k == 0 {
        return None;
    }
    let mut entries: Vec<(u32, u32)> = bounds
        .lower
        .iter()
        .enumerate()
        .filter(|&(_, &lb)| lb > 0)
        .map(|(c, &lb)| (lb, c as u32))
        .collect();
    if entries.len() < k {
        return None;
    }
    // Only the k-th best entry (descending beat order: higher count
    // first, then lower id) is needed — select, don't sort.
    let (_, kth, _) =
        entries.select_nth_unstable_by(k - 1, |a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    Some(*kth)
}

/// Choose the grid depth for index construction.
pub fn choose_levels<M: Metric>(
    columns: &ColumnSet,
    rv_mapped: &MappedVectors,
    pivots: &[Vec<f32>],
    metric: &M,
    span: f32,
    seed: u64,
) -> Result<usize> {
    Ok(analyze_levels(columns, rv_mapped, pivots, metric, span, seed)?.chosen_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;
    use rand::Rng;

    fn random_columns(seed: u64, n_cols: usize, col_len: usize) -> ColumnSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 12;
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let mut vecs = Vec::new();
            for _ in 0..col_len {
                let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= n);
                vecs.push(v);
            }
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        columns
    }

    fn setup(seed: u64) -> (ColumnSet, MappedVectors, Vec<Vec<f32>>, f32) {
        let columns = random_columns(seed, 20, 40);
        let pivots: Vec<Vec<f32>> = (0..3)
            .map(|i| columns.store().get_raw(i * 11).to_vec())
            .collect();
        let mapped = MappedVectors::build(columns.store(), &pivots, &Euclidean, None).unwrap();
        let span = 2.0f32.max(mapped.max_coord()) + 1e-4;
        (columns, mapped, pivots, span)
    }

    #[test]
    fn pdfs_nmax_bounds_actual_counts() {
        let (_, mapped, _, span) = setup(1);
        let pdfs = PivotSpacePdfs::build(&mapped, span);
        let tau = 0.1 * span;
        // For a sample of query points, N̂ must upper-bound the true number
        // of vectors inside SQR (no dimension filters them).
        for qi in (0..mapped.len()).step_by(97) {
            let q = mapped.get(qi);
            let est = pdfs.n_max(q, tau, span / 16.0);
            let actual = (0..mapped.len())
                .filter(|&x| {
                    let xm = mapped.get(x);
                    q.iter().zip(xm.iter()).all(|(a, b)| (a - b).abs() <= tau)
                })
                .count() as f64;
            assert!(
                est + 1e-9 >= actual,
                "Eq.2 bound violated at q{qi}: est {est} < actual {actual}"
            );
        }
    }

    #[test]
    fn analyze_levels_returns_legal_choice() {
        let (columns, mapped, pivots, span) = setup(2);
        let choice = analyze_levels(&columns, &mapped, &pivots, &Euclidean, span, 7).unwrap();
        assert_eq!(choice.costs.len(), MAX_LEVELS);
        assert!((1..=MAX_LEVELS).contains(&choice.chosen_m));
        assert!(choice.fractional_m > 0.0);
        assert!(choice.costs.iter().all(|&c| c.is_finite() && c >= 0.0));
    }

    #[test]
    fn choice_is_deterministic() {
        let (columns, mapped, pivots, span) = setup(3);
        let a = choose_levels(&columns, &mapped, &pivots, &Euclidean, span, 9).unwrap();
        let b = choose_levels(&columns, &mapped, &pivots, &Euclidean, span, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn topk_seed_picks_kth_best_lower_bound() {
        let bounds = ColumnMatchBounds {
            lower: vec![0, 5, 3, 5, 1],
            upper: vec![2, 8, 6, 7, 4],
            weight: vec![0; 5],
        };
        // Beat order over positive lower bounds: (5,1), (5,3), (3,2), (1,4).
        assert_eq!(topk_seed(&bounds, 1), Some((5, 1)));
        assert_eq!(topk_seed(&bounds, 2), Some((5, 3)));
        assert_eq!(topk_seed(&bounds, 3), Some((3, 2)));
        assert_eq!(topk_seed(&bounds, 4), Some((1, 4)));
        // Fewer than k columns with a positive lower bound: no sound seed.
        assert_eq!(topk_seed(&bounds, 5), None);
        assert_eq!(topk_seed(&bounds, 0), None);
    }

    #[test]
    fn parabola_refine_interior_and_edges() {
        // Symmetric parabola around index 2 (m = 3).
        let costs = vec![9.0, 4.0, 1.0, 4.0, 9.0];
        let frac = parabola_refine(&costs, 2);
        assert!((frac - 3.0).abs() < 1e-9);
        // Edge argmin falls back to the discrete value.
        assert_eq!(parabola_refine(&costs, 0), 1.0);
        assert_eq!(parabola_refine(&costs, 4), 5.0);
        // Skewed: vertex shifts toward the cheaper neighbour (m=3 side).
        let skew = vec![5.0, 1.0, 2.0, 8.0];
        let f = parabola_refine(&skew, 1);
        assert!(f > 2.0 && f < 3.0, "frac {f}");
    }
}
