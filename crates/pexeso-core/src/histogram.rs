//! 1-D histograms and divergences.
//!
//! Used in two places: the cost model's per-dimension PDFs of mapped
//! vectors (Eq. 2), and the column-distribution histograms that drive the
//! JSD partitioner (Section IV).

/// A fixed-range histogram with mass normalised to 1 (when non-empty).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    bins: Vec<f64>,
    count: u64,
}

impl Histogram {
    /// Build over `[lo, hi]` with `nbins` bins; values outside the range
    /// clamp into the boundary bins.
    pub fn from_values(
        values: impl IntoIterator<Item = f32>,
        lo: f32,
        hi: f32,
        nbins: usize,
    ) -> Self {
        assert!(nbins > 0 && hi > lo, "bad histogram range/bins");
        let mut bins = vec![0.0f64; nbins];
        let mut count = 0u64;
        let width = (hi - lo) / nbins as f32;
        for v in values {
            let idx = (((v - lo) / width).floor() as i64).clamp(0, nbins as i64 - 1) as usize;
            bins[idx] += 1.0;
            count += 1;
        }
        if count > 0 {
            let inv = 1.0 / count as f64;
            bins.iter_mut().for_each(|b| *b *= inv);
        }
        Self {
            lo,
            hi,
            bins,
            count,
        }
    }

    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Normalised bin masses.
    pub fn masses(&self) -> &[f64] {
        &self.bins
    }

    /// Fraction of mass in `[a, b]` (bins overlapping the range count
    /// fully — a deliberate upper bound matching Eq. 2's role).
    pub fn mass_in(&self, a: f32, b: f32) -> f64 {
        if b < a || self.count == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f32;
        let first =
            (((a - self.lo) / width).floor() as i64).clamp(0, self.bins.len() as i64 - 1) as usize;
        let last =
            (((b - self.lo) / width).floor() as i64).clamp(0, self.bins.len() as i64 - 1) as usize;
        self.bins[first..=last].iter().sum()
    }

    /// Smoothed probability vector (Laplace ε), normalised to sum 1 — the
    /// representation handed to the divergence functions.
    pub fn smoothed(&self, eps: f64) -> Vec<f64> {
        let total: f64 = self.bins.iter().sum::<f64>() + eps * self.bins.len() as f64;
        self.bins.iter().map(|b| (b + eps) / total).collect()
    }
}

/// KL divergence between two probability vectors (natural log). Assumes
/// strictly positive entries (use [`Histogram::smoothed`]).
pub fn kl_divergence(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&pa, &pb)| if pa > 0.0 { pa * (pa / pb).ln() } else { 0.0 })
        .sum()
}

/// The divergence the paper calls JSD (Section IV): the symmetrised KL
/// `(KL(A‖B) + KL(B‖A)) / 2`.
pub fn jsd_paper(a: &[f64], b: &[f64]) -> f64 {
    (kl_divergence(a, b) + kl_divergence(b, a)) / 2.0
}

/// The standard Jensen–Shannon divergence (bounded by ln 2), provided for
/// comparison/ablation.
pub fn jensen_shannon(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let m: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| (x + y) / 2.0).collect();
    (kl_divergence(a, &m) + kl_divergence(b, &m)) / 2.0
}

/// Element-wise mean of probability vectors (k-means centroid update).
pub fn mean_distribution(dists: &[&[f64]]) -> Vec<f64> {
    assert!(!dists.is_empty());
    let n = dists[0].len();
    let mut out = vec![0.0f64; n];
    for d in dists {
        debug_assert_eq!(d.len(), n);
        for (o, x) in out.iter_mut().zip(d.iter()) {
            *o += x;
        }
    }
    let inv = 1.0 / dists.len() as f64;
    out.iter_mut().for_each(|x| *x *= inv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_masses_sum_to_one() {
        let h = Histogram::from_values([0.1f32, 0.2, 0.5, 0.9], 0.0, 1.0, 4);
        let sum: f64 = h.masses().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let h = Histogram::from_values([-5.0f32, 5.0], 0.0, 1.0, 2);
        assert!((h.masses()[0] - 0.5).abs() < 1e-12);
        assert!((h.masses()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mass_in_covers_overlapping_bins() {
        let h = Histogram::from_values([0.05f32, 0.15, 0.25, 0.35], 0.0, 0.4, 4);
        assert!((h.mass_in(0.0, 0.09) - 0.25).abs() < 1e-12);
        assert!((h.mass_in(0.12, 0.28) - 0.5).abs() < 1e-12);
        assert_eq!(h.mass_in(0.3, 0.1), 0.0);
        assert!((h.mass_in(-1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::from_values(std::iter::empty::<f32>(), 0.0, 1.0, 4);
        assert_eq!(h.mass_in(0.0, 1.0), 0.0);
        let s = h.smoothed(1e-6);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kl_zero_iff_equal() {
        let a = vec![0.25; 4];
        assert!(kl_divergence(&a, &a).abs() < 1e-12);
        let b = vec![0.7, 0.1, 0.1, 0.1];
        assert!(kl_divergence(&a, &b) > 0.0);
    }

    #[test]
    fn jsd_paper_is_symmetric_and_nonnegative() {
        let a = vec![0.7, 0.1, 0.1, 0.1];
        let b = vec![0.1, 0.1, 0.1, 0.7];
        assert!((jsd_paper(&a, &b) - jsd_paper(&b, &a)).abs() < 1e-12);
        assert!(jsd_paper(&a, &b) > 0.0);
        assert!(jsd_paper(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn jensen_shannon_bounded_by_ln2() {
        let a = vec![1.0 - 3e-9, 1e-9, 1e-9, 1e-9];
        let b = vec![1e-9, 1e-9, 1e-9, 1.0 - 3e-9];
        let j = jensen_shannon(&a, &b);
        assert!(j > 0.0 && j <= std::f64::consts::LN_2 + 1e-9, "jsd={j}");
    }

    #[test]
    fn mean_distribution_averages() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let m = mean_distribution(&[&a, &b]);
        assert_eq!(m, vec![0.5, 0.5]);
    }
}
