//! Verification: Algorithm 2 over the inverted index.
//!
//! Matching pairs increment the match map directly; candidate pairs walk
//! the postings of their leaf cells, filtering vectors with Lemma 1,
//! accepting with Lemma 2, and paying an exact distance computation only
//! for the survivors. Two early-termination rules apply per column:
//!
//! * **joinable-skip** — once a column's match count reaches `T`, it is
//!   marked joinable and never touched again;
//! * **Lemma 7** — once a column has accumulated so many definite
//!   mismatches that even matching every remaining query vector cannot
//!   reach `T` (`|Q| − mismatch < T`), it is pruned.
//!
//! The paper realises the per-column ordering with a document-at-a-time
//! cursor merge; we achieve the identical skip behaviour with per-query
//! generation stamps (`matched`/`seen`), which avoids the priority queue
//! while still touching each (query vector, column) group once.
//!
//! ## Parallel verification
//!
//! All per-column state (match/mismatch counts, stamps, joinable/pruned
//! flags) is independent across columns: a column's outcome depends only on
//! the query-vector order, never on other columns. [`verify_with`]
//! therefore shards the column id space into contiguous ranges, runs the
//! identical scan per shard (each shard skipping postings entries outside
//! its range), and concatenates shard results in range order — making
//! [`ExecPolicy::Parallel`] output byte-identical to
//! [`ExecPolicy::Sequential`]. Exact distances go through the early-exit
//! [`Metric::dist_le`] kernel, which answers `d ≤ τ` without a `sqrt` and
//! usually without touching every dimension.
//!
//! Trade-off: every shard walks the full blocked pair lists and skips
//! postings entries outside its column range, so the cheap postings
//! traversal is repeated once per shard while the expensive per-vector
//! work is split. Speedup is therefore sublinear in threads on
//! postings-heavy/verification-light workloads; pre-partitioning the
//! postings by column shard would remove the rescan if that ever
//! dominates.

use std::ops::Range;

use crate::block::BlockOutput;
use crate::column::{ColumnId, ColumnSet};
use crate::config::{ExecPolicy, LemmaFlags};
use crate::exec;
use crate::invindex::InvertedIndex;
use crate::lemmas;
use crate::mapping::MappedVectors;
use crate::metric::Metric;
use crate::stats::SearchStats;
use crate::vector::VectorStore;

/// Everything verification needs to resolve a candidate pair.
pub struct VerifyContext<'a, M: Metric> {
    pub columns: &'a ColumnSet,
    /// Flat vector id → column id map.
    pub vec_col: &'a [u32],
    /// Mapped repository vectors (for Lemma 1/2 checks).
    pub rv_mapped: &'a MappedVectors,
    pub inv: &'a InvertedIndex,
    pub metric: &'a M,
    pub query: &'a VectorStore,
    pub query_mapped: &'a MappedVectors,
    pub tau: f32,
    /// Absolute joinability threshold T. A value larger than the query
    /// size disables both early-termination rules, yielding exact match
    /// counts for every column (used by top-k search).
    pub t_abs: usize,
    pub flags: LemmaFlags,
    /// Tombstoned columns to skip entirely (lazy deletion).
    pub deleted: Option<&'a [bool]>,
}

/// Result of verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Columns whose joinability reached T, ascending by id.
    pub joinable: Vec<ColumnId>,
    /// Per-column matched query-vector counts. Lower bounds for columns
    /// that hit an early-termination rule.
    pub match_counts: Vec<u32>,
    /// Per-column definite-mismatch counts accumulated before termination.
    pub mismatch_counts: Vec<u32>,
}

/// Run Algorithm 2 single-threaded.
pub fn verify<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    stats: &mut SearchStats,
) -> VerifyOutcome {
    verify_with(ctx, blocked, stats, ExecPolicy::Sequential)
}

/// Run Algorithm 2, sharding the column space across the policy's threads.
/// The outcome (and every counter in `stats`) is identical for every
/// policy; only wall-clock changes.
pub fn verify_with<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    stats: &mut SearchStats,
    policy: ExecPolicy,
) -> VerifyOutcome {
    let n_cols = ctx.columns.n_columns();
    let threads = policy.effective_threads();
    if threads <= 1 || n_cols < 2 {
        return verify_range(ctx, blocked, 0..n_cols, stats);
    }
    let shards = exec::map_ranges_min(policy, n_cols, 2, |cols| {
        let mut shard_stats = SearchStats::new();
        let outcome = verify_range(ctx, blocked, cols, &mut shard_stats);
        (outcome, shard_stats)
    });
    let mut joinable = Vec::new();
    let mut match_counts = Vec::with_capacity(n_cols);
    let mut mismatch_counts = Vec::with_capacity(n_cols);
    for (outcome, shard_stats) in shards {
        // Ranges are contiguous and ascending, so plain concatenation
        // reproduces the sequential layout.
        joinable.extend(outcome.joinable);
        match_counts.extend(outcome.match_counts);
        mismatch_counts.extend(outcome.mismatch_counts);
        stats.merge(&shard_stats);
    }
    VerifyOutcome {
        joinable,
        match_counts,
        mismatch_counts,
    }
}

/// The Algorithm 2 scan restricted to columns in `cols`. Per-column state
/// never crosses column boundaries, so running disjoint ranges (in any
/// interleaving) and concatenating equals one full sequential run.
fn verify_range<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    cols: Range<usize>,
    stats: &mut SearchStats,
) -> VerifyOutcome {
    let (lo, hi) = (cols.start, cols.end);
    let width = hi - lo;
    let n_q = ctx.query.len();
    // T beyond |Q| can never be reached: early termination stays off and
    // the loop produces exact per-column counts (top-k mode).
    let terminable = ctx.t_abs <= n_q;
    let mut match_counts = vec![0u32; width];
    let mut mismatch_counts = vec![0u32; width];
    let mut joinable = vec![false; width];
    let mut pruned = vec![false; width];
    if let Some(deleted) = ctx.deleted {
        debug_assert_eq!(deleted.len(), ctx.columns.n_columns());
        for (p, &d) in pruned.iter_mut().zip(&deleted[lo..hi]) {
            *p = d;
        }
    }
    // Generation stamps: gen = q + 1 marks "this query vector".
    let mut matched_stamp = vec![0u32; width];
    let mut seen_stamp = vec![0u32; width];
    let mut seen_list: Vec<u32> = Vec::new();

    // Cursors into the two (query-sorted) pair lists.
    let mut mi = 0usize;
    let mut ci = 0usize;

    for q in 0..n_q as u32 {
        let gen = q + 1;

        // 1. Matching pairs: all postings columns of the cells match q.
        if mi < blocked.matching.len() && blocked.matching[mi].0 == q {
            for &cell in &blocked.matching[mi].1 {
                let Some(postings) = ctx.inv.postings(cell) else {
                    continue;
                };
                for &col in &postings.cols {
                    let Some(c) = shard_slot(col, lo, hi) else {
                        continue;
                    };
                    if joinable[c] || pruned[c] || matched_stamp[c] == gen {
                        continue;
                    }
                    matched_stamp[c] = gen;
                    match_counts[c] += 1;
                    if terminable && match_counts[c] as usize >= ctx.t_abs {
                        joinable[c] = true;
                        stats.early_joinable += 1;
                    }
                }
            }
            mi += 1;
        }

        // 2. Candidate pairs: verify cell contents column by column.
        if ci < blocked.candidates.len() && blocked.candidates[ci].0 == q {
            let qm = ctx.query_mapped.get(q as usize);
            let qv = ctx.query.get_raw(q as usize);
            for &cell in &blocked.candidates[ci].1 {
                let Some(postings) = ctx.inv.postings(cell) else {
                    continue;
                };
                for (i, &col) in postings.cols.iter().enumerate() {
                    let Some(c) = shard_slot(col, lo, hi) else {
                        continue;
                    };
                    if joinable[c] || pruned[c] || matched_stamp[c] == gen {
                        continue;
                    }
                    if seen_stamp[c] != gen {
                        seen_stamp[c] = gen;
                        seen_list.push(col);
                    }
                    for &vid in postings.vectors_of(i) {
                        let xm = ctx.rv_mapped.get(vid as usize);
                        if ctx.flags.lemma1_vector_filter && lemmas::lemma1_filter(qm, xm, ctx.tau)
                        {
                            stats.lemma1_filtered += 1;
                            continue;
                        }
                        let is_match = if ctx.flags.lemma2_vector_match
                            && lemmas::lemma2_match(qm, xm, ctx.tau)
                        {
                            stats.lemma2_matched += 1;
                            true
                        } else {
                            stats.distance_computations += 1;
                            let xv = ctx.columns.store().get_raw(vid as usize);
                            ctx.metric.dist_le(qv, xv, ctx.tau)
                        };
                        if is_match {
                            matched_stamp[c] = gen;
                            match_counts[c] += 1;
                            if terminable && match_counts[c] as usize >= ctx.t_abs {
                                joinable[c] = true;
                                stats.early_joinable += 1;
                            }
                            break;
                        }
                    }
                }
            }
            ci += 1;
        }

        // 3. Definite mismatches for q: columns seen in candidates with no
        //    match found. Blocking guarantees all potentially-matching
        //    vectors of the column were in the candidate cells, so q can
        //    never match this column — Lemma 7 may now prune it.
        for col in seen_list.drain(..) {
            let c = (col as usize) - lo;
            if matched_stamp[c] != gen && !joinable[c] && !pruned[c] {
                mismatch_counts[c] += 1;
                if terminable && n_q - (mismatch_counts[c] as usize) < ctx.t_abs {
                    pruned[c] = true;
                    stats.lemma7_pruned += 1;
                }
            }
        }
    }

    let joinable_ids = (0..width)
        .filter(|&c| joinable[c])
        .map(|c| ColumnId((lo + c) as u32))
        .collect();
    VerifyOutcome {
        joinable: joinable_ids,
        match_counts,
        mismatch_counts,
    }
}

/// Shard-local slot of a global column id, or `None` when the column
/// belongs to another shard.
#[inline(always)]
fn shard_slot(col: u32, lo: usize, hi: usize) -> Option<usize> {
    let c = col as usize;
    if c >= lo && c < hi {
        Some(c - lo)
    } else {
        None
    }
}

/// Resolve the ⟨vec_col⟩ lookup for callers that track it separately.
#[inline]
pub fn column_of(vec_col: &[u32], vid: u32) -> ColumnId {
    ColumnId(vec_col[vid as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{block, quick_browse};
    use crate::config::LemmaFlags;
    use crate::grid::{GridParams, HierarchicalGrid};
    use crate::metric::Euclidean;
    use crate::util::FastMap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference implementation: exhaustive scan.
    fn naive_joinable(
        query: &VectorStore,
        columns: &ColumnSet,
        tau: f32,
        t_abs: usize,
    ) -> Vec<ColumnId> {
        let mut out = Vec::new();
        for (ci, col) in columns.columns().iter().enumerate() {
            let mut count = 0usize;
            for q in query.iter() {
                let matched = col
                    .vector_range()
                    .any(|v| Euclidean.dist(q, columns.store().get_raw(v as usize)) <= tau);
                if matched {
                    count += 1;
                }
            }
            if count >= t_abs {
                out.push(ColumnId(ci as u32));
            }
        }
        out
    }

    fn random_instance(
        seed: u64,
        n_cols: usize,
        col_len: usize,
        nq: usize,
    ) -> (VectorStore, ColumnSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 10;
        let unit = |rng: &mut StdRng| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            v
        };
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng);
            query.push(&v).unwrap();
        }
        (query, columns)
    }

    fn run_pexeso_verify(
        query: &VectorStore,
        columns: &ColumnSet,
        tau: f32,
        t_abs: usize,
        flags: LemmaFlags,
        with_quick_browse: bool,
    ) -> (Vec<ColumnId>, SearchStats) {
        let metric = Euclidean;
        let pivots: Vec<Vec<f32>> = (0..3)
            .map(|i| {
                columns
                    .store()
                    .get_raw(i * 5 % columns.n_vectors())
                    .to_vec()
            })
            .collect();
        let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
        let q_mapped = MappedVectors::build(query, &pivots, &metric, None).unwrap();
        let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
        let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
        let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();

        let mut stats = SearchStats::new();
        let (handled, seeded) = if with_quick_browse {
            let mut seeded = FastMap::default();
            let handled = quick_browse(&hgq, &inv, &mut seeded, &mut stats);
            (Some(handled), seeded)
        } else {
            (None, FastMap::default())
        };
        let blocked = block(
            &hgq,
            &hgrv,
            &q_mapped,
            tau,
            flags,
            handled.as_ref(),
            seeded,
            &mut stats,
        );
        let ctx = VerifyContext {
            columns,
            vec_col: &vec_col,
            rv_mapped: &rv_mapped,
            inv: &inv,
            metric: &metric,
            query,
            query_mapped: &q_mapped,
            tau,
            t_abs,
            flags,
            deleted: None,
        };
        let outcome = verify(&ctx, &blocked, &mut stats);
        (outcome.joinable, stats)
    }

    #[test]
    fn agrees_with_naive_scan() {
        for seed in 0..5u64 {
            let (query, columns) = random_instance(seed, 12, 30, 8);
            for tau in [0.2f32, 0.5, 0.9] {
                for t_abs in [1usize, 3, 6] {
                    let expected = naive_joinable(&query, &columns, tau, t_abs);
                    let (got, _) =
                        run_pexeso_verify(&query, &columns, tau, t_abs, LemmaFlags::all(), true);
                    assert_eq!(got, expected, "seed={seed} tau={tau} T={t_abs}");
                }
            }
        }
    }

    /// Column-sharded parallel verification is byte-identical to the
    /// sequential scan: same joinable set, same exact counts, same
    /// early-termination and lemma counters.
    #[test]
    fn parallel_verify_is_byte_identical() {
        for seed in 0..4u64 {
            let (query, columns) = random_instance(seed * 7 + 1, 13, 25, 9);
            let metric = Euclidean;
            let pivots: Vec<Vec<f32>> = (0..3)
                .map(|i| {
                    columns
                        .store()
                        .get_raw(i * 5 % columns.n_vectors())
                        .to_vec()
                })
                .collect();
            let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
            let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
            let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
            let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
            let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
            let vec_col = columns.vector_to_column();
            let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
            for tau in [0.1f32, 0.4, 0.8] {
                for t_abs in [1usize, 4, query.len() + 1] {
                    let mut stats = SearchStats::new();
                    let blocked = block(
                        &hgq,
                        &hgrv,
                        &q_mapped,
                        tau,
                        LemmaFlags::all(),
                        None,
                        FastMap::default(),
                        &mut stats,
                    );
                    let ctx = VerifyContext {
                        columns: &columns,
                        vec_col: &vec_col,
                        rv_mapped: &rv_mapped,
                        inv: &inv,
                        metric: &metric,
                        query: &query,
                        query_mapped: &q_mapped,
                        tau,
                        t_abs,
                        flags: LemmaFlags::all(),
                        deleted: None,
                    };
                    let mut seq_stats = SearchStats::new();
                    let seq = verify(&ctx, &blocked, &mut seq_stats);
                    for threads in [2usize, 3, 8, 64] {
                        let mut par_stats = SearchStats::new();
                        let par = verify_with(
                            &ctx,
                            &blocked,
                            &mut par_stats,
                            crate::config::ExecPolicy::Parallel { threads },
                        );
                        assert_eq!(
                            seq, par,
                            "seed={seed} tau={tau} T={t_abs} threads={threads}"
                        );
                        assert_eq!(
                            seq_stats.distance_computations, par_stats.distance_computations,
                            "distance counter diverged (threads={threads})"
                        );
                        assert_eq!(seq_stats.early_joinable, par_stats.early_joinable);
                        assert_eq!(seq_stats.lemma7_pruned, par_stats.lemma7_pruned);
                        assert_eq!(seq_stats.lemma1_filtered, par_stats.lemma1_filtered);
                        assert_eq!(seq_stats.lemma2_matched, par_stats.lemma2_matched);
                    }
                }
            }
        }
    }

    #[test]
    fn agrees_under_every_ablation() {
        let (query, columns) = random_instance(77, 10, 25, 6);
        let tau = 0.5;
        let t_abs = 3;
        let expected = naive_joinable(&query, &columns, tau, t_abs);
        for flags in [
            LemmaFlags::all(),
            LemmaFlags::without_lemma1(),
            LemmaFlags::without_lemma2(),
            LemmaFlags::without_lemma34(),
            LemmaFlags::without_lemma56(),
        ] {
            for qb in [true, false] {
                let (got, _) = run_pexeso_verify(&query, &columns, tau, t_abs, flags, qb);
                assert_eq!(got, expected, "flags={flags:?} quick_browse={qb}");
            }
        }
    }

    #[test]
    fn lemma7_prunes_hopeless_columns() {
        let (query, columns) = random_instance(5, 8, 20, 10);
        // Very tight tau and T = |Q|: nearly every column should be pruned
        // long before all 10 query vectors are checked.
        let (_, stats) = run_pexeso_verify(&query, &columns, 0.05, 10, LemmaFlags::all(), true);
        assert!(
            stats.lemma7_pruned > 0,
            "expected lemma-7 prunes: {stats:?}"
        );
    }

    #[test]
    fn early_joinable_triggers_on_loose_thresholds() {
        let (query, columns) = random_instance(6, 8, 20, 10);
        let (joinable, stats) =
            run_pexeso_verify(&query, &columns, 1.5, 1, LemmaFlags::all(), true);
        assert!(!joinable.is_empty());
        assert!(stats.early_joinable as usize >= joinable.len());
    }

    #[test]
    fn lemma1_reduces_distance_computations() {
        let (query, columns) = random_instance(7, 10, 40, 8);
        let (_, with_l1) = run_pexeso_verify(&query, &columns, 0.3, 3, LemmaFlags::all(), true);
        let (_, without_l1) =
            run_pexeso_verify(&query, &columns, 0.3, 3, LemmaFlags::without_lemma1(), true);
        assert!(
            with_l1.distance_computations <= without_l1.distance_computations,
            "lemma1 should not increase distance computations: {} vs {}",
            with_l1.distance_computations,
            without_l1.distance_computations
        );
    }

    #[test]
    fn match_counts_exact_without_early_termination() {
        // T = |Q| + 1 is unreachable, so no early termination fires and the
        // match counts must equal the naive per-column counts.
        let (query, columns) = random_instance(8, 6, 15, 5);
        let tau = 0.6;
        let metric = Euclidean;
        let naive_counts: Vec<u32> = columns
            .columns()
            .iter()
            .map(|col| {
                query
                    .iter()
                    .filter(|q| {
                        col.vector_range()
                            .any(|v| metric.dist(q, columns.store().get_raw(v as usize)) <= tau)
                    })
                    .count() as u32
            })
            .collect();
        let pivots: Vec<Vec<f32>> = (0..3)
            .map(|i| columns.store().get_raw(i).to_vec())
            .collect();
        let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
        let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
        let params = GridParams::new(3, 3, 2.0 + 1e-4).unwrap();
        let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
        let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
        let mut stats = SearchStats::new();
        let blocked = block(
            &hgq,
            &hgrv,
            &q_mapped,
            tau,
            LemmaFlags::all(),
            None,
            FastMap::default(),
            &mut stats,
        );
        let ctx = VerifyContext {
            columns: &columns,
            vec_col: &vec_col,
            rv_mapped: &rv_mapped,
            inv: &inv,
            metric: &metric,
            query: &query,
            query_mapped: &q_mapped,
            tau,
            t_abs: query.len() + 1,
            flags: LemmaFlags::all(),
            deleted: None,
        };
        let outcome = verify(&ctx, &blocked, &mut stats);
        assert_eq!(outcome.match_counts, naive_counts);
        assert!(outcome.joinable.is_empty());
    }
}
