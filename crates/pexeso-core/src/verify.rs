//! Verification: Algorithm 2 over the inverted index.
//!
//! Matching pairs increment the match map directly; candidate pairs walk
//! the postings of their leaf cells, filtering vectors with Lemma 1,
//! accepting with Lemma 2, and paying an exact distance computation only
//! for the survivors. Two early-termination rules apply per column:
//!
//! * **joinable-skip** — once a column's match count reaches `T`, it is
//!   marked joinable and never touched again;
//! * **Lemma 7** — once a column has accumulated so many definite
//!   mismatches that even matching every remaining query vector cannot
//!   reach `T` (`|Q| − mismatch < T`), it is pruned.
//!
//! The paper realises the per-column ordering with a document-at-a-time
//! cursor merge; we achieve the identical skip behaviour with per-query
//! generation stamps (`matched`/`seen`), which avoids the priority queue
//! while still touching each (query vector, column) group once.
//!
//! ## Parallel verification
//!
//! All per-column state (match/mismatch counts, stamps, joinable/pruned
//! flags) is independent across columns: a column's outcome depends only on
//! the query-vector order, never on other columns. [`verify_with`]
//! therefore shards the column id space into contiguous ranges, runs the
//! identical scan per shard (each shard skipping postings entries outside
//! its range), and concatenates shard results in range order — making
//! [`ExecPolicy::Parallel`] output byte-identical to
//! [`ExecPolicy::Sequential`]. Exact distances go through the early-exit
//! [`Metric::dist_le`] kernel, which answers `d ≤ τ` without a `sqrt` and
//! usually without touching every dimension.
//!
//! Trade-off: every shard walks the full blocked pair lists and skips
//! postings entries outside its column range, so the cheap postings
//! traversal is repeated once per shard while the expensive per-vector
//! work is split. Speedup is therefore sublinear in threads on
//! postings-heavy/verification-light workloads; pre-partitioning the
//! postings by column shard would remove the rescan if that ever
//! dominates.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::ops::Range;

use crate::block::BlockOutput;
use crate::column::{ColumnId, ColumnSet};
use crate::config::{ExecPolicy, LemmaFlags};
use crate::cost::ColumnMatchBounds;
use crate::exec;
use crate::explain::TopkExplain;
use crate::invindex::{CellPostings, InvertedIndex};
use crate::lemmas;
use crate::mapping::MappedVectors;
use crate::metric::Metric;
use crate::query::{BudgetGuard, Exceeded};
use crate::stats::SearchStats;
use crate::vector::VectorStore;

/// Everything verification needs to resolve a candidate pair.
pub struct VerifyContext<'a, M: Metric> {
    pub columns: &'a ColumnSet,
    /// Flat vector id → column id map.
    pub vec_col: &'a [u32],
    /// Mapped repository vectors (for Lemma 1/2 checks).
    pub rv_mapped: &'a MappedVectors,
    pub inv: &'a InvertedIndex,
    pub metric: &'a M,
    pub query: &'a VectorStore,
    pub query_mapped: &'a MappedVectors,
    pub tau: f32,
    /// Absolute joinability threshold T. A value larger than the query
    /// size disables both early-termination rules, yielding exact match
    /// counts for every column (used by top-k search).
    pub t_abs: usize,
    pub flags: LemmaFlags,
    /// Tombstoned columns to skip entirely (lazy deletion).
    pub deleted: Option<&'a [bool]>,
}

/// Result of verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Columns whose joinability reached T, ascending by id.
    pub joinable: Vec<ColumnId>,
    /// Per-column matched query-vector counts. Lower bounds for columns
    /// that hit an early-termination rule.
    pub match_counts: Vec<u32>,
    /// Per-column definite-mismatch counts accumulated before termination.
    pub mismatch_counts: Vec<u32>,
}

/// Run Algorithm 2 single-threaded.
pub fn verify<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    stats: &mut SearchStats,
) -> VerifyOutcome {
    verify_with(ctx, blocked, stats, ExecPolicy::Sequential)
}

/// Run Algorithm 2, sharding the column space across the policy's threads.
/// The outcome (and every counter in `stats`) is identical for every
/// policy; only wall-clock changes.
pub fn verify_with<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    stats: &mut SearchStats,
    policy: ExecPolicy,
) -> VerifyOutcome {
    verify_budgeted(ctx, blocked, stats, policy, None).0
}

/// [`verify_with`] under an optional per-query budget, checked at the top
/// of every query-vector iteration of the scan. A budgeted scan runs
/// sequentially regardless of `policy` so the cutoff point — and therefore
/// the partial outcome — is deterministic: column shards would otherwise
/// each trip the cap at a thread-dependent place. When a limit trips, the
/// outcome reflects the scan up to that query vector and the tripped limit
/// is returned alongside it.
pub fn verify_budgeted<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    stats: &mut SearchStats,
    policy: ExecPolicy,
    budget: Option<&BudgetGuard>,
) -> (VerifyOutcome, Option<Exceeded>) {
    let n_cols = ctx.columns.n_columns();
    let threads = policy.effective_threads();
    if budget.is_some() || threads <= 1 || n_cols < 2 {
        return verify_range(ctx, blocked, 0..n_cols, stats, budget);
    }
    let shards = exec::map_ranges_min(policy, n_cols, 2, |cols| {
        let mut shard_stats = SearchStats::new();
        let (outcome, _) = verify_range(ctx, blocked, cols, &mut shard_stats, None);
        (outcome, shard_stats)
    });
    let mut joinable = Vec::new();
    let mut match_counts = Vec::with_capacity(n_cols);
    let mut mismatch_counts = Vec::with_capacity(n_cols);
    for (outcome, shard_stats) in shards {
        // Ranges are contiguous and ascending, so plain concatenation
        // reproduces the sequential layout.
        joinable.extend(outcome.joinable);
        match_counts.extend(outcome.match_counts);
        mismatch_counts.extend(outcome.mismatch_counts);
        stats.merge(&shard_stats);
    }
    (
        VerifyOutcome {
            joinable,
            match_counts,
            mismatch_counts,
        },
        None,
    )
}

/// The Algorithm 2 scan restricted to columns in `cols`. Per-column state
/// never crosses column boundaries, so running disjoint ranges (in any
/// interleaving) and concatenating equals one full sequential run. The
/// optional budget is checked once per query vector — the verify loop's
/// natural checkpoint — and a trip ends the scan there.
fn verify_range<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    cols: Range<usize>,
    stats: &mut SearchStats,
    budget: Option<&BudgetGuard>,
) -> (VerifyOutcome, Option<Exceeded>) {
    let (lo, hi) = (cols.start, cols.end);
    let width = hi - lo;
    let n_q = ctx.query.len();
    // T beyond |Q| can never be reached: early termination stays off and
    // the loop produces exact per-column counts (top-k mode).
    let terminable = ctx.t_abs <= n_q;
    let mut match_counts = vec![0u32; width];
    let mut mismatch_counts = vec![0u32; width];
    let mut joinable = vec![false; width];
    let mut pruned = vec![false; width];
    if let Some(deleted) = ctx.deleted {
        debug_assert_eq!(deleted.len(), ctx.columns.n_columns());
        for (p, &d) in pruned.iter_mut().zip(&deleted[lo..hi]) {
            *p = d;
        }
    }
    // Generation stamps: gen = q + 1 marks "this query vector".
    let mut matched_stamp = vec![0u32; width];
    let mut seen_stamp = vec![0u32; width];
    let mut seen_list: Vec<u32> = Vec::new();

    // Cursors into the two (query-sorted) pair lists.
    let mut mi = 0usize;
    let mut ci = 0usize;
    let mut exceeded = None;

    // With both vector-level lemmas off the candidate inner loop is a pure
    // distance gather, eligible for `Metric::dist_le_first`.
    let gather = !ctx.flags.lemma1_vector_filter && !ctx.flags.lemma2_vector_match;
    let arena = ctx.columns.store().raw_data();
    let dim = ctx.columns.store().dim();

    for q in 0..n_q as u32 {
        if let Some(guard) = budget {
            if let Some(e) = guard.check(stats.distance_computations) {
                exceeded = Some(e);
                break;
            }
        }
        let gen = q + 1;

        // 1. Matching pairs: all postings columns of the cells match q.
        if mi < blocked.matching.len() && blocked.matching[mi].0 == q {
            for &cell in &blocked.matching[mi].1 {
                let Some(postings) = ctx.inv.postings(cell) else {
                    continue;
                };
                for &col in &postings.cols {
                    let Some(c) = shard_slot(col, lo, hi) else {
                        continue;
                    };
                    if joinable[c] || pruned[c] || matched_stamp[c] == gen {
                        continue;
                    }
                    matched_stamp[c] = gen;
                    match_counts[c] += 1;
                    if terminable && match_counts[c] as usize >= ctx.t_abs {
                        joinable[c] = true;
                        stats.early_joinable += 1;
                    }
                }
            }
            mi += 1;
        }

        // 2. Candidate pairs: verify cell contents column by column.
        if ci < blocked.candidates.len() && blocked.candidates[ci].0 == q {
            let qm = ctx.query_mapped.get(q as usize);
            let qv = ctx.query.get_raw(q as usize);
            for &cell in &blocked.candidates[ci].1 {
                let Some(postings) = ctx.inv.postings(cell) else {
                    continue;
                };
                for (i, &col) in postings.cols.iter().enumerate() {
                    let Some(c) = shard_slot(col, lo, hi) else {
                        continue;
                    };
                    if joinable[c] || pruned[c] || matched_stamp[c] == gen {
                        continue;
                    }
                    if seen_stamp[c] != gen {
                        seen_stamp[c] = gen;
                        seen_list.push(col);
                    }
                    let vids = postings.vectors_of(i);
                    // With both vector-level lemmas off, the per-row test is
                    // a plain early-exit distance check, so the whole
                    // postings group can go through the metric's gather
                    // kernel — one dispatch and one bound for the group,
                    // rows prefetched ahead. `rows_tested` keeps the counter
                    // identical to the per-row loop it replaces.
                    let matched = if gather {
                        let (tested, first) =
                            ctx.metric.dist_le_first(qv, arena, dim, vids, ctx.tau);
                        stats.distance_computations += tested as u64;
                        first.is_some()
                    } else {
                        let mut found = false;
                        for (vi, &vid) in vids.iter().enumerate() {
                            // Hide the gather latency of the next candidate
                            // row behind this one's test (semantics-free).
                            if let Some(&next) = vids.get(vi + 1) {
                                crate::kernel::prefetch(ctx.columns.store().get_raw(next as usize));
                            }
                            let xm = ctx.rv_mapped.get(vid as usize);
                            if ctx.flags.lemma1_vector_filter
                                && lemmas::lemma1_filter(qm, xm, ctx.tau)
                            {
                                stats.lemma1_filtered += 1;
                                continue;
                            }
                            let is_match = if ctx.flags.lemma2_vector_match
                                && lemmas::lemma2_match(qm, xm, ctx.tau)
                            {
                                stats.lemma2_matched += 1;
                                true
                            } else {
                                stats.distance_computations += 1;
                                let xv = ctx.columns.store().get_raw(vid as usize);
                                ctx.metric.dist_le(qv, xv, ctx.tau)
                            };
                            if is_match {
                                found = true;
                                break;
                            }
                        }
                        found
                    };
                    if matched {
                        matched_stamp[c] = gen;
                        match_counts[c] += 1;
                        if terminable && match_counts[c] as usize >= ctx.t_abs {
                            joinable[c] = true;
                            stats.early_joinable += 1;
                        }
                    }
                }
            }
            ci += 1;
        }

        // 3. Definite mismatches for q: columns seen in candidates with no
        //    match found. Blocking guarantees all potentially-matching
        //    vectors of the column were in the candidate cells, so q can
        //    never match this column — Lemma 7 may now prune it.
        for col in seen_list.drain(..) {
            let c = (col as usize) - lo;
            if matched_stamp[c] != gen && !joinable[c] && !pruned[c] {
                mismatch_counts[c] += 1;
                if terminable && n_q - (mismatch_counts[c] as usize) < ctx.t_abs {
                    pruned[c] = true;
                    stats.lemma7_pruned += 1;
                }
            }
        }
    }

    let joinable_ids = (0..width)
        .filter(|&c| joinable[c])
        .map(|c| ColumnId((lo + c) as u32))
        .collect();
    (
        VerifyOutcome {
            joinable: joinable_ids,
            match_counts,
            mismatch_counts,
        },
        exceeded,
    )
}

/// Shard-local slot of a global column id, or `None` when the column
/// belongs to another shard.
#[inline(always)]
fn shard_slot(col: u32, lo: usize, hi: usize) -> Option<usize> {
    let c = col as usize;
    if c >= lo && c < hi {
        Some(c - lo)
    } else {
        None
    }
}

/// Resolve the ⟨vec_col⟩ lookup for callers that track it separately.
#[inline]
pub fn column_of(vec_col: &[u32], vid: u32) -> ColumnId {
    ColumnId(vec_col[vid as usize])
}

// ---------------------------------------------------------------------------
// Top-k verification
// ---------------------------------------------------------------------------

/// Columns exactly verified per round of the best-first loop. Fixed (not
/// derived from the thread count) so the adaptive threshold is frozen at
/// identical points for every [`ExecPolicy`] — the batch is *what* gets
/// verified, the policy only decides how many threads verify it.
const TOPK_BATCH: usize = 16;

/// Query-vector groups counted during the probe pass. The cheap bounds
/// saturate on clustered lakes (every column reachable by every query
/// vector), so a sliver of real evidence — the exact count over the first
/// few query vectors — is what actually ranks strong columns first. The
/// probed prefix is not re-scanned: exact verification resumes behind it.
const TOPK_PROBE: usize = 2;

/// Strict ranking of `(match count, column id)` entries: `a` outranks `b`
/// iff it has more matches, or equally many and a smaller column id. This
/// is the documented top-k tie-break, shared with the oracle.
#[inline]
pub(crate) fn beats(a: (u32, u32), b: (u32, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Heap entry ordered so the *worst* entry (fewest matches, then largest
/// column id) surfaces at the top of the max-[`BinaryHeap`].
#[derive(Debug, PartialEq, Eq)]
struct WorstFirst(u32, u32);

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0).then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Verification plan of one column: its per-query-vector work, in query
/// order. A *definite* group needs no distance work (a matching cell
/// contained the column); a candidate group carries the cells' postings
/// (and the column's slot within each) to scan until the first match.
#[derive(Debug, Default)]
struct ColumnPlan<'a> {
    /// `(query vector, start into entries, definitely matched)`; group
    /// `i`'s entries end where group `i + 1`'s start (or at the vec end).
    groups: Vec<(u32, u32, bool)>,
    /// `(candidate cell's postings, slot of this column within them)` —
    /// the postings reference is resolved at plan time so the hot scan
    /// never touches the cell hash map.
    entries: Vec<(&'a CellPostings, u32)>,
}

/// Best-first top-k verification.
///
/// `bounds` is the cheap bracketing pass of
/// [`crate::cost::column_match_bounds`] and `seed` the sound initial
/// threshold of [`crate::cost::topk_seed`]. Columns are verified exactly
/// in best-first order (probe evidence, then upper bound, then density),
/// in fixed batches of `TOPK_BATCH` (16); after each batch the threshold is
/// re-tightened to the current k-th best exact entry. Pruning never
/// trusts the heuristic order: each column is skipped by its **own**
/// upper bound ranking below the threshold, the loop stops outright only
/// once the suffix maximum of the remaining upper bounds falls strictly
/// below the threshold count, and an in-flight column aborts as soon as
/// even matching every remaining query vector could not reach the
/// threshold — the adaptive-T analogue of the Lemma 7 rule.
///
/// Returns the k best `(exact match count, column)` entries in rank
/// order (count descending, then column id ascending). The result — and
/// every counter in `stats` — is byte-identical for every policy:
/// batches and their frozen thresholds are policy-independent, so the
/// thread pool only changes wall-clock.
pub fn verify_topk<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    bounds: &ColumnMatchBounds,
    seed: Option<(u32, u32)>,
    k: usize,
    stats: &mut SearchStats,
    policy: ExecPolicy,
) -> Vec<(u32, ColumnId)> {
    verify_topk_budgeted(ctx, blocked, bounds, seed, k, stats, policy, None, None).0
}

/// [`verify_topk`] under an optional per-query budget. The limits are
/// checked at the loop's deterministic checkpoints — before the probe
/// pass and at the top of every best-first batch round; batch membership
/// and the frozen thresholds are policy-independent, so a distance-cap
/// cutoff lands at the same round for every [`ExecPolicy`]. On a trip the
/// ranking over the columns verified so far is returned together with the
/// tripped limit.
///
/// `explain`, when present, records the loop's story — seeded threshold,
/// survivors, per-round bound trajectory, (a capped sample of) the
/// bound-pruned columns — into a [`TopkExplain`]. Recording reads values
/// the loop already computes, so it can never change the ranking or any
/// [`SearchStats`] counter; `None` costs one branch per round.
#[allow(clippy::too_many_arguments)]
pub fn verify_topk_budgeted<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    bounds: &ColumnMatchBounds,
    seed: Option<(u32, u32)>,
    k: usize,
    stats: &mut SearchStats,
    policy: ExecPolicy,
    budget: Option<&BudgetGuard>,
    mut explain: Option<&mut TopkExplain>,
) -> (Vec<(u32, ColumnId)>, Option<Exceeded>) {
    let n_cols = ctx.columns.n_columns();
    if k == 0 {
        return (Vec::new(), None);
    }
    let mut exceeded = None;
    // Survivors: live columns that can match at all and whose best case
    // is not already below the seeded threshold.
    let mut survivor = vec![false; n_cols];
    let mut order: Vec<u32> = Vec::new();
    for (c, alive) in survivor.iter_mut().enumerate() {
        let ub = bounds.upper[c];
        if ub == 0 {
            continue; // unreachable by any query vector (or deleted)
        }
        if let Some(bar) = seed {
            if beats(bar, (ub, c as u32)) {
                stats.topk_pruned += 1;
                if let Some(ex) = explain.as_deref_mut() {
                    ex.record_pruned_column(c as u32, ub);
                }
                continue;
            }
        }
        *alive = true;
        order.push(c as u32);
    }
    if let Some(ex) = explain.as_deref_mut() {
        ex.seed = seed.map(|(count, _)| count);
        ex.survivors = order.len() as u64;
    }
    let plans = build_plans(ctx.inv, blocked, &survivor, ctx.query.len(), policy);

    // Probe: when there are more candidates than slots, exactly count the
    // first TOPK_PROBE query groups of every survivor. The bounds
    // saturate on clustered data, so this sliver of evidence is what
    // ranks genuinely joinable columns ahead of near-misses; exact
    // verification later resumes where the probe stopped.
    let mut probe_of = vec![0u32; n_cols];
    let probed = order.len() > k;
    if let Some(guard) = budget {
        exceeded = guard.check(stats.distance_computations);
    }
    if probed && exceeded.is_none() {
        let shards = exec::map_ranges_min(policy, order.len(), 2, |r| {
            let mut out = Vec::with_capacity(r.len());
            for j in r {
                let c = order[j];
                let mut s = SearchStats::new();
                let p = probe_column(ctx, &plans[c as usize], &mut s);
                out.push((c, p, s));
            }
            out
        });
        for (c, p, s) in shards.into_iter().flatten() {
            probe_of[c as usize] = p;
            stats.merge(&s);
        }
    }

    // Best-first order: strongest probe evidence first, then tightest
    // upper bound, then densest column (most vectors inside the query's
    // cells), then id. The order is a pure heuristic: any order yields
    // the same result, only how early the threshold tightens changes —
    // the pruning below never assumes anything about it.
    order.sort_unstable_by(|&a, &b| {
        let (a_idx, b_idx) = (a as usize, b as usize);
        probe_of[b_idx]
            .cmp(&probe_of[a_idx])
            .then(bounds.upper[b_idx].cmp(&bounds.upper[a_idx]))
            .then(bounds.weight[b_idx].cmp(&bounds.weight[a_idx]))
            .then(a.cmp(&b))
    });
    // Largest upper bound among order[j..]: the sound whole-loop stopping
    // rule (the order itself is probe-first, not upper-bound-descending,
    // so one column's bound says nothing about its successors').
    let mut suffix_max_ub = vec![0u32; order.len() + 1];
    for j in (0..order.len()).rev() {
        suffix_max_ub[j] = suffix_max_ub[j + 1].max(bounds.upper[order[j] as usize]);
    }

    let mut heap: BinaryHeap<WorstFirst> = BinaryHeap::with_capacity(k + 1);
    let mut i = 0usize;
    while exceeded.is_none() && i < order.len() {
        if let Some(guard) = budget {
            if let Some(e) = guard.check(stats.distance_computations) {
                exceeded = Some(e);
                break;
            }
        }
        // Threshold as of this batch: the stronger of the seed and the
        // current k-th best exact entry. Frozen per batch so abort
        // decisions never depend on scheduling.
        let bar = effective_bar(&heap, seed, k);
        // No remaining column can reach the bar count at all: stop.
        if let Some((bc, _)) = bar {
            if suffix_max_ub[i] < bc {
                stats.topk_pruned += (order.len() - i) as u64;
                if let Some(ex) = explain.as_deref_mut() {
                    ex.suffix_stop = true;
                }
                break;
            }
        }
        let end = (i + TOPK_BATCH).min(order.len());
        // Keep only batch members whose own best case can still rank at
        // or above the bar; the rest are pruned individually.
        let mut batch: Vec<u32> = Vec::with_capacity(end - i);
        let mut round_pruned = 0u32;
        for &c in &order[i..end] {
            match bar {
                Some(b) if beats(b, (bounds.upper[c as usize], c)) => {
                    stats.topk_pruned += 1;
                    round_pruned += 1;
                    if let Some(ex) = explain.as_deref_mut() {
                        ex.record_pruned_column(c, bounds.upper[c as usize]);
                    }
                }
                _ => batch.push(c),
            }
        }
        i = end;
        if let Some(ex) = explain.as_deref_mut() {
            ex.rounds.push(crate::explain::TopkRound {
                bar: bar.map(|(count, _)| count),
                batch: batch.len() as u32,
                pruned: round_pruned,
            });
        }
        if batch.is_empty() {
            continue;
        }
        stats.verify_batches += 1;
        let shard_results = exec::map_ranges_min(policy, batch.len(), 2, |r| {
            let mut out = Vec::with_capacity(r.len());
            for j in r {
                let c = batch[j];
                debug_assert_eq!(
                    plans[c as usize].groups.len(),
                    bounds.upper[c as usize] as usize
                );
                let mut s = SearchStats::new();
                let plan = &plans[c as usize];
                let start_group = if probed {
                    TOPK_PROBE.min(plan.groups.len())
                } else {
                    0
                };
                let cnt = verify_column_exact(
                    ctx,
                    plan,
                    c,
                    bar,
                    start_group,
                    probe_of[c as usize],
                    &mut s,
                );
                out.push((c, cnt, s));
            }
            out
        });
        for (c, cnt, s) in shard_results.into_iter().flatten() {
            stats.merge(&s);
            match cnt {
                Some(n) if n > 0 => {
                    heap.push(WorstFirst(n, c));
                    if heap.len() > k {
                        heap.pop();
                    }
                }
                Some(_) => {}
                None => stats.topk_aborted += 1,
            }
        }
    }
    let mut hits: Vec<(u32, ColumnId)> = heap
        .into_iter()
        .map(|WorstFirst(n, c)| (n, ColumnId(c)))
        .collect();
    hits.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    (hits, exceeded)
}

/// The stronger of the seed threshold and the heap's k-th best entry.
fn effective_bar(
    heap: &BinaryHeap<WorstFirst>,
    seed: Option<(u32, u32)>,
    k: usize,
) -> Option<(u32, u32)> {
    let worst = if heap.len() >= k {
        heap.peek().map(|w| (w.0, w.1))
    } else {
        None
    };
    match (seed, worst) {
        (s, None) => s,
        (None, w) => w,
        (Some(s), Some(w)) => Some(if beats(s, w) { s } else { w }),
    }
}

/// Does query group `gi` of this column's plan match (definite, or a
/// candidate vector within τ)?
#[inline]
fn group_matches<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    plan: &ColumnPlan<'_>,
    gi: usize,
    stats: &mut SearchStats,
) -> bool {
    let (q, start, definite) = plan.groups[gi];
    if definite {
        return true;
    }
    let qm = ctx.query_mapped.get(q as usize);
    let qv = ctx.query.get_raw(q as usize);
    let end = plan
        .groups
        .get(gi + 1)
        .map(|g| g.1)
        .unwrap_or(plan.entries.len() as u32);
    for &(postings, slot) in &plan.entries[start as usize..end as usize] {
        for &vid in postings.vectors_of(slot as usize) {
            let xm = ctx.rv_mapped.get(vid as usize);
            if ctx.flags.lemma1_vector_filter && lemmas::lemma1_filter(qm, xm, ctx.tau) {
                stats.lemma1_filtered += 1;
                continue;
            }
            let is_match = if ctx.flags.lemma2_vector_match && lemmas::lemma2_match(qm, xm, ctx.tau)
            {
                stats.lemma2_matched += 1;
                true
            } else {
                stats.distance_computations += 1;
                let xv = ctx.columns.store().get_raw(vid as usize);
                ctx.metric.dist_le(qv, xv, ctx.tau)
            };
            if is_match {
                return true;
            }
        }
    }
    false
}

/// Exact match count over the first [`TOPK_PROBE`] query groups — the
/// ordering evidence, never used for pruning.
fn probe_column<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    plan: &ColumnPlan<'_>,
    stats: &mut SearchStats,
) -> u32 {
    let upto = TOPK_PROBE.min(plan.groups.len());
    (0..upto)
        .filter(|&gi| group_matches(ctx, plan, gi, stats))
        .count() as u32
}

/// Exact match count of one column, resuming behind an already-counted
/// probe prefix (`start_group` groups contributing `start_count`
/// matches), or `None` once even matching every remaining query vector
/// could not lift the column's entry to the bar. `None` is returned only
/// from a genuine mid-scan exit — a fully-scanned column always yields
/// its exact `Some(count)`, even when that count misses the bar (the
/// heap push/pop discards it; `topk_aborted` stays an honest count of
/// scans that actually terminated early).
fn verify_column_exact<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    plan: &ColumnPlan<'_>,
    col: u32,
    bar: Option<(u32, u32)>,
    start_group: usize,
    start_count: u32,
    stats: &mut SearchStats,
) -> Option<u32> {
    // Smallest count whose entry does not rank strictly below the bar
    // (the bar's own column may tie it; larger ids must exceed it).
    let needed = match bar {
        None => 1,
        Some((bc, bcol)) => {
            if col <= bcol {
                bc.max(1)
            } else {
                bc + 1
            }
        }
    };
    let mut remaining = (plan.groups.len() - start_group) as u32;
    let mut count = start_count;
    for gi in start_group..plan.groups.len() {
        if count + remaining < needed {
            return None;
        }
        remaining -= 1;
        if group_matches(ctx, plan, gi, stats) {
            count += 1;
        }
    }
    Some(count)
}

/// Build the per-column verification plans for the surviving columns in
/// one walk over the blocked pairs, sharded by column range (plan content
/// is independent of the sharding).
///
/// This walk deliberately mirrors [`crate::cost::bounds_range`]'s cursor
/// and stamp structure rather than sharing it: the bounds pass must run
/// *first* over every column so its seed can shrink the survivor set,
/// while this pass allocates plan storage only for the survivors — the
/// two passes must stay in lockstep (`groups.len() == bounds.upper[c]`
/// for every survivor, asserted at verification time).
fn build_plans<'a>(
    inv: &'a InvertedIndex,
    blocked: &BlockOutput,
    survivor: &[bool],
    n_q: usize,
    policy: ExecPolicy,
) -> Vec<ColumnPlan<'a>> {
    let n_cols = survivor.len();
    let shards = exec::map_ranges_min(policy, n_cols, 2, |cols| {
        plans_range(inv, blocked, survivor, cols, n_q)
    });
    shards.into_iter().flatten().collect()
}

/// The plan-building walk restricted to columns in `cols`.
fn plans_range<'a>(
    inv: &'a InvertedIndex,
    blocked: &BlockOutput,
    survivor: &[bool],
    cols: Range<usize>,
    n_q: usize,
) -> Vec<ColumnPlan<'a>> {
    let (lo, hi) = (cols.start, cols.end);
    let width = hi - lo;
    let mut plans: Vec<ColumnPlan> = (0..width).map(|_| ColumnPlan::default()).collect();
    let mut def_stamp = vec![0u32; width];
    let mut any_stamp = vec![0u32; width];
    let mut mi = 0usize;
    let mut ci = 0usize;
    for q in 0..n_q as u32 {
        let gen = q + 1;
        if mi < blocked.matching.len() && blocked.matching[mi].0 == q {
            for &cell in &blocked.matching[mi].1 {
                let Some(postings) = inv.postings(cell) else {
                    continue;
                };
                for &col in &postings.cols {
                    let c = col as usize;
                    if c < lo || c >= hi || !survivor[c] {
                        continue;
                    }
                    let s = c - lo;
                    if def_stamp[s] != gen {
                        def_stamp[s] = gen;
                        any_stamp[s] = gen;
                        let start = plans[s].entries.len() as u32;
                        plans[s].groups.push((q, start, true));
                    }
                }
            }
            mi += 1;
        }
        if ci < blocked.candidates.len() && blocked.candidates[ci].0 == q {
            for &cell in &blocked.candidates[ci].1 {
                let Some(postings) = inv.postings(cell) else {
                    continue;
                };
                for (slot, &col) in postings.cols.iter().enumerate() {
                    let c = col as usize;
                    if c < lo || c >= hi || !survivor[c] {
                        continue;
                    }
                    let s = c - lo;
                    if def_stamp[s] == gen {
                        continue; // already a definite match for this q
                    }
                    if any_stamp[s] != gen {
                        any_stamp[s] = gen;
                        let start = plans[s].entries.len() as u32;
                        plans[s].groups.push((q, start, false));
                    }
                    plans[s].entries.push((postings, slot as u32));
                }
            }
            ci += 1;
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{block, quick_browse};
    use crate::config::LemmaFlags;
    use crate::grid::{GridParams, HierarchicalGrid};
    use crate::metric::Euclidean;
    use crate::util::FastMap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference implementation: exhaustive scan.
    fn naive_joinable(
        query: &VectorStore,
        columns: &ColumnSet,
        tau: f32,
        t_abs: usize,
    ) -> Vec<ColumnId> {
        let mut out = Vec::new();
        for (ci, col) in columns.columns().iter().enumerate() {
            let mut count = 0usize;
            for q in query.iter() {
                let matched = col
                    .vector_range()
                    .any(|v| Euclidean.dist(q, columns.store().get_raw(v as usize)) <= tau);
                if matched {
                    count += 1;
                }
            }
            if count >= t_abs {
                out.push(ColumnId(ci as u32));
            }
        }
        out
    }

    fn random_instance(
        seed: u64,
        n_cols: usize,
        col_len: usize,
        nq: usize,
    ) -> (VectorStore, ColumnSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 10;
        let unit = |rng: &mut StdRng| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            v
        };
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng);
            query.push(&v).unwrap();
        }
        (query, columns)
    }

    fn run_pexeso_verify(
        query: &VectorStore,
        columns: &ColumnSet,
        tau: f32,
        t_abs: usize,
        flags: LemmaFlags,
        with_quick_browse: bool,
    ) -> (Vec<ColumnId>, SearchStats) {
        let metric = Euclidean;
        let pivots: Vec<Vec<f32>> = (0..3)
            .map(|i| {
                columns
                    .store()
                    .get_raw(i * 5 % columns.n_vectors())
                    .to_vec()
            })
            .collect();
        let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
        let q_mapped = MappedVectors::build(query, &pivots, &metric, None).unwrap();
        let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
        let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
        let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();

        let mut stats = SearchStats::new();
        let (handled, seeded) = if with_quick_browse {
            let mut seeded = FastMap::default();
            let handled = quick_browse(&hgq, &inv, &mut seeded, &mut stats);
            (Some(handled), seeded)
        } else {
            (None, FastMap::default())
        };
        let blocked = block(
            &hgq,
            &hgrv,
            &q_mapped,
            tau,
            flags,
            handled.as_ref(),
            seeded,
            &mut stats,
        );
        let ctx = VerifyContext {
            columns,
            vec_col: &vec_col,
            rv_mapped: &rv_mapped,
            inv: &inv,
            metric: &metric,
            query,
            query_mapped: &q_mapped,
            tau,
            t_abs,
            flags,
            deleted: None,
        };
        let outcome = verify(&ctx, &blocked, &mut stats);
        (outcome.joinable, stats)
    }

    #[test]
    fn agrees_with_naive_scan() {
        for seed in 0..5u64 {
            let (query, columns) = random_instance(seed, 12, 30, 8);
            for tau in [0.2f32, 0.5, 0.9] {
                for t_abs in [1usize, 3, 6] {
                    let expected = naive_joinable(&query, &columns, tau, t_abs);
                    let (got, _) =
                        run_pexeso_verify(&query, &columns, tau, t_abs, LemmaFlags::all(), true);
                    assert_eq!(got, expected, "seed={seed} tau={tau} T={t_abs}");
                }
            }
        }
    }

    /// Column-sharded parallel verification is byte-identical to the
    /// sequential scan: same joinable set, same exact counts, same
    /// early-termination and lemma counters.
    #[test]
    fn parallel_verify_is_byte_identical() {
        for seed in 0..4u64 {
            let (query, columns) = random_instance(seed * 7 + 1, 13, 25, 9);
            let metric = Euclidean;
            let pivots: Vec<Vec<f32>> = (0..3)
                .map(|i| {
                    columns
                        .store()
                        .get_raw(i * 5 % columns.n_vectors())
                        .to_vec()
                })
                .collect();
            let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
            let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
            let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
            let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
            let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
            let vec_col = columns.vector_to_column();
            let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
            for tau in [0.1f32, 0.4, 0.8] {
                for t_abs in [1usize, 4, query.len() + 1] {
                    let mut stats = SearchStats::new();
                    let blocked = block(
                        &hgq,
                        &hgrv,
                        &q_mapped,
                        tau,
                        LemmaFlags::all(),
                        None,
                        FastMap::default(),
                        &mut stats,
                    );
                    let ctx = VerifyContext {
                        columns: &columns,
                        vec_col: &vec_col,
                        rv_mapped: &rv_mapped,
                        inv: &inv,
                        metric: &metric,
                        query: &query,
                        query_mapped: &q_mapped,
                        tau,
                        t_abs,
                        flags: LemmaFlags::all(),
                        deleted: None,
                    };
                    let mut seq_stats = SearchStats::new();
                    let seq = verify(&ctx, &blocked, &mut seq_stats);
                    // `Fixed` bypasses the adaptive clamp, so real thread
                    // fan-out is exercised even on single-core hosts where
                    // `Parallel` plans down to the inline path.
                    for threads in [2usize, 3, 8, 64] {
                        for policy in [
                            crate::config::ExecPolicy::Parallel { threads },
                            crate::config::ExecPolicy::Fixed { threads },
                        ] {
                            let mut par_stats = SearchStats::new();
                            let par = verify_with(&ctx, &blocked, &mut par_stats, policy);
                            assert_eq!(
                                seq, par,
                                "seed={seed} tau={tau} T={t_abs} threads={threads}"
                            );
                            assert_eq!(
                                seq_stats.distance_computations, par_stats.distance_computations,
                                "distance counter diverged (threads={threads})"
                            );
                            assert_eq!(seq_stats.early_joinable, par_stats.early_joinable);
                            assert_eq!(seq_stats.lemma7_pruned, par_stats.lemma7_pruned);
                            assert_eq!(seq_stats.lemma1_filtered, par_stats.lemma1_filtered);
                            assert_eq!(seq_stats.lemma2_matched, par_stats.lemma2_matched);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn agrees_under_every_ablation() {
        let (query, columns) = random_instance(77, 10, 25, 6);
        let tau = 0.5;
        let t_abs = 3;
        let expected = naive_joinable(&query, &columns, tau, t_abs);
        for flags in [
            LemmaFlags::all(),
            LemmaFlags::without_lemma1(),
            LemmaFlags::without_lemma2(),
            LemmaFlags::without_lemma34(),
            LemmaFlags::without_lemma56(),
        ] {
            for qb in [true, false] {
                let (got, _) = run_pexeso_verify(&query, &columns, tau, t_abs, flags, qb);
                assert_eq!(got, expected, "flags={flags:?} quick_browse={qb}");
            }
        }
    }

    #[test]
    fn lemma7_prunes_hopeless_columns() {
        let (query, columns) = random_instance(5, 8, 20, 10);
        // Very tight tau and T = |Q|: nearly every column should be pruned
        // long before all 10 query vectors are checked.
        let (_, stats) = run_pexeso_verify(&query, &columns, 0.05, 10, LemmaFlags::all(), true);
        assert!(
            stats.lemma7_pruned > 0,
            "expected lemma-7 prunes: {stats:?}"
        );
    }

    #[test]
    fn early_joinable_triggers_on_loose_thresholds() {
        let (query, columns) = random_instance(6, 8, 20, 10);
        let (joinable, stats) =
            run_pexeso_verify(&query, &columns, 1.5, 1, LemmaFlags::all(), true);
        assert!(!joinable.is_empty());
        assert!(stats.early_joinable as usize >= joinable.len());
    }

    #[test]
    fn lemma1_reduces_distance_computations() {
        let (query, columns) = random_instance(7, 10, 40, 8);
        let (_, with_l1) = run_pexeso_verify(&query, &columns, 0.3, 3, LemmaFlags::all(), true);
        let (_, without_l1) =
            run_pexeso_verify(&query, &columns, 0.3, 3, LemmaFlags::without_lemma1(), true);
        assert!(
            with_l1.distance_computations <= without_l1.distance_computations,
            "lemma1 should not increase distance computations: {} vs {}",
            with_l1.distance_computations,
            without_l1.distance_computations
        );
    }

    /// Full small-pipeline scaffolding for the top-k tests: grids,
    /// inverted index, blocked pairs and a ready [`VerifyContext`] input.
    struct TopkSetup {
        columns: ColumnSet,
        query: VectorStore,
        rv_mapped: MappedVectors,
        q_mapped: MappedVectors,
        vec_col: Vec<u32>,
        inv: InvertedIndex,
        blocked: BlockOutput,
        tau: f32,
    }

    fn topk_setup(seed: u64, tau: f32) -> TopkSetup {
        let (query, columns) = random_instance(seed, 14, 22, 9);
        let metric = Euclidean;
        let pivots: Vec<Vec<f32>> = (0..3)
            .map(|i| {
                columns
                    .store()
                    .get_raw(i * 7 % columns.n_vectors())
                    .to_vec()
            })
            .collect();
        let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
        let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
        let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
        let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
        let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
        let mut stats = SearchStats::new();
        let mut seeded = FastMap::default();
        let handled = quick_browse(&hgq, &inv, &mut seeded, &mut stats);
        let blocked = block(
            &hgq,
            &hgrv,
            &q_mapped,
            tau,
            LemmaFlags::all(),
            Some(&handled),
            seeded,
            &mut stats,
        );
        TopkSetup {
            columns,
            query,
            rv_mapped,
            q_mapped,
            vec_col,
            inv,
            blocked,
            tau,
        }
    }

    fn naive_counts(s: &TopkSetup) -> Vec<u32> {
        s.columns
            .columns()
            .iter()
            .map(|col| {
                s.query
                    .iter()
                    .filter(|q| {
                        col.vector_range().any(|v| {
                            Euclidean.dist(q, s.columns.store().get_raw(v as usize)) <= s.tau
                        })
                    })
                    .count() as u32
            })
            .collect()
    }

    #[test]
    fn column_bounds_bracket_exact_counts() {
        for seed in 0..4u64 {
            for tau in [0.2f32, 0.5, 0.9] {
                let s = topk_setup(seed, tau);
                let exact = naive_counts(&s);
                let bounds = crate::cost::column_match_bounds(
                    &s.blocked,
                    &s.inv,
                    s.columns.n_columns(),
                    s.query.len(),
                    None,
                    crate::config::ExecPolicy::Sequential,
                );
                for (c, &cnt) in exact.iter().enumerate() {
                    assert!(
                        bounds.lower[c] <= cnt && cnt <= bounds.upper[c],
                        "seed={seed} tau={tau} col={c}: {} <= {cnt} <= {} violated",
                        bounds.lower[c],
                        bounds.upper[c]
                    );
                }
                for threads in [2usize, 5, 32] {
                    for policy in [
                        crate::config::ExecPolicy::Parallel { threads },
                        crate::config::ExecPolicy::Fixed { threads },
                    ] {
                        let par = crate::cost::column_match_bounds(
                            &s.blocked,
                            &s.inv,
                            s.columns.n_columns(),
                            s.query.len(),
                            None,
                            policy,
                        );
                        assert_eq!(bounds, par, "seed={seed} tau={tau} threads={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn verify_topk_equals_exhaustive_ranking_for_every_policy() {
        for seed in 0..4u64 {
            for tau in [0.15f32, 0.4, 0.8] {
                let s = topk_setup(seed * 3 + 1, tau);
                let exact = naive_counts(&s);
                let n_cols = s.columns.n_columns();
                let ctx = VerifyContext {
                    columns: &s.columns,
                    vec_col: &s.vec_col,
                    rv_mapped: &s.rv_mapped,
                    inv: &s.inv,
                    metric: &Euclidean,
                    query: &s.query,
                    query_mapped: &s.q_mapped,
                    tau: s.tau,
                    t_abs: s.query.len() + 1,
                    flags: LemmaFlags::all(),
                    deleted: None,
                };
                let bounds = crate::cost::column_match_bounds(
                    &s.blocked,
                    &s.inv,
                    n_cols,
                    s.query.len(),
                    None,
                    crate::config::ExecPolicy::Sequential,
                );
                for k in [0usize, 1, 2, 5, n_cols, n_cols * 3] {
                    let seed_bar = crate::cost::topk_seed(&bounds, k);
                    let expected: Vec<(u32, ColumnId)> = {
                        let mut ranked: Vec<(u32, ColumnId)> = exact
                            .iter()
                            .enumerate()
                            .filter(|&(_, &cnt)| cnt > 0)
                            .map(|(c, &cnt)| (cnt, ColumnId(c as u32)))
                            .collect();
                        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                        ranked.truncate(k);
                        ranked
                    };
                    let mut seq_stats = SearchStats::new();
                    let seq = verify_topk(
                        &ctx,
                        &s.blocked,
                        &bounds,
                        seed_bar,
                        k,
                        &mut seq_stats,
                        crate::config::ExecPolicy::Sequential,
                    );
                    assert_eq!(seq, expected, "seed={seed} tau={tau} k={k}");
                    for threads in [2usize, 4, 16] {
                        for policy in [
                            crate::config::ExecPolicy::Parallel { threads },
                            crate::config::ExecPolicy::Fixed { threads },
                        ] {
                            let mut par_stats = SearchStats::new();
                            let par = verify_topk(
                                &ctx,
                                &s.blocked,
                                &bounds,
                                seed_bar,
                                k,
                                &mut par_stats,
                                policy,
                            );
                            assert_eq!(seq, par, "threads={threads} seed={seed} tau={tau} k={k}");
                            assert_eq!(
                                seq_stats.distance_computations, par_stats.distance_computations,
                                "topk distance counter diverged (threads={threads})"
                            );
                            assert_eq!(seq_stats.topk_pruned, par_stats.topk_pruned);
                            assert_eq!(seq_stats.topk_aborted, par_stats.topk_aborted);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn verify_topk_prunes_on_skewed_instances() {
        // Skewed lake: 40 random columns plus one mirror of the query
        // column. With k = 1 the mirror fills the heap at |Q| matches in
        // the first batch and every later column's upper bound falls
        // below the tightened threshold — the batches after the first
        // must be pruned wholesale, never exactly verified.
        let (query, mut columns) = random_instance(3, 40, 15, 9);
        let q_refs: Vec<&[f32]> = (0..query.len()).map(|i| query.get_raw(i)).collect();
        columns.add_column("t", "mirror", 40, q_refs).unwrap();
        let metric = Euclidean;
        let pivots: Vec<Vec<f32>> = (0..3)
            .map(|i| columns.store().get_raw(i * 11).to_vec())
            .collect();
        let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
        let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
        let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
        let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
        let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
        let tau = 0.05f32;
        let mut stats = SearchStats::new();
        let mut seeded = FastMap::default();
        let handled = quick_browse(&hgq, &inv, &mut seeded, &mut stats);
        let blocked = block(
            &hgq,
            &hgrv,
            &q_mapped,
            tau,
            LemmaFlags::all(),
            Some(&handled),
            seeded,
            &mut stats,
        );
        let ctx = VerifyContext {
            columns: &columns,
            vec_col: &vec_col,
            rv_mapped: &rv_mapped,
            inv: &inv,
            metric: &metric,
            query: &query,
            query_mapped: &q_mapped,
            tau,
            t_abs: query.len() + 1,
            flags: LemmaFlags::all(),
            deleted: None,
        };
        let bounds = crate::cost::column_match_bounds(
            &blocked,
            &inv,
            columns.n_columns(),
            query.len(),
            None,
            crate::config::ExecPolicy::Sequential,
        );
        let seed_bar = crate::cost::topk_seed(&bounds, 1);
        let hits = verify_topk(
            &ctx,
            &blocked,
            &bounds,
            seed_bar,
            1,
            &mut stats,
            crate::config::ExecPolicy::Sequential,
        );
        assert_eq!(hits, vec![(query.len() as u32, ColumnId(40))]);
        assert!(
            stats.topk_pruned > 0 || stats.topk_aborted > 0,
            "adaptive threshold never pruned anything: {stats:?}"
        );
    }

    #[test]
    fn match_counts_exact_without_early_termination() {
        // T = |Q| + 1 is unreachable, so no early termination fires and the
        // match counts must equal the naive per-column counts.
        let (query, columns) = random_instance(8, 6, 15, 5);
        let tau = 0.6;
        let metric = Euclidean;
        let naive_counts: Vec<u32> = columns
            .columns()
            .iter()
            .map(|col| {
                query
                    .iter()
                    .filter(|q| {
                        col.vector_range()
                            .any(|v| metric.dist(q, columns.store().get_raw(v as usize)) <= tau)
                    })
                    .count() as u32
            })
            .collect();
        let pivots: Vec<Vec<f32>> = (0..3)
            .map(|i| columns.store().get_raw(i).to_vec())
            .collect();
        let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
        let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
        let params = GridParams::new(3, 3, 2.0 + 1e-4).unwrap();
        let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
        let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
        let mut stats = SearchStats::new();
        let blocked = block(
            &hgq,
            &hgrv,
            &q_mapped,
            tau,
            LemmaFlags::all(),
            None,
            FastMap::default(),
            &mut stats,
        );
        let ctx = VerifyContext {
            columns: &columns,
            vec_col: &vec_col,
            rv_mapped: &rv_mapped,
            inv: &inv,
            metric: &metric,
            query: &query,
            query_mapped: &q_mapped,
            tau,
            t_abs: query.len() + 1,
            flags: LemmaFlags::all(),
            deleted: None,
        };
        let outcome = verify(&ctx, &blocked, &mut stats);
        assert_eq!(outcome.match_counts, naive_counts);
        assert!(outcome.joinable.is_empty());
    }
}
