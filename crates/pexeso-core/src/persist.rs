//! Compact binary persistence for PEXESO indexes.
//!
//! Out-of-core search (Section IV) stores one index per partition on disk
//! and loads them one at a time. The format keeps the expensive artefacts —
//! raw vectors, pivots, and mapped vectors — and rebuilds the hierarchical
//! grid and inverted index deterministically on load (both are O(|RV|)
//! hash-map constructions, far cheaper than re-mapping).
//!
//! Layout (little-endian):
//! `magic "PEXIDX01" · metric name · options · grid params · pivots ·
//!  column metas · raw vectors · mapped vectors · fnv64 checksum`.
//! No CRC dependency: a running FNV-1a over the payload detects
//! truncation/corruption.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::column::{ColumnMeta, ColumnSet};
use crate::config::{IndexOptions, PivotSelection};
use crate::error::{PexesoError, Result};
use crate::grid::GridParams;
use crate::mapping::MappedVectors;
use crate::metric::Metric;
use crate::search::PexesoIndex;
use crate::vector::VectorStore;

const MAGIC: &[u8; 8] = b"PEXIDX01";

/// Incremental FNV-1a 64 used as a payload checksum.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// Checksumming writer adapter.
struct Sink<W: Write> {
    inner: W,
    hash: Fnv64,
}

impl<W: Write> Sink<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            hash: Fnv64::new(),
        }
    }
    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)?;
        Ok(())
    }
    fn put_u8(&mut self, v: u8) -> Result<()> {
        self.put(&[v])
    }
    fn put_u32(&mut self, v: u32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn put_u64(&mut self, v: u64) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn put_f32(&mut self, v: f32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn put_str(&mut self, s: &str) -> Result<()> {
        self.put_u32(s.len() as u32)?;
        self.put(s.as_bytes())
    }
    fn put_f32_slice(&mut self, data: &[f32]) -> Result<()> {
        // Chunked conversion keeps allocations bounded for large arenas.
        let mut buf = [0u8; 4096];
        for chunk in data.chunks(1024) {
            let mut n = 0;
            for v in chunk {
                buf[n..n + 4].copy_from_slice(&v.to_le_bytes());
                n += 4;
            }
            self.put(&buf[..n])?;
        }
        Ok(())
    }
}

/// Checksumming reader adapter.
struct Source<R: Read> {
    inner: R,
    hash: Fnv64,
}

impl<R: Read> Source<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            hash: Fnv64::new(),
        }
    }
    fn take(&mut self, buf: &mut [u8]) -> Result<()> {
        self.inner
            .read_exact(buf)
            .map_err(|e| PexesoError::Corrupt(format!("truncated file: {e}")))?;
        self.hash.update(buf);
        Ok(())
    }
    fn take_u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.take(&mut b)?;
        Ok(b[0])
    }
    fn take_u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.take(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn take_u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn take_f32(&mut self) -> Result<f32> {
        let mut b = [0u8; 4];
        self.take(&mut b)?;
        Ok(f32::from_le_bytes(b))
    }
    fn take_str(&mut self, limit: u32) -> Result<String> {
        let len = self.take_u32()?;
        if len > limit {
            return Err(PexesoError::Corrupt(format!(
                "string length {len} exceeds limit {limit}"
            )));
        }
        let mut buf = vec![0u8; len as usize];
        self.take(&mut buf)?;
        String::from_utf8(buf).map_err(|e| PexesoError::Corrupt(format!("invalid utf-8: {e}")))
    }
    fn take_f32_vec(&mut self, n: usize) -> Result<Vec<f32>> {
        // Cap the capacity *hint* (not the read) so a corrupted length
        // field fails with a typed truncation error at EOF instead of
        // aborting on a multi-terabyte allocation.
        let mut out = Vec::with_capacity(n.min(1 << 22));
        let mut buf = [0u8; 4096];
        let mut remaining = n;
        while remaining > 0 {
            let take_n = remaining.min(1024);
            let bytes = &mut buf[..take_n * 4];
            self.take(bytes)?;
            for c in bytes.chunks_exact(4) {
                out.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
            }
            remaining -= take_n;
        }
        Ok(out)
    }
}

fn selection_tag(s: PivotSelection) -> u8 {
    match s {
        PivotSelection::Pca => 0,
        PivotSelection::Random => 1,
        PivotSelection::FarthestFirst => 2,
    }
}

fn selection_from_tag(t: u8) -> Result<PivotSelection> {
    match t {
        0 => Ok(PivotSelection::Pca),
        1 => Ok(PivotSelection::Random),
        2 => Ok(PivotSelection::FarthestFirst),
        _ => Err(PexesoError::Corrupt(format!(
            "unknown pivot selection tag {t}"
        ))),
    }
}

/// Serialise an index to `path` crash-safely: the bytes are written to a
/// sibling `.tmp` file and published with an atomic rename, so a torn
/// write can never replace a valid partition file with a half-written
/// one — readers see the old index or the new one, never a fragment.
pub fn save_index<M: Metric>(index: &PexesoIndex<M>, path: &Path) -> Result<()> {
    let tmp = path.with_extension("pex.tmp");
    save_index_to(index, &tmp)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn save_index_to<M: Metric>(index: &PexesoIndex<M>, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    let mut sink = Sink::new(BufWriter::new(file));
    sink.put(MAGIC)?;
    sink.put_str(index.metric().name())?;

    let opts = index.options();
    sink.put_u32(opts.num_pivots as u32)?;
    sink.put_u32(opts.levels.unwrap_or(0) as u32)?;
    sink.put_u8(selection_tag(opts.pivot_selection))?;
    sink.put_u64(opts.seed)?;

    let gp = index.grid_params();
    sink.put_u32(gp.num_pivots as u32)?;
    sink.put_u32(gp.levels as u32)?;
    sink.put_f32(gp.span)?;

    let pivots = index.pivots();
    sink.put_u32(pivots.len() as u32)?;
    sink.put_u32(index.columns().dim() as u32)?;
    for p in pivots {
        sink.put_f32_slice(p)?;
    }

    let cols = index.columns().columns();
    sink.put_u32(cols.len() as u32)?;
    for c in cols {
        sink.put_str(&c.table_name)?;
        sink.put_str(&c.column_name)?;
        sink.put_u64(c.external_id)?;
        sink.put_u32(c.start)?;
        sink.put_u32(c.len)?;
    }

    let store = index.columns().store();
    sink.put_u64(store.len() as u64)?;
    sink.put_f32_slice(store.raw_data())?;

    let mapped = index.rv_mapped();
    sink.put_u32(mapped.num_pivots() as u32)?;
    sink.put_u64(mapped.len() as u64)?;
    sink.put_f32_slice(mapped.raw_data())?;

    let checksum = sink.hash.0;
    sink.inner.write_all(&checksum.to_le_bytes())?;
    sink.inner.flush()?;
    Ok(())
}

/// Load an index from `path`, validating magic, metric, structure, and
/// checksum. The grid and inverted index are rebuilt deterministically.
pub fn load_index<M: Metric>(path: &Path, metric: M) -> Result<PexesoIndex<M>> {
    let file = File::open(path)?;
    let mut src = Source::new(BufReader::new(file));

    let mut magic = [0u8; 8];
    src.take(&mut magic)?;
    if &magic != MAGIC {
        return Err(PexesoError::Corrupt("bad magic".into()));
    }
    let metric_name = src.take_str(64)?;
    if metric_name != metric.name() {
        return Err(PexesoError::Corrupt(format!(
            "index built with metric '{metric_name}' but loaded with '{}'",
            metric.name()
        )));
    }

    let num_pivots = src.take_u32()? as usize;
    let levels_raw = src.take_u32()? as usize;
    let selection = selection_from_tag(src.take_u8()?)?;
    let seed = src.take_u64()?;
    // The execution policy is a runtime throughput knob, not part of the
    // persisted index identity; loaded indexes start sequential.
    let options = IndexOptions {
        num_pivots,
        levels: if levels_raw == 0 {
            None
        } else {
            Some(levels_raw)
        },
        pivot_selection: selection,
        seed,
        ..Default::default()
    };

    let gp_pivots = src.take_u32()? as usize;
    let gp_levels = src.take_u32()? as usize;
    let gp_span = src.take_f32()?;
    let grid_params = GridParams::new(gp_pivots, gp_levels, gp_span)?;

    let k = src.take_u32()? as usize;
    let dim = src.take_u32()? as usize;
    if dim == 0 || dim > 1 << 20 {
        return Err(PexesoError::Corrupt(format!(
            "implausible dimensionality {dim}"
        )));
    }
    if k > crate::config::MAX_PIVOTS {
        return Err(PexesoError::Corrupt(format!("implausible pivot count {k}")));
    }
    let mut pivots = Vec::with_capacity(k);
    for _ in 0..k {
        pivots.push(src.take_f32_vec(dim)?);
    }

    let n_cols = src.take_u32()? as usize;
    let mut metas = Vec::with_capacity(n_cols.min(1 << 16));
    for _ in 0..n_cols {
        let table_name = src.take_str(1 << 16)?;
        let column_name = src.take_str(1 << 16)?;
        let external_id = src.take_u64()?;
        let start = src.take_u32()?;
        let len = src.take_u32()?;
        metas.push(ColumnMeta {
            table_name,
            column_name,
            external_id,
            start,
            len,
        });
    }

    let n_vecs = src.take_u64()? as usize;
    let n_floats = n_vecs.checked_mul(dim).ok_or_else(|| {
        PexesoError::Corrupt(format!("vector count {n_vecs} x dim {dim} overflows"))
    })?;
    let data = src.take_f32_vec(n_floats)?;
    let store = VectorStore::from_raw(dim, data)?;
    let columns = ColumnSet::from_parts(store, metas)?;

    let mk = src.take_u32()? as usize;
    let mn = src.take_u64()? as usize;
    if mk != gp_pivots || mn != n_vecs {
        return Err(PexesoError::Corrupt(format!(
            "mapped shape {mn}x{mk} inconsistent with {n_vecs}x{gp_pivots}"
        )));
    }
    let m_floats = mn
        .checked_mul(mk)
        .ok_or_else(|| PexesoError::Corrupt(format!("mapped shape {mn}x{mk} overflows")))?;
    let mapped_data = src.take_f32_vec(m_floats)?;
    let rv_mapped = MappedVectors::from_raw(mk, mapped_data)?;

    let computed = src.hash.0;
    let mut csum = [0u8; 8];
    src.inner
        .read_exact(&mut csum)
        .map_err(|e| PexesoError::Corrupt(format!("missing checksum: {e}")))?;
    if u64::from_le_bytes(csum) != computed {
        return Err(PexesoError::Corrupt("checksum mismatch".into()));
    }
    // The checksum must be the last bytes of the file: trailing garbage
    // means the writer and reader disagree about the layout (or the file
    // was concatenated/overwritten), which a checksum-only validation
    // would silently accept.
    let mut trailing = [0u8; 1];
    match src.inner.read(&mut trailing) {
        Ok(0) => {}
        Ok(_) => return Err(PexesoError::Corrupt("trailing bytes after checksum".into())),
        Err(e) => return Err(PexesoError::Io(e)),
    }

    PexesoIndex::from_parts(columns, pivots, rv_mapped, options, grid_params, metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{JoinThreshold, Tau};
    use crate::metric::{Euclidean, Manhattan};
    use crate::query::{Query, Queryable};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build_small(seed: u64) -> (PexesoIndex<Euclidean>, VectorStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 8;
        let mut columns = ColumnSet::new(dim);
        for c in 0..6 {
            let mut vecs = Vec::new();
            for _ in 0..12 {
                let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= n);
                vecs.push(v);
            }
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("tab", &format!("col{c}"), 100 + c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..5 {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            query.push(&v).unwrap();
        }
        let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
        (index, query)
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pexeso_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        let (index, query) = build_small(1);
        let path = tmpfile("roundtrip.pex");
        save_index(&index, &path).unwrap();
        let loaded = load_index(&path, Euclidean).unwrap();

        let tau = Tau::Ratio(0.2);
        let t = JoinThreshold::Ratio(0.4);
        let q = Query::threshold(tau, t);
        let a = index.execute(&q, &query).unwrap();
        let b = loaded.execute(&q, &query).unwrap();
        assert_eq!(a.hits, b.hits);
        assert_eq!(index.columns().columns(), loaded.columns().columns());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_metric_rejected() {
        let (index, _) = build_small(2);
        let path = tmpfile("metric.pex");
        save_index(&index, &path).unwrap();
        let err = load_index(&path, Manhattan);
        assert!(matches!(err, Err(PexesoError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpfile("magic.pex");
        std::fs::write(&path, b"NOTANIDXfollowed by junk").unwrap();
        assert!(matches!(
            load_index(&path, Euclidean),
            Err(PexesoError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let (index, _) = build_small(3);
        let path = tmpfile("trunc.pex");
        save_index(&index, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            load_index(&path, Euclidean),
            Err(PexesoError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let (index, _) = build_small(4);
        let path = tmpfile("flip.pex");
        save_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            load_index(&path, Euclidean).is_err(),
            "flipped byte must fail checksum or structure validation"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_index(Path::new("/nonexistent/pexeso.idx"), Euclidean);
        assert!(matches!(err, Err(PexesoError::Io(_))));
    }

    #[test]
    fn trailing_bytes_after_checksum_rejected() {
        let (index, _) = build_small(5);
        let path = tmpfile("trailing.pex");
        save_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // A single appended byte — e.g. a concatenated partial write —
        // leaves the checksummed prefix intact but must still be rejected.
        bytes.push(0u8);
        std::fs::write(&path, &bytes).unwrap();
        match load_index(&path, Euclidean) {
            Err(PexesoError::Corrupt(msg)) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("expected Corrupt(trailing bytes), got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_in_every_section_yields_typed_error() {
        let (index, query) = build_small(6);
        let path = tmpfile("flip_all.pex");
        save_index(&index, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Walk the whole file (stride keeps the test fast) flipping one
        // byte at a time: every position must surface as a typed
        // `Corrupt` error or — when the flip lands on a section that only
        // changes values, not structure — fail the final checksum. No
        // position may panic or silently load with altered search results.
        let probe = Query::threshold(Tau::Ratio(0.2), JoinThreshold::Count(1));
        let baseline = index.execute(&probe, &query).unwrap();
        for pos in (0..clean.len()).step_by(97) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x5a;
            std::fs::write(&path, &bytes).unwrap();
            match load_index(&path, Euclidean) {
                // Which typed variant surfaces depends on the field hit
                // (structure checks fire before the final checksum); the
                // invariant is a typed error — never a panic, an
                // allocation abort, or a silent load.
                Err(PexesoError::Io(e)) => panic!("byte {pos}: untyped io error {e}"),
                Err(_) => {}
                Ok(loaded) => {
                    // from_parts revalidates structure; a flip that loads
                    // must have been caught by the checksum — so this is
                    // unreachable unless validation regressed.
                    let got = loaded.execute(&probe, &query).unwrap();
                    panic!(
                        "byte {pos}: corrupted file loaded (results equal: {})",
                        got.hits == baseline.hits
                    );
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_every_section_yields_typed_error() {
        let (index, _) = build_small(7);
        let path = tmpfile("trunc_all.pex");
        save_index(&index, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Truncating mid-section (including mid-checksum: the last 8
        // bytes) must always produce a typed Corrupt error, never a panic
        // or a partial load.
        for keep in (0..clean.len()).step_by(61).chain([clean.len() - 1]) {
            std::fs::write(&path, &clean[..keep]).unwrap();
            match load_index(&path, Euclidean) {
                Err(PexesoError::Corrupt(_)) => {}
                other => panic!("truncated at {keep}: expected Corrupt, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
