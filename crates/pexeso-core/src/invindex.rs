//! Inverted index over leaf cells (Section III-C, Fig. 4).
//!
//! Keys are the non-empty leaf cells of `HG_RV`; each key holds a postings
//! list of the columns with at least one vector in that cell, **sorted by
//! column id** (the document-at-a-time access order), in CSR layout: per
//! cell a sorted column array, per column a slice of its vector ids.

use crate::config::ExecPolicy;
use crate::error::{PexesoError, Result};
use crate::grid::{compute_leaf_keys, CellKey, GridParams};
use crate::mapping::MappedVectors;
use crate::util::FastMap;

/// Postings of one leaf cell in CSR layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPostings {
    /// Column ids present in the cell, ascending.
    pub cols: Vec<u32>,
    /// `offsets[i]..offsets[i+1]` indexes `vecs` for `cols[i]`;
    /// `offsets.len() == cols.len() + 1`.
    pub offsets: Vec<u32>,
    /// Vector ids, grouped by column, ascending within each group.
    pub vecs: Vec<u32>,
}

impl CellPostings {
    /// Vector ids belonging to the `i`-th column of this cell.
    #[inline]
    pub fn vectors_of(&self, i: usize) -> &[u32] {
        &self.vecs[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The inverted index: leaf cell → column postings.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    cells: FastMap<CellKey, CellPostings>,
}

impl InvertedIndex {
    /// Build from the mapped repository vectors and the flat vector→column
    /// map.
    pub fn build(params: &GridParams, mapped: &MappedVectors, vec_col: &[u32]) -> Result<Self> {
        Self::build_with(params, mapped, vec_col, ExecPolicy::Sequential)
    }

    /// [`InvertedIndex::build`] with explicit parallelism: leaf keys are
    /// computed sharded, the CSR assembly stays in id order so the postings
    /// are identical for every policy.
    pub fn build_with(
        params: &GridParams,
        mapped: &MappedVectors,
        vec_col: &[u32],
        policy: ExecPolicy,
    ) -> Result<Self> {
        if mapped.len() != vec_col.len() {
            return Err(PexesoError::Corrupt(format!(
                "mapped {} vectors but vec_col has {}",
                mapped.len(),
                vec_col.len()
            )));
        }
        // Vectors arrive in id order and columns own contiguous id ranges,
        // so per-cell (column, vector) pairs accumulate already sorted.
        let keys = compute_leaf_keys(params, mapped, policy);
        let mut raw: FastMap<CellKey, Vec<(u32, u32)>> = FastMap::default();
        for (i, &key) in keys.iter().enumerate() {
            raw.entry(key).or_default().push((vec_col[i], i as u32));
        }
        let mut cells = FastMap::default();
        cells.reserve(raw.len());
        for (key, pairs) in raw {
            debug_assert!(
                pairs.windows(2).all(|w| w[0] <= w[1]),
                "pairs arrive sorted"
            );
            let mut cols: Vec<u32> = Vec::new();
            let mut offsets: Vec<u32> = Vec::new();
            let mut vecs: Vec<u32> = Vec::with_capacity(pairs.len());
            for (col, vec) in pairs {
                if cols.last() != Some(&col) {
                    cols.push(col);
                    offsets.push(vecs.len() as u32);
                }
                vecs.push(vec);
            }
            offsets.push(vecs.len() as u32);
            cells.insert(
                key,
                CellPostings {
                    cols,
                    offsets,
                    vecs,
                },
            );
        }
        Ok(Self { cells })
    }

    /// Append one vector of a **new** column (id ≥ every existing column
    /// id) to a cell's postings. Keeping appends restricted to fresh,
    /// monotonically increasing column ids preserves the sorted-by-column
    /// CSR layout in O(1), which is exactly the paper's O(1) insertion
    /// claim for the inverted index.
    pub fn append_vector(&mut self, key: CellKey, col: u32, vid: u32) -> Result<()> {
        let postings = self.cells.entry(key).or_insert_with(|| CellPostings {
            cols: Vec::new(),
            offsets: vec![0],
            vecs: Vec::new(),
        });
        match postings.cols.last() {
            Some(&last) if last > col => {
                return Err(PexesoError::InvalidParameter(format!(
                    "append_vector requires non-decreasing column ids (last {last}, got {col})"
                )));
            }
            Some(&last) if last == col => {
                postings.vecs.push(vid);
                *postings.offsets.last_mut().expect("offsets non-empty") += 1;
            }
            _ => {
                postings.cols.push(col);
                postings.vecs.push(vid);
                postings.offsets.push(postings.vecs.len() as u32);
            }
        }
        Ok(())
    }

    /// Postings of a leaf cell, if non-empty.
    #[inline]
    pub fn postings(&self, key: CellKey) -> Option<&CellPostings> {
        self.cells.get(&key)
    }

    /// Whether the cell exists (has at least one vector).
    #[inline]
    pub fn contains(&self, key: CellKey) -> bool {
        self.cells.contains_key(&key)
    }

    /// Number of non-empty leaf cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Every non-empty leaf cell with its postings, arbitrary order —
    /// introspection walks this to histogram postings lengths and cell
    /// occupancy without exposing the map itself.
    pub fn iter_cells(&self) -> impl Iterator<Item = (&CellKey, &CellPostings)> {
        self.cells.iter()
    }

    /// Total postings entries (Σ per-cell distinct columns) — the paper's
    /// `D` in the construction complexity.
    pub fn total_postings(&self) -> usize {
        self.cells.values().map(|p| p.cols.len()).sum()
    }

    /// Estimated resident size in bytes (Fig. 6b index-size accounting).
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0usize;
        for p in self.cells.values() {
            total += std::mem::size_of::<CellKey>() + std::mem::size_of::<CellPostings>();
            total += p.cols.len() * 4 + p.offsets.len() * 4 + p.vecs.len() * 4;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped_from(coords: &[&[f32]]) -> MappedVectors {
        let k = coords[0].len();
        let flat: Vec<f32> = coords.iter().flat_map(|c| c.iter().copied()).collect();
        MappedVectors::from_raw(k, flat).unwrap()
    }

    #[test]
    fn build_matches_paper_fig4_shape() {
        // 4 columns of 2 vectors each; 1-d pivot space, span 8, m=3 ->
        // leaf width 1, so a vector at coordinate c lands in cell floor(c).
        let params = GridParams::new(1, 3, 8.0).unwrap();
        let mapped = mapped_from(&[
            &[0.5], // v0, col 0
            &[0.6], // v1, col 0 (same cell as v0)
            &[1.5], // v2, col 1
            &[0.7], // v3, col 1 (cell 0, after col 0's vectors)
            &[6.5], // v4, col 2
            &[6.7], // v5, col 2
            &[1.9], // v6, col 3
            &[7.5], // v7, col 3
        ]);
        let vec_col = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let inv = InvertedIndex::build(&params, &mapped, &vec_col).unwrap();
        assert_eq!(inv.num_cells(), 4);

        let cell0 = params.leaf_key(&[0.5]);
        let p = inv.postings(cell0).unwrap();
        assert_eq!(p.cols, vec![0, 1]);
        assert_eq!(p.vectors_of(0), &[0, 1]);
        assert_eq!(p.vectors_of(1), &[3]);

        let cell1 = params.leaf_key(&[1.5]);
        let p1 = inv.postings(cell1).unwrap();
        assert_eq!(p1.cols, vec![1, 3]);
        assert_eq!(p1.vectors_of(0), &[2]);
        assert_eq!(p1.vectors_of(1), &[6]);

        assert_eq!(inv.total_postings(), 2 + 2 + 1 + 1);
    }

    #[test]
    fn missing_cell_is_none() {
        let params = GridParams::new(1, 2, 4.0).unwrap();
        let mapped = mapped_from(&[&[0.5]]);
        let inv = InvertedIndex::build(&params, &mapped, &[0]).unwrap();
        assert!(inv.postings(params.leaf_key(&[3.5])).is_none());
        assert!(inv.contains(params.leaf_key(&[0.5])));
    }

    #[test]
    fn length_mismatch_rejected() {
        let params = GridParams::new(1, 2, 4.0).unwrap();
        let mapped = mapped_from(&[&[0.5], &[1.5]]);
        assert!(InvertedIndex::build(&params, &mapped, &[0]).is_err());
    }

    #[test]
    fn csr_offsets_are_consistent() {
        let params = GridParams::new(2, 2, 4.0).unwrap();
        let mapped = mapped_from(&[&[0.1, 0.1], &[0.2, 0.2], &[0.3, 0.1], &[3.9, 3.9]]);
        let vec_col = vec![0, 0, 1, 1];
        let inv = InvertedIndex::build(&params, &mapped, &vec_col).unwrap();
        for key in [params.leaf_key(&[0.1, 0.1]), params.leaf_key(&[3.9, 3.9])] {
            let p = inv.postings(key).unwrap();
            assert_eq!(p.offsets.len(), p.cols.len() + 1);
            assert_eq!(*p.offsets.last().unwrap() as usize, p.vecs.len());
            let mut covered = 0;
            for i in 0..p.cols.len() {
                assert!(!p.vectors_of(i).is_empty());
                covered += p.vectors_of(i).len();
            }
            assert_eq!(covered, p.vecs.len());
        }
    }

    #[test]
    fn approx_bytes_positive() {
        let params = GridParams::new(1, 1, 4.0).unwrap();
        let mapped = mapped_from(&[&[0.5]]);
        let inv = InvertedIndex::build(&params, &mapped, &[0]).unwrap();
        assert!(inv.approx_bytes() > 0);
    }
}
