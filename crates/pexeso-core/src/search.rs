//! The PEXESO index and search entry points (Algorithm 3).
//!
//! [`PexesoIndex::build`] runs the offline phase: pivot selection, pivot
//! mapping, `HG_RV` construction, and the inverted index.
//! [`PexesoIndex::search`] runs the online phase: map the query column,
//! build `HG_Q`, quick-browse, block, verify. Results are exact — identical
//! to the naive scan — for every lemma-flag combination.

use std::time::{Duration, Instant};

use crate::block::{block_with, quick_browse, BlockOutput};
use crate::column::{ColumnId, ColumnSet};
use crate::config::{ExecPolicy, IndexOptions, JoinThreshold, LemmaFlags, Tau};
use crate::error::{PexesoError, Result};
use crate::exec;
use crate::grid::{GridParams, HierarchicalGrid};
use crate::invindex::InvertedIndex;
use crate::lemmas;
use crate::mapping::MappedVectors;
use crate::metric::Metric;
use crate::pivot::select_pivots_with;
use crate::query::{
    fold_outcome, rank_topk_hits, sort_threshold_hits, BudgetGuard, Exceeded, Query, QueryMode,
    QueryOutcome, QueryResponse, Queryable,
};
use crate::stats::SearchStats;
use crate::util::FastMap;
use crate::vector::{VectorId, VectorStore};
use crate::verify::{verify_budgeted, verify_topk_budgeted, VerifyContext};

/// One joinable column in a search result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    pub column: ColumnId,
    /// Matched query vectors. A lower bound when the column was confirmed
    /// early (the search stops counting once `T` is reached).
    pub match_count: u32,
}

/// Joinable-column search result with instrumentation.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Joinable columns, ascending by column id.
    pub hits: Vec<SearchHit>,
    pub stats: SearchStats,
}

/// Map the top-k engine's internal ranking into legacy [`SearchHit`]s.
fn ranked_to_hits(ranked: Vec<(u32, ColumnId)>) -> Vec<SearchHit> {
    ranked
        .into_iter()
        .map(|(count, column)| SearchHit {
            column,
            match_count: count,
        })
        .collect()
}

/// One top-k engine answer: the internal `(count, column)` ranking, the
/// search stats, and any tripped budget limit.
pub(crate) type RankedTopk = (Vec<(u32, ColumnId)>, SearchStats, Option<Exceeded>);

/// How candidate pairs are verified against the inverted index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyStrategy {
    /// Generation-stamp bookkeeping (default): same skip behaviour as the
    /// paper's DaaT without the priority queue.
    #[default]
    Stamps,
    /// The paper's literal document-at-a-time cursor merge with a
    /// priority queue over per-cell postings cursors.
    DaatHeap,
}

/// How a top-k query is answered. Results are identical either way; the
/// exhaustive form exists as the benchmark baseline the best-first engine
/// is measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopkStrategy {
    /// Best-first verification with an adaptively tightened threshold
    /// (the default; see [`crate::verify::verify_topk`]).
    #[default]
    BestFirst,
    /// Exactly count every column (early termination disabled), then sort
    /// and truncate — the "threshold search with an unreachable T, then
    /// sort" baseline.
    Exhaustive,
}

/// Per-search knobs beyond the thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    pub flags: LemmaFlags,
    /// Enable the quick-browsing shortcut (Section III-C); on by default.
    pub quick_browse: bool,
    /// Verification implementation; identical results either way.
    pub verify_strategy: VerifyStrategy,
    /// Top-k implementation; identical results either way.
    pub topk_strategy: TopkStrategy,
    /// Parallelism of the online path (query mapping, `HG_Q` build,
    /// blocking, stamp verification). Results are identical either way;
    /// [`VerifyStrategy::DaatHeap`] verification itself stays sequential.
    pub exec: ExecPolicy,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            flags: LemmaFlags::all(),
            quick_browse: true,
            verify_strategy: VerifyStrategy::Stamps,
            topk_strategy: TopkStrategy::BestFirst,
            exec: ExecPolicy::Sequential,
        }
    }
}

impl SearchOptions {
    /// Per-query options under an outer batching `policy`: a parallel
    /// outer fan-out owns the threads, so each inner query is demoted to
    /// sequential (avoiding nested fan-out); a sequential outer loop
    /// honours the per-query policy unchanged. Every batched entry point
    /// (multi-query and out-of-core) must use this one rule.
    pub(crate) fn demoted_under(self, policy: ExecPolicy) -> Self {
        match policy {
            ExecPolicy::Parallel { .. } | ExecPolicy::Fixed { .. } => SearchOptions {
                exec: ExecPolicy::Sequential,
                ..self
            },
            ExecPolicy::Sequential => self,
        }
    }
}

/// The PEXESO index over one repository of columns.
#[derive(Debug, Clone)]
pub struct PexesoIndex<M: Metric> {
    metric: M,
    options: IndexOptions,
    grid_params: GridParams,
    pivots: Vec<Vec<f32>>,
    columns: ColumnSet,
    rv_mapped: MappedVectors,
    vec_col: Vec<u32>,
    hgrv: HierarchicalGrid,
    inv: InvertedIndex,
    /// Tombstones for lazily-deleted columns (Section III-E maintenance).
    deleted: Vec<bool>,
    build_time: Duration,
}

impl<M: Metric> PexesoIndex<M> {
    /// Offline construction. When `options.levels` is `None` the grid depth
    /// is chosen by the cost model of Section III-E.
    pub fn build(columns: ColumnSet, metric: M, options: IndexOptions) -> Result<Self> {
        options.validate()?;
        if columns.n_columns() == 0 {
            return Err(PexesoError::EmptyInput("repository with zero columns"));
        }
        let started = Instant::now();
        let pivots = select_pivots_with(
            columns.store(),
            &metric,
            options.num_pivots,
            options.pivot_selection,
            options.seed,
            options.exec,
        )?;
        let rv_mapped =
            MappedVectors::build_with(columns.store(), &pivots, &metric, None, options.exec)?;
        // Span covers unit-vector repositories and anything larger actually
        // observed; queries are validated against it at search time.
        let span = metric
            .max_dist_unit(columns.dim())
            .max(rv_mapped.max_coord())
            + 1e-4;
        let levels = match options.levels {
            Some(m) => m,
            None => crate::cost::choose_levels(
                &columns,
                &rv_mapped,
                &pivots,
                &metric,
                span,
                options.seed,
            )?,
        };
        let grid_params = GridParams::new(pivots.len(), levels, span)?;
        let hgrv =
            HierarchicalGrid::build_keys_only_with(grid_params.clone(), &rv_mapped, options.exec)?;
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build_with(&grid_params, &rv_mapped, &vec_col, options.exec)?;
        let deleted = vec![false; columns.n_columns()];
        Ok(Self {
            metric,
            options,
            grid_params,
            pivots,
            columns,
            rv_mapped,
            vec_col,
            hgrv,
            inv,
            deleted,
            build_time: started.elapsed(),
        })
    }

    /// The threshold scan shared by [`Queryable::execute`] and the legacy
    /// shims: map, block, verify (optionally budgeted), and collect hits
    /// in ascending internal-column-id order.
    pub(crate) fn threshold_inner(
        &self,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
        budget: Option<&BudgetGuard>,
        premapped: Option<&MappedVectors>,
    ) -> Result<(Vec<SearchHit>, SearchStats, Option<Exceeded>)> {
        self.validate_query(query)?;
        let tau = tau.resolve(&self.metric, self.columns.dim())?;
        let t_abs = t.resolve(query.len())?;
        let mut stats = SearchStats::new();
        let total_start = Instant::now();
        let (query_mapped, blocked) =
            self.map_and_block(query, tau, opts, &mut stats, premapped)?;

        // Verification.
        let verify_start = Instant::now();
        let ctx = VerifyContext {
            columns: &self.columns,
            vec_col: &self.vec_col,
            rv_mapped: &self.rv_mapped,
            inv: &self.inv,
            metric: &self.metric,
            query,
            query_mapped: &query_mapped,
            tau,
            t_abs,
            flags: opts.flags,
            deleted: Some(&self.deleted),
        };
        // A budgeted query always runs the stamp scan: it is the verifier
        // with the per-query-vector budget checkpoint (the DaaT cursor
        // merge is a strategy ablation, not a budget-aware path).
        let (outcome, exceeded) = match opts.verify_strategy {
            VerifyStrategy::DaatHeap if budget.is_none() => {
                (crate::daat::verify_daat(&ctx, &blocked, &mut stats), None)
            }
            _ => verify_budgeted(&ctx, &blocked, &mut stats, opts.exec, budget),
        };
        stats.verify_time = verify_start.elapsed();
        stats.total_time = total_start.elapsed();

        let hits = outcome
            .joinable
            .iter()
            .map(|&c| SearchHit {
                column: c,
                match_count: outcome.match_counts[c.0 as usize],
            })
            .collect();
        Ok((hits, stats, exceeded))
    }

    /// Online search with default options.
    #[deprecated(note = "use `Queryable::execute` with `Query::threshold(tau, t)`")]
    pub fn search(&self, query: &VectorStore, tau: Tau, t: JoinThreshold) -> Result<SearchResult> {
        let (hits, stats, _) =
            self.threshold_inner(query, tau, t, SearchOptions::default(), None, None)?;
        Ok(SearchResult { hits, stats })
    }

    /// Online search with explicit lemma flags / quick-browse control.
    #[deprecated(
        note = "use `Queryable::execute` with `Query::threshold(tau, t).with_options(opts)`"
    )]
    pub fn search_with(
        &self,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
    ) -> Result<SearchResult> {
        let (hits, stats, _) = self.threshold_inner(query, tau, t, opts, None, None)?;
        Ok(SearchResult { hits, stats })
    }

    /// Batched multi-query search: answer many query columns against the
    /// same index in one call, amortising index traversal state and — under
    /// a parallel [`ExecPolicy`] — running whole queries concurrently.
    ///
    /// `results[i]` is exactly what `search_with(&queries[i], …)` returns
    /// (queries are independent, so the outer parallelism cannot change
    /// results). Each query itself runs sequentially when the outer policy
    /// is parallel, avoiding nested thread fan-out; with
    /// [`ExecPolicy::Sequential`] the per-query policy in `opts.exec` is
    /// honoured instead.
    #[deprecated(
        note = "use `Queryable::execute_many` with `Query::threshold(tau, t).with_policy(policy)`"
    )]
    pub fn search_many<Q: AsRef<VectorStore> + Sync>(
        &self,
        queries: &[Q],
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
        policy: ExecPolicy,
    ) -> Result<Vec<SearchResult>> {
        let inner_opts = opts.demoted_under(policy);
        let shards = exec::map_ranges_min(policy, queries.len(), 2, |range| {
            range
                .map(|i| {
                    let (hits, stats, _) =
                        self.threshold_inner(queries[i].as_ref(), tau, t, inner_opts, None, None)?;
                    Ok(SearchResult { hits, stats })
                })
                .collect::<Vec<Result<SearchResult>>>()
        });
        shards.into_iter().flatten().collect()
    }

    /// Shared query validation for every online entry point.
    fn validate_query(&self, query: &VectorStore) -> Result<()> {
        if query.is_empty() {
            return Err(PexesoError::EmptyInput("query column with zero vectors"));
        }
        if query.dim() != self.columns.dim() {
            return Err(PexesoError::DimensionMismatch {
                expected: self.columns.dim(),
                got: query.dim(),
            });
        }
        Ok(())
    }

    /// The shared online prologue of every search entry point: map the
    /// query into pivot space, validate against the grid span, build
    /// `HG_Q`, quick-browse (when enabled), and run the dual-grid
    /// blocking. Populates `stats.mapping_distances`, the blocking
    /// counters, and `stats.block_time`.
    fn map_and_block(
        &self,
        query: &VectorStore,
        tau_abs: f32,
        opts: SearchOptions,
        stats: &mut SearchStats,
        premapped: Option<&MappedVectors>,
    ) -> Result<(MappedVectors, BlockOutput)> {
        let map_start = Instant::now();
        let query_mapped = match premapped {
            // A shared batched pass (`execute_many`) already mapped this
            // column; the arena is policy-invariant, so reusing it is
            // byte-identical to mapping here. Count the rows as if they
            // were mapped now so batched and solo stats agree.
            Some(m) => {
                stats.mapping_distances += (self.pivots.len() * query.len()) as u64;
                m.clone()
            }
            None => MappedVectors::build_with(
                query,
                &self.pivots,
                &self.metric,
                Some(&mut stats.mapping_distances),
                opts.exec,
            )?,
        };
        if query_mapped.max_coord() > self.grid_params.span {
            return Err(PexesoError::InvalidParameter(format!(
                "query vector maps outside the pivot space (coordinate {} > span {}); \
                 normalise query vectors like the repository",
                query_mapped.max_coord(),
                self.grid_params.span
            )));
        }
        let hgq = HierarchicalGrid::build_with(self.grid_params.clone(), &query_mapped, opts.exec)?;
        // Mapping phase = pivot mapping + span check + HG_Q build: all the
        // per-query work before the dual-grid traversal starts. A batched
        // (premapped) query reports only the time actually spent here, so
        // the crate-wide "only wall-clock timings differ" contract holds.
        stats.mapping_time = map_start.elapsed();
        let block_start = Instant::now();
        let (handled, seeded) = if opts.quick_browse {
            let mut seeded = FastMap::default();
            let handled = quick_browse(&hgq, &self.inv, &mut seeded, stats);
            (Some(handled), seeded)
        } else {
            (None, FastMap::default())
        };
        let blocked = block_with(
            &hgq,
            &self.hgrv,
            &query_mapped,
            tau_abs,
            opts.flags,
            handled.as_ref(),
            seeded,
            stats,
            opts.exec,
        );
        stats.block_time = block_start.elapsed();
        Ok((query_mapped, blocked))
    }

    /// The top-k engine shared by [`Queryable::execute`] and the legacy
    /// shims, ranking under the *internal* tie-break (count descending,
    /// internal column id ascending). Dispatches on
    /// [`SearchOptions::topk_strategy`]; both strategies honour the
    /// optional budget (best-first checks per batch round, exhaustive per
    /// query vector of its full scan).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn topk_inner(
        &self,
        query: &VectorStore,
        tau: Tau,
        k: usize,
        opts: SearchOptions,
        budget: Option<&BudgetGuard>,
        premapped: Option<&MappedVectors>,
        explain: Option<&mut crate::explain::TopkExplain>,
    ) -> Result<RankedTopk> {
        self.validate_query(query)?;
        let tau_abs = tau.resolve(&self.metric, self.columns.dim())?;
        let mut stats = SearchStats::new();
        if k == 0 {
            return Ok((Vec::new(), stats, None));
        }
        let total_start = Instant::now();
        let (query_mapped, blocked) =
            self.map_and_block(query, tau_abs, opts, &mut stats, premapped)?;

        let verify_start = Instant::now();
        let ctx = VerifyContext {
            columns: &self.columns,
            vec_col: &self.vec_col,
            rv_mapped: &self.rv_mapped,
            inv: &self.inv,
            metric: &self.metric,
            query,
            query_mapped: &query_mapped,
            tau: tau_abs,
            t_abs: query.len() + 1, // top-k never early-terminates on T
            flags: opts.flags,
            deleted: Some(&self.deleted),
        };
        let (ranked, exceeded) = match opts.topk_strategy {
            TopkStrategy::BestFirst => {
                let bounds = crate::cost::column_match_bounds(
                    &blocked,
                    &self.inv,
                    self.columns.n_columns(),
                    query.len(),
                    Some(&self.deleted),
                    opts.exec,
                );
                let seed = crate::cost::topk_seed(&bounds, k);
                verify_topk_budgeted(
                    &ctx, &blocked, &bounds, seed, k, &mut stats, opts.exec, budget, explain,
                )
            }
            TopkStrategy::Exhaustive => {
                let (outcome, exceeded) =
                    verify_budgeted(&ctx, &blocked, &mut stats, opts.exec, budget);
                let mut ranked: Vec<(u32, ColumnId)> = outcome
                    .match_counts
                    .iter()
                    .enumerate()
                    .filter(|&(c, &count)| count > 0 && !self.deleted[c])
                    .map(|(c, &count)| (count, ColumnId(c as u32)))
                    .collect();
                ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                ranked.truncate(k);
                (ranked, exceeded)
            }
        };
        stats.verify_time = verify_start.elapsed();
        stats.total_time = total_start.elapsed();
        Ok((ranked, stats, exceeded))
    }

    /// Top-k joinable-column search with default options: the (up to) `k`
    /// non-deleted columns with the largest number of matching query
    /// records. See [`PexesoIndex::search_topk_with`].
    #[deprecated(note = "use `Queryable::execute` with `Query::topk(tau, k)`")]
    pub fn search_topk(&self, query: &VectorStore, tau: Tau, k: usize) -> Result<SearchResult> {
        let (ranked, stats, _) =
            self.topk_inner(query, tau, k, SearchOptions::default(), None, None, None)?;
        Ok(SearchResult {
            hits: ranked_to_hits(ranked),
            stats,
        })
    }

    /// Best-first top-k joinable-column search.
    ///
    /// Ranks columns by exact match count, descending, with ties broken
    /// by ascending column id (the same order the brute-force oracle
    /// documents); columns with zero matches never appear, so fewer than
    /// `k` hits may be returned, and `k == 0` returns no hits. An
    /// extension beyond the paper's threshold-form query, convenient when
    /// no good `T` is known a priori.
    ///
    /// Instead of exactly counting every column (see
    /// [`PexesoIndex::search_topk_exhaustive`]), the search brackets every
    /// column's join size with the cheap bounds pass of
    /// [`crate::cost::column_match_bounds`], seeds the join-size threshold
    /// from the k-th best lower bound ([`crate::cost::topk_seed`]), and
    /// verifies columns best-first (probe evidence, then upper bound,
    /// then density), tightening the threshold as the result heap fills:
    /// a column is skipped once its own upper bound ranks below the
    /// current k-th best, and an in-flight count aborts as soon as it
    /// can no longer get there. Results are exact and — like every other
    /// entry point — byte-identical for every [`ExecPolicy`].
    ///
    /// `opts.verify_strategy` is ignored (top-k has its own verifier);
    /// `opts.flags` and `opts.quick_browse` behave as in
    /// [`PexesoIndex::search_with`].
    #[deprecated(note = "use `Queryable::execute` with `Query::topk(tau, k).with_options(opts)`")]
    pub fn search_topk_with(
        &self,
        query: &VectorStore,
        tau: Tau,
        k: usize,
        opts: SearchOptions,
    ) -> Result<SearchResult> {
        let opts = SearchOptions {
            topk_strategy: TopkStrategy::BestFirst,
            ..opts
        };
        let (ranked, stats, _) = self.topk_inner(query, tau, k, opts, None, None, None)?;
        Ok(SearchResult {
            hits: ranked_to_hits(ranked),
            stats,
        })
    }

    /// Reference top-k: exactly count every column (early termination
    /// disabled), then sort and truncate — the "threshold search with an
    /// unreachable T, then sort" baseline the best-first engine is
    /// benchmarked against. Returns the identical hits
    /// (`tests/differential.rs` pins both against the brute-force oracle).
    #[deprecated(note = "use `Queryable::execute` with `Query::topk(tau, k)` and \
                `SearchOptions { topk_strategy: TopkStrategy::Exhaustive, .. }`")]
    pub fn search_topk_exhaustive(
        &self,
        query: &VectorStore,
        tau: Tau,
        k: usize,
    ) -> Result<SearchResult> {
        let opts = SearchOptions {
            topk_strategy: TopkStrategy::Exhaustive,
            ..Default::default()
        };
        let (ranked, stats, _) = self.topk_inner(query, tau, k, opts, None, None, None)?;
        Ok(SearchResult {
            hits: ranked_to_hits(ranked),
            stats,
        })
    }

    /// Batched multi-query top-k: answer many query columns against the
    /// same index in one call, mirroring [`PexesoIndex::search_many`].
    /// `results[i]` is exactly what `search_topk_with(&queries[i], …)`
    /// returns; under a parallel outer `policy` each query runs
    /// sequentially to avoid nested fan-out.
    #[deprecated(
        note = "use `Queryable::execute_many` with `Query::topk(tau, k).with_policy(policy)`"
    )]
    pub fn search_topk_many<Q: AsRef<VectorStore> + Sync>(
        &self,
        queries: &[Q],
        tau: Tau,
        k: usize,
        opts: SearchOptions,
        policy: ExecPolicy,
    ) -> Result<Vec<SearchResult>> {
        let inner_opts = opts.demoted_under(policy);
        let shards = exec::map_ranges_min(policy, queries.len(), 2, |range| {
            range
                .map(|i| {
                    let (ranked, stats, _) =
                        self.topk_inner(queries[i].as_ref(), tau, k, inner_opts, None, None, None)?;
                    Ok(SearchResult {
                        hits: ranked_to_hits(ranked),
                        stats,
                    })
                })
                .collect::<Vec<Result<SearchResult>>>()
        });
        shards.into_iter().flatten().collect()
    }

    /// Append a new column online (Section III-E: O((|P|+m)·|s|) for the
    /// pivot mapping and grid insertions, O(1) per posting). The appended
    /// vectors must map inside the existing pivot-space span (guaranteed
    /// for unit-normalised data); otherwise the index must be rebuilt.
    pub fn append_column<'a>(
        &mut self,
        table_name: &str,
        column_name: &str,
        external_id: u64,
        vectors: impl IntoIterator<Item = &'a [f32]>,
    ) -> Result<ColumnId> {
        let col_id = self
            .columns
            .add_column(table_name, column_name, external_id, vectors)?;
        let meta = self.columns.column(col_id).clone();
        for vid in meta.vector_range() {
            let v = self.columns.store().get_raw(vid as usize);
            let mapped: Vec<f32> = self.pivots.iter().map(|p| self.metric.dist(v, p)).collect();
            if mapped.iter().any(|&c| c > self.grid_params.span) {
                return Err(PexesoError::InvalidParameter(format!(
                    "appended vector maps outside the pivot space (> {}); rebuild the index",
                    self.grid_params.span
                )));
            }
            self.rv_mapped.push(&mapped)?;
            let leaf = self.grid_params.leaf_key(&mapped);
            self.hgrv.insert(leaf, vid);
            self.inv.append_vector(leaf, col_id.0, vid)?;
            self.vec_col.push(col_id.0);
        }
        self.deleted.push(false);
        Ok(col_id)
    }

    /// Delete a column lazily: O(1), the paper's deletion mode. Postings
    /// and grid cells are skipped at query time; call
    /// [`PexesoIndex::compact`] to reclaim space.
    pub fn remove_column(&mut self, column: ColumnId) -> Result<()> {
        let c = column.0 as usize;
        if c >= self.deleted.len() {
            return Err(PexesoError::InvalidParameter(format!("no column {c}")));
        }
        self.deleted[c] = true;
        Ok(())
    }

    /// Whether a column has been tombstoned.
    pub fn is_deleted(&self, column: ColumnId) -> bool {
        self.deleted
            .get(column.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Number of live (non-deleted) columns.
    pub fn live_columns(&self) -> usize {
        self.deleted.iter().filter(|&&d| !d).count()
    }

    /// Structural statistics of this index — column/vector counts, cell
    /// histograms, pivot spread — for the introspection plane (see
    /// [`crate::inspect`]). One read-only walk over the inverted index
    /// and mapped coordinates.
    pub fn inspect(&self) -> crate::inspect::PartitionInspection {
        crate::inspect::PartitionInspection::derive(
            &self.inv,
            &self.deleted,
            self.rv_mapped.len() as u64,
            self.rv_mapped.iter(),
            self.pivots.len(),
        )
    }

    /// Rebuild without tombstoned columns, reclaiming their space.
    pub fn compact(self) -> Result<Self> {
        if self.deleted.iter().all(|&d| !d) {
            return Ok(self);
        }
        let mut fresh = ColumnSet::new(self.columns.dim());
        for (c, meta) in self.columns.columns().iter().enumerate() {
            if self.deleted[c] {
                continue;
            }
            fresh.add_column(
                &meta.table_name,
                &meta.column_name,
                meta.external_id,
                meta.vector_range()
                    .map(|v| self.columns.store().get_raw(v as usize)),
            )?;
        }
        Self::build(fresh, self.metric.clone(), self.options.clone())
    }

    /// All (query vector, target vector) matching pairs between the query
    /// and one column — the mapping PEXESO presents with each result table.
    /// Uses Lemma 1/2 filtering; exact.
    pub fn match_pairs(
        &self,
        query: &VectorStore,
        query_mapped: Option<&MappedVectors>,
        column: ColumnId,
        tau: Tau,
    ) -> Result<Vec<(u32, VectorId)>> {
        let tau = tau.resolve(&self.metric, self.columns.dim())?;
        let owned;
        let qm = match query_mapped {
            Some(m) => m,
            None => {
                owned = MappedVectors::build(query, &self.pivots, &self.metric, None)?;
                &owned
            }
        };
        let meta = self.columns.column(column);
        let mut out = Vec::new();
        for q in 0..query.len() {
            let qmap = qm.get(q);
            let qv = query.get_raw(q);
            for v in meta.vector_range() {
                let xm = self.rv_mapped.get(v as usize);
                if lemmas::lemma1_filter(qmap, xm, tau) {
                    continue;
                }
                let is_match = lemmas::lemma2_match(qmap, xm, tau)
                    || self
                        .metric
                        .dist(qv, self.columns.store().get_raw(v as usize))
                        <= tau;
                if is_match {
                    out.push((q as u32, VectorId(v)));
                }
            }
        }
        Ok(out)
    }

    /// Exact joinability ratio of one column (no early termination).
    pub fn joinability(&self, query: &VectorStore, column: ColumnId, tau: Tau) -> Result<f64> {
        let pairs = self.match_pairs(query, None, column, tau)?;
        let mut matched = vec![false; query.len()];
        for (q, _) in pairs {
            matched[q as usize] = true;
        }
        Ok(matched.iter().filter(|&&m| m).count() as f64 / query.len() as f64)
    }

    pub fn columns(&self) -> &ColumnSet {
        &self.columns
    }

    pub fn metric(&self) -> &M {
        &self.metric
    }

    pub fn options(&self) -> &IndexOptions {
        &self.options
    }

    pub fn grid_params(&self) -> &GridParams {
        &self.grid_params
    }

    pub fn pivots(&self) -> &[Vec<f32>] {
        &self.pivots
    }

    pub fn num_levels(&self) -> usize {
        self.grid_params.levels
    }

    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    pub fn inverted_index(&self) -> &InvertedIndex {
        &self.inv
    }

    pub fn rv_mapped(&self) -> &MappedVectors {
        &self.rv_mapped
    }

    /// Estimated resident size of the *index structures* in bytes (grid +
    /// inverted index + mapped vectors + pivots + vec→col map), excluding
    /// the raw table-repository vectors, matching the paper's index-size
    /// accounting (Fig. 6b).
    pub fn index_bytes(&self) -> usize {
        self.hgrv.approx_bytes()
            + self.inv.approx_bytes()
            + self.rv_mapped.raw_data().len() * 4
            + self.vec_col.len() * 4
            + self.pivots.iter().map(|p| p.len() * 4).sum::<usize>()
    }

    /// Size of the raw vector data (repository storage).
    pub fn data_bytes(&self) -> usize {
        self.columns.store().raw_data().len() * 4
    }

    /// Reassemble from persisted parts (grid and inverted index are rebuilt
    /// deterministically from the mapped vectors).
    pub(crate) fn from_parts(
        columns: ColumnSet,
        pivots: Vec<Vec<f32>>,
        rv_mapped: MappedVectors,
        options: IndexOptions,
        grid_params: GridParams,
        metric: M,
    ) -> Result<Self> {
        if rv_mapped.len() != columns.n_vectors() {
            return Err(PexesoError::Corrupt(format!(
                "mapped vectors {} != repository vectors {}",
                rv_mapped.len(),
                columns.n_vectors()
            )));
        }
        let started = Instant::now();
        let hgrv = HierarchicalGrid::build_keys_only(grid_params.clone(), &rv_mapped)?;
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build(&grid_params, &rv_mapped, &vec_col)?;
        let deleted = vec![false; columns.n_columns()];
        Ok(Self {
            metric,
            options,
            grid_params,
            pivots,
            columns,
            rv_mapped,
            vec_col,
            hgrv,
            inv,
            deleted,
            build_time: started.elapsed(),
        })
    }
}

impl<M: Metric> PexesoIndex<M> {
    /// Reject a [`Query`] expecting a different metric than this index's.
    fn check_metric_expectation(&self, query: &Query) -> Result<()> {
        match query.metric.as_deref() {
            Some(expected) if expected != self.metric.name() => {
                Err(PexesoError::InvalidParameter(format!(
                    "index was built with metric '{}'; query expects '{expected}'",
                    self.metric.name()
                )))
            }
            _ => Ok(()),
        }
    }

    /// [`Queryable::execute`] with an optional pre-computed pivot mapping
    /// of the query column (see [`Self::premap_columns`]); `None` is
    /// exactly `execute`.
    fn execute_premapped(
        &self,
        query: &Query,
        vectors: &VectorStore,
        premapped: Option<&MappedVectors>,
    ) -> Result<QueryResponse> {
        self.check_metric_expectation(query)?;
        let mut guard = BudgetGuard::start(&query.budget);
        let (mut hits, stats, exceeded, trajectory) = crate::outofcore::execute_on_index_explained(
            self, query, vectors, &mut guard, premapped,
        )?;
        let mut outcome = QueryOutcome::Exact;
        fold_outcome(&mut outcome, exceeded);
        // The one branch the untraced path pays: no timer, no allocation
        // unless the query asked for a trace.
        let merge_start = query.trace.enabled().then(Instant::now);
        let hits = match query.mode {
            QueryMode::Threshold(_) => {
                sort_threshold_hits(&mut hits);
                hits
            }
            QueryMode::Topk(k) => rank_topk_hits(hits, k),
        };
        let trace = merge_start.map(|m| {
            let merge = m.elapsed();
            crate::trace::QueryTrace::new(crate::trace::phase_tree(
                &stats,
                stats.total_time + merge,
                merge,
            ))
        });
        let explain = query.explain.then(|| {
            crate::explain::ExplainReport::from_stats(
                query,
                &stats,
                hits.len() as u64,
                outcome,
                trajectory,
            )
        });
        Ok(QueryResponse {
            hits,
            stats,
            outcome,
            trace,
            explain,
        })
    }

    /// The shared mapping pass behind [`Queryable::execute_many`]: map
    /// every query vector of every column in **one** batched kernel walk
    /// (one pivot-arena flatten, one shardable fill) and slice the arena
    /// back into per-column mappings. Rows are mapped independently, so
    /// each slice is byte-identical to mapping that column alone.
    ///
    /// Returns `None` when the columns cannot share a pass (mixed or
    /// mismatched dimensions, an empty column, no columns) — callers fall
    /// back to per-column mapping, which also surfaces the per-column
    /// validation errors in the contract order.
    fn premap_columns(
        &self,
        policy: ExecPolicy,
        columns: &[&VectorStore],
    ) -> Option<Vec<MappedVectors>> {
        if columns.is_empty()
            || columns
                .iter()
                .any(|c| c.dim() != self.columns.dim() || c.is_empty())
        {
            return None;
        }
        let mut all = VectorStore::new(self.columns.dim());
        for col in columns {
            for v in 0..col.len() {
                all.push(col.get_raw(v)).ok()?;
            }
        }
        let mapped =
            MappedVectors::build_with(&all, &self.pivots, &self.metric, None, policy).ok()?;
        let k = self.pivots.len();
        let mut out = Vec::with_capacity(columns.len());
        let mut offset = 0usize;
        for col in columns {
            let rows = &mapped.raw_data()[offset * k..(offset + col.len()) * k];
            out.push(MappedVectors::from_raw(k, rows.to_vec()).ok()?);
            offset += col.len();
        }
        Some(out)
    }
}

impl<M: Metric> Queryable for PexesoIndex<M> {
    /// Execute one unified [`Query`] against the in-memory index.
    ///
    /// Hits follow the unified contract: threshold hits ascend by
    /// `external_id`; top-k ranks by count descending with ties broken by
    /// ascending `external_id`. The internal top-k tie-break runs on
    /// insertion-order column ids, which need not agree with the
    /// caller-chosen external ids, so boundary ties are resolved
    /// tie-inclusively (the index is re-queried with a doubled `k` until
    /// every column tied with the boundary count is present) before the
    /// global re-rank — the same discipline the partitioned backends use.
    fn execute(&self, query: &Query, vectors: &VectorStore) -> Result<QueryResponse> {
        self.execute_premapped(query, vectors, None)
    }

    /// Batched execution: one shared pivot-mapping pass maps every query
    /// vector of every column in a single batched kernel walk (see
    /// `Self::premap_columns`), then `query.policy` fans whole query
    /// columns across threads; each query itself is demoted to sequential
    /// under a parallel outer policy (the crate-wide no-nested-fan-out
    /// rule). The mapping arena is policy-invariant and rows are mapped
    /// independently, so `responses[i]` is byte-identical to
    /// `execute(query, columns[i])` — stats counters included.
    fn execute_many(&self, query: &Query, columns: &[&VectorStore]) -> Result<Vec<QueryResponse>> {
        let inner = Query {
            options: query.options.demoted_under(query.policy),
            ..query.clone()
        };
        let premapped = self.premap_columns(query.policy, columns);
        let shards = exec::map_ranges_min(query.policy, columns.len(), 2, |range| {
            range
                .map(|i| {
                    self.execute_premapped(&inner, columns[i], premapped.as_ref().map(|p| &p[i]))
                })
                .collect::<Vec<Result<QueryResponse>>>()
        });
        shards.into_iter().flatten().collect()
    }
}

/// Exhaustive-scan reference: the ground-truth answer to the joinable
/// column search problem. Used by tests, the cost model justification, and
/// the baseline crate. Supports the same early-termination rule on `T` as
/// the accelerated methods when `early_terminate` is set.
pub fn naive_search<M: Metric>(
    columns: &ColumnSet,
    metric: &M,
    query: &VectorStore,
    tau: Tau,
    t: JoinThreshold,
    early_terminate: bool,
) -> Result<(Vec<SearchHit>, SearchStats)> {
    if query.is_empty() {
        return Err(PexesoError::EmptyInput("query column with zero vectors"));
    }
    let tau = tau.resolve(metric, columns.dim())?;
    let t_abs = t.resolve(query.len())?;
    let mut stats = SearchStats::new();
    let start = Instant::now();
    let mut hits = Vec::new();
    for (ci, col) in columns.columns().iter().enumerate() {
        let mut count = 0u32;
        let n_q = query.len();
        for (qi, q) in query.iter().enumerate() {
            let mut matched = false;
            for v in col.vector_range() {
                stats.distance_computations += 1;
                if metric.dist(q, columns.store().get_raw(v as usize)) <= tau {
                    matched = true;
                    break;
                }
            }
            if matched {
                count += 1;
                if early_terminate && count as usize >= t_abs {
                    break;
                }
            } else if early_terminate {
                // Lemma 7 applies to any method: remaining query vectors
                // cannot reach T.
                let remaining = n_q - qi - 1;
                if (count as usize) + remaining < t_abs {
                    break;
                }
            }
        }
        if count as usize >= t_abs {
            hits.push(SearchHit {
                column: ColumnId(ci as u32),
                match_count: count,
            });
        }
    }
    stats.total_time = start.elapsed();
    stats.verify_time = stats.total_time;
    Ok((hits, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PivotSelection;
    use crate::metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    fn instance(seed: u64, n_cols: usize, col_len: usize, nq: usize) -> (ColumnSet, VectorStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 16;
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng, dim)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng, dim);
            query.push(&v).unwrap();
        }
        (columns, query)
    }

    fn build(columns: ColumnSet, pivots: usize, levels: usize) -> PexesoIndex<Euclidean> {
        PexesoIndex::build(
            columns,
            Euclidean,
            IndexOptions {
                num_pivots: pivots,
                levels: Some(levels),
                pivot_selection: PivotSelection::Pca,
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn search_equals_naive_across_settings() {
        for seed in [1u64, 2, 3] {
            let (columns, query) = instance(seed, 15, 25, 10);
            let index = build(columns.clone(), 4, 4);
            for tau in [Tau::Ratio(0.04), Tau::Ratio(0.2), Tau::Absolute(0.8)] {
                for t in [
                    JoinThreshold::Ratio(0.2),
                    JoinThreshold::Ratio(0.6),
                    JoinThreshold::Count(1),
                ] {
                    let (naive, _) =
                        naive_search(&columns, &Euclidean, &query, tau, t, false).unwrap();
                    let result = index.execute(&Query::threshold(tau, t), &query).unwrap();
                    assert!(result.exact());
                    let got: Vec<u64> = result.hits.iter().map(|h| h.external_id).collect();
                    // External ids equal insertion order here, so the
                    // unified external-id ordering matches the oracle's.
                    let expected: Vec<u64> = naive.iter().map(|h| h.column.0 as u64).collect();
                    assert_eq!(got, expected, "seed={seed} tau={tau:?} t={t:?}");
                }
            }
        }
    }

    #[test]
    fn search_correct_for_every_pivot_and_level_combo() {
        let (columns, query) = instance(10, 10, 20, 8);
        let tau = Tau::Ratio(0.15);
        let t = JoinThreshold::Ratio(0.4);
        let (naive, _) = naive_search(&columns, &Euclidean, &query, tau, t, false).unwrap();
        let expected: Vec<ColumnId> = naive.iter().map(|h| h.column).collect();
        for pivots in [1usize, 3, 5] {
            for levels in [1usize, 3, 6, 8] {
                let index = build(columns.clone(), pivots, levels);
                let result = index.execute(&Query::threshold(tau, t), &query).unwrap();
                let got: Vec<ColumnId> = result
                    .hits
                    .iter()
                    .map(|h| ColumnId(h.external_id as u32))
                    .collect();
                assert_eq!(got, expected, "|P|={pivots} m={levels}");
            }
        }
    }

    #[test]
    fn empty_query_rejected() {
        let (columns, _) = instance(4, 3, 5, 1);
        let index = build(columns, 2, 2);
        let empty = VectorStore::new(16);
        let q = Query::threshold(Tau::Ratio(0.1), JoinThreshold::Count(1));
        assert!(index.execute(&q, &empty).is_err());
    }

    #[test]
    fn dim_mismatch_rejected() {
        let (columns, _) = instance(5, 3, 5, 1);
        let index = build(columns, 2, 2);
        let mut q = VectorStore::new(8);
        q.push(&[0.0; 8]).unwrap();
        let query = Query::threshold(Tau::Ratio(0.1), JoinThreshold::Count(1));
        assert!(matches!(
            index.execute(&query, &q),
            Err(PexesoError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_repository_rejected() {
        let columns = ColumnSet::new(4);
        assert!(PexesoIndex::build(columns, Euclidean, IndexOptions::default()).is_err());
    }

    #[test]
    fn match_pairs_and_joinability_are_exact() {
        let (columns, query) = instance(6, 6, 12, 6);
        let index = build(columns.clone(), 3, 4);
        let tau = Tau::Ratio(0.25);
        let tau_abs = tau.resolve(&Euclidean, 16).unwrap();
        for c in 0..columns.n_columns() {
            let col = ColumnId(c as u32);
            let pairs = index.match_pairs(&query, None, col, tau).unwrap();
            // Brute-force the expected pairs.
            let meta = columns.column(col);
            let mut expected = Vec::new();
            for q in 0..query.len() {
                for v in meta.vector_range() {
                    if Euclidean.dist(query.get_raw(q), columns.store().get_raw(v as usize))
                        <= tau_abs
                    {
                        expected.push((q as u32, VectorId(v)));
                    }
                }
            }
            assert_eq!(pairs, expected, "column {c}");
            let jn = index.joinability(&query, col, tau).unwrap();
            let mut matched = vec![false; query.len()];
            for (q, _) in &expected {
                matched[*q as usize] = true;
            }
            let expected_jn = matched.iter().filter(|&&m| m).count() as f64 / query.len() as f64;
            assert!((jn - expected_jn).abs() < 1e-12);
        }
    }

    #[test]
    fn unnormalised_query_outside_span_is_rejected() {
        let (columns, _) = instance(7, 4, 8, 1);
        let index = build(columns, 3, 3);
        let mut q = VectorStore::new(16);
        q.push(&[10.0; 16]).unwrap(); // far outside the unit ball
        let query = Query::threshold(Tau::Ratio(0.1), JoinThreshold::Count(1));
        let err = index.execute(&query, &q);
        assert!(matches!(err, Err(PexesoError::InvalidParameter(_))));
    }

    #[test]
    fn naive_early_termination_matches_exact_answer_set() {
        let (columns, query) = instance(8, 12, 20, 9);
        let tau = Tau::Ratio(0.2);
        let t = JoinThreshold::Ratio(0.5);
        let (a, _) = naive_search(&columns, &Euclidean, &query, tau, t, false).unwrap();
        let (b, _) = naive_search(&columns, &Euclidean, &query, tau, t, true).unwrap();
        let ids = |v: &[SearchHit]| v.iter().map(|h| h.column).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn index_size_accounting_positive_and_ordered() {
        let (columns, _) = instance(9, 8, 30, 1);
        let index = build(columns, 4, 4);
        assert!(index.index_bytes() > 0);
        assert!(index.data_bytes() > 0);
    }

    #[test]
    fn stats_are_populated() {
        let (columns, query) = instance(11, 10, 25, 8);
        let index = build(columns, 4, 4);
        let r = index
            .execute(
                &Query::threshold(Tau::Ratio(0.2), JoinThreshold::Ratio(0.4)),
                &query,
            )
            .unwrap();
        assert!(r.stats.mapping_distances > 0);
        assert!(r.stats.candidate_pairs + r.stats.matching_pairs + r.stats.quick_browse_pairs > 0);
        assert!(r.stats.total_time >= r.stats.block_time);
    }
}
