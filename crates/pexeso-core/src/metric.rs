//! Distance functions and batched early-exit distance kernels.
//!
//! PEXESO supports *any* metric; the pivot lemmata only need the triangle
//! inequality. The paper's experiments use Euclidean distance over
//! unit-normalised vectors (maximum possible distance 2), which is the
//! default throughout this repo; Manhattan and Chebyshev are provided to
//! demonstrate metric-genericity and for tests.
//!
//! ## Kernel API
//!
//! Verification and pivot mapping are dominated by distance arithmetic, so
//! the [`Metric`] trait exposes two batched/thresholded entry points beyond
//! the plain [`Metric::dist`]:
//!
//! * [`Metric::dist_le`] answers `d(a, b) ≤ τ` **without** committing to the
//!   full distance: the Euclidean kernel accumulates the *squared* distance,
//!   checks a conservative squared bound every block, and bails out early
//!   once the partial sum alone proves `d > τ` — no `sqrt` and often only a
//!   prefix of the dimensions touched. When no early exit fires it falls
//!   through to exactly the same accumulation as `dist`, so the answer is
//!   bit-identical to `dist(a, b) <= tau` (the verification loop depends on
//!   this for exactness).
//! * [`Metric::dist_batch`] computes one query against a contiguous arena
//!   of candidates (the layout [`crate::vector::VectorStore`] and
//!   [`crate::mapping::MappedVectors`] already use), keeping the query hot
//!   in registers/cache across rows.
//!
//! Both have default implementations in terms of `dist`, so custom metrics
//! stay one-method simple; the built-in metrics override them.
//!
//! The arithmetic itself lives in [`crate::kernel`]: explicit SIMD inner
//! loops (AVX2 on x86-64, NEON on aarch64, runtime-detected) over an
//! always-compiled eight-lane scalar ground truth, every tier
//! bit-identical for finite inputs. See the kernel module docs for the
//! exact-agreement contract and the `PEXESO_FORCE_SCALAR` escape hatch.

use crate::kernel;

/// A metric space over `&[f32]` vectors.
///
/// Implementations must satisfy the metric axioms — in particular the
/// triangle inequality, on which every filtering lemma relies.
///
/// Only [`Metric::dist`], [`Metric::max_dist_unit`] and [`Metric::name`]
/// are required; the kernel methods default to exact fallbacks. Overrides
/// of [`Metric::dist_le`] must return exactly `dist(a, b) <= tau` — they
/// may only be *faster*, never different.
pub trait Metric: Send + Sync + Clone + 'static {
    /// Distance between two equal-length vectors.
    fn dist(&self, a: &[f32], b: &[f32]) -> f32;

    /// Early-exit threshold test: `d(a, b) <= tau`, with license to stop
    /// as soon as the outcome is decided. Must agree exactly with
    /// `self.dist(a, b) <= tau`.
    #[inline]
    fn dist_le(&self, a: &[f32], b: &[f32], tau: f32) -> bool {
        self.dist(a, b) <= tau
    }

    /// Distances from `q` to every `q.len()`-wide row of the contiguous
    /// arena `flat`, written into `out` (`out.len() == flat.len() / q.len()`).
    fn dist_batch(&self, q: &[f32], flat: &[f32], out: &mut [f32]) {
        debug_assert_eq!(flat.len(), q.len() * out.len());
        for (row, o) in flat.chunks_exact(q.len()).zip(out.iter_mut()) {
            *o = self.dist(q, row);
        }
    }

    /// Gather form of [`Metric::dist_le`] for the verification inner loop:
    /// test the rows named by `vids` (each a row index into the contiguous
    /// `arena`, `dim` floats per row) against `q` in order, stopping at the
    /// first row within `tau`. Returns `(rows_tested, first_match)`, where
    /// `first_match` indexes into `vids`.
    ///
    /// Must agree exactly with looping `dist_le` over the rows and breaking
    /// at the first `true` — same outcome and the same number of rows
    /// tested, so callers can keep distance-computation counters identical
    /// across implementations. Overrides may only hoist per-call overhead
    /// and prefetch ahead, never change which rows are tested.
    fn dist_le_first(
        &self,
        q: &[f32],
        arena: &[f32],
        dim: usize,
        vids: &[u32],
        tau: f32,
    ) -> (usize, Option<usize>) {
        debug_assert_eq!(q.len(), dim);
        for (i, &vid) in vids.iter().enumerate() {
            if let Some(&next) = vids.get(i + 1) {
                kernel::prefetch(&arena[next as usize * dim..]);
            }
            let start = vid as usize * dim;
            if self.dist_le(q, &arena[start..start + dim], tau) {
                return (i + 1, Some(i));
            }
        }
        (vids.len(), None)
    }

    /// Upper bound on the distance between two L2-unit vectors of the given
    /// dimensionality. Used to resolve ratio-form thresholds (Section V of
    /// the paper) and to bound pivot-space coordinates.
    fn max_dist_unit(&self, dim: usize) -> f32;

    /// Short stable name for diagnostics and persistence validation.
    fn name(&self) -> &'static str;
}

/// Euclidean (L2) distance. `max_dist_unit` = 2 for unit vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        kernel::l2_sq(a, b).sqrt()
    }

    #[inline]
    fn dist_le(&self, a: &[f32], b: &[f32], tau: f32) -> bool {
        kernel::l2_le(a, b, tau)
    }

    fn dist_batch(&self, q: &[f32], flat: &[f32], out: &mut [f32]) {
        debug_assert_eq!(flat.len(), q.len() * out.len());
        for (row, o) in flat.chunks_exact(q.len()).zip(out.iter_mut()) {
            *o = kernel::l2_sq(q, row).sqrt();
        }
    }

    #[inline]
    fn dist_le_first(
        &self,
        q: &[f32],
        arena: &[f32],
        dim: usize,
        vids: &[u32],
        tau: f32,
    ) -> (usize, Option<usize>) {
        kernel::l2_le_first(q, arena, dim, vids, tau)
    }

    fn max_dist_unit(&self, _dim: usize) -> f32 {
        2.0
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Manhattan (L1) distance. For unit L2 vectors, ‖a−b‖₁ ≤ √dim·‖a−b‖₂ ≤ 2√dim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        kernel::l1(a, b)
    }

    #[inline]
    fn dist_le(&self, a: &[f32], b: &[f32], tau: f32) -> bool {
        kernel::l1_le(a, b, tau)
    }

    fn dist_batch(&self, q: &[f32], flat: &[f32], out: &mut [f32]) {
        debug_assert_eq!(flat.len(), q.len() * out.len());
        for (row, o) in flat.chunks_exact(q.len()).zip(out.iter_mut()) {
            *o = kernel::l1(q, row);
        }
    }

    fn max_dist_unit(&self, dim: usize) -> f32 {
        2.0 * (dim as f32).sqrt()
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }
}

/// Angular distance: `arccos(a·b / (‖a‖‖b‖))`, a true metric on the unit
/// sphere (unlike raw cosine similarity, which violates the triangle
/// inequality). Maximum distance π for antipodal unit vectors. Zero-norm
/// inputs are treated as orthogonal (distance π/2). No early exit exists
/// for the dot product, so `dist_le` keeps the default implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Angular;

impl Metric for Angular {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        let (dot, na, nb) = kernel::angular_parts(a, b);
        if na == 0.0 || nb == 0.0 {
            return std::f32::consts::FRAC_PI_2;
        }
        let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
        cos.acos()
    }

    fn max_dist_unit(&self, _dim: usize) -> f32 {
        std::f32::consts::PI
    }

    fn name(&self) -> &'static str {
        "angular"
    }
}

/// Chebyshev (L∞) distance. For unit L2 vectors, ‖a−b‖∞ ≤ ‖a−b‖₂ ≤ 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        kernel::linf(a, b)
    }

    /// `max` is exact under any evaluation order, so the early exit (bail
    /// at the first block with a coordinate beyond τ) is trivially
    /// equivalent.
    #[inline]
    fn dist_le(&self, a: &[f32], b: &[f32], tau: f32) -> bool {
        kernel::linf_le(a, b, tau)
    }

    fn dist_batch(&self, q: &[f32], flat: &[f32], out: &mut [f32]) {
        debug_assert_eq!(flat.len(), q.len() * out.len());
        for (row, o) in flat.chunks_exact(q.len()).zip(out.iter_mut()) {
            *o = kernel::linf(q, row);
        }
    }

    fn max_dist_unit(&self, _dim: usize) -> f32 {
        2.0
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn euclidean_values() {
        assert!((Euclidean.dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(Euclidean.dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_values() {
        assert_eq!(Manhattan.dist(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
    }

    #[test]
    fn chebyshev_values() {
        assert_eq!(Chebyshev.dist(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
    }

    fn triangle_holds<M: Metric>(m: M) {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let a: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let c: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let ab = m.dist(&a, &b);
            let bc = m.dist(&b, &c);
            let ac = m.dist(&a, &c);
            assert!(
                ac <= ab + bc + 1e-4,
                "triangle violated: {ac} > {ab} + {bc}"
            );
            assert!((m.dist(&a, &b) - m.dist(&b, &a)).abs() < 1e-6, "symmetry");
        }
    }

    #[test]
    fn metric_axioms() {
        triangle_holds(Euclidean);
        triangle_holds(Manhattan);
        triangle_holds(Chebyshev);
        triangle_holds(Angular);
    }

    #[test]
    fn angular_values() {
        use std::f32::consts::{FRAC_PI_2, PI};
        assert!(
            Angular.dist(&[1.0, 0.0], &[2.0, 0.0]).abs() < 1e-6,
            "parallel = 0"
        );
        assert!((Angular.dist(&[1.0, 0.0], &[0.0, 1.0]) - FRAC_PI_2).abs() < 1e-6);
        assert!((Angular.dist(&[1.0, 0.0], &[-1.0, 0.0]) - PI).abs() < 1e-5);
        // Zero vectors behave as orthogonal, never NaN.
        assert!((Angular.dist(&[0.0, 0.0], &[1.0, 0.0]) - FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn unit_vector_max_distances() {
        let mut rng = StdRng::seed_from_u64(12);
        let dim = 16;
        for _ in 0..100 {
            let mut a: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let mut b: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            a.iter_mut().for_each(|x| *x /= na);
            b.iter_mut().for_each(|x| *x /= nb);
            assert!(Euclidean.dist(&a, &b) <= Euclidean.max_dist_unit(dim) + 1e-5);
            assert!(Manhattan.dist(&a, &b) <= Manhattan.max_dist_unit(dim) + 1e-5);
            assert!(Chebyshev.dist(&a, &b) <= Chebyshev.max_dist_unit(dim) + 1e-5);
        }
    }

    fn random_pair(rng: &mut StdRng, dim: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        (a, b)
    }

    /// The kernel contract: `dist_le` agrees with `dist() <= tau` exactly,
    /// including when tau is the computed distance itself (the boundary).
    fn dist_le_is_exact<M: Metric>(m: M) {
        let mut rng = StdRng::seed_from_u64(77);
        for dim in [1usize, 3, 4, 7, 8, 31, 32, 64, 129] {
            for _ in 0..200 {
                let (a, b) = random_pair(&mut rng, dim);
                let d = m.dist(&a, &b);
                for tau in [d, d * 0.999, d * 1.001, rng.gen_range(0.0f32..3.0), 0.0] {
                    assert_eq!(
                        m.dist_le(&a, &b, tau),
                        m.dist(&a, &b) <= tau,
                        "{} dim={dim} d={d} tau={tau}",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dist_le_matches_dist_exactly() {
        dist_le_is_exact(Euclidean);
        dist_le_is_exact(Manhattan);
        dist_le_is_exact(Chebyshev);
        dist_le_is_exact(Angular);
    }

    /// `dist_batch` agrees with per-row `dist` bit-for-bit.
    fn dist_batch_is_exact<M: Metric>(m: M) {
        let mut rng = StdRng::seed_from_u64(78);
        for dim in [1usize, 4, 17, 64] {
            let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let rows = 37;
            let flat: Vec<f32> = (0..rows * dim)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect();
            let mut out = vec![0.0f32; rows];
            m.dist_batch(&q, &flat, &mut out);
            for (i, row) in flat.chunks_exact(dim).enumerate() {
                assert_eq!(out[i], m.dist(&q, row), "{} dim={dim} row={i}", m.name());
            }
        }
    }

    #[test]
    fn dist_batch_matches_dist_exactly() {
        dist_batch_is_exact(Euclidean);
        dist_batch_is_exact(Manhattan);
        dist_batch_is_exact(Chebyshev);
        dist_batch_is_exact(Angular);
    }

    #[test]
    fn dist_le_tiny_tau_never_false_positives() {
        // Degenerate thresholds (0, subnormal) must stay exact.
        let a = [0.5f32; 64];
        let mut b = a;
        assert!(Euclidean.dist_le(&a, &b, 0.0));
        b[63] += 1e-3;
        assert!(!Euclidean.dist_le(&a, &b, 0.0));
        assert!(!Euclidean.dist_le(&a, &b, 1e-30));
        assert!(Euclidean.dist_le(&a, &b, 1e-2));
    }
}
