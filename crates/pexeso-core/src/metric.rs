//! Distance functions.
//!
//! PEXESO supports *any* metric; the pivot lemmata only need the triangle
//! inequality. The paper's experiments use Euclidean distance over
//! unit-normalised vectors (maximum possible distance 2), which is the
//! default throughout this repo; Manhattan and Chebyshev are provided to
//! demonstrate metric-genericity and for tests.

/// A metric space over `&[f32]` vectors.
///
/// Implementations must satisfy the metric axioms — in particular the
/// triangle inequality, on which every filtering lemma relies.
pub trait Metric: Send + Sync + Clone + 'static {
    /// Distance between two equal-length vectors.
    fn dist(&self, a: &[f32], b: &[f32]) -> f32;

    /// Upper bound on the distance between two L2-unit vectors of the given
    /// dimensionality. Used to resolve ratio-form thresholds (Section V of
    /// the paper) and to bound pivot-space coordinates.
    fn max_dist_unit(&self, dim: usize) -> f32;

    /// Short stable name for diagnostics and persistence validation.
    fn name(&self) -> &'static str;
}

/// Euclidean (L2) distance. `max_dist_unit` = 2 for unit vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b.iter()) {
            let d = x - y;
            acc += d * d;
        }
        acc.sqrt()
    }

    fn max_dist_unit(&self, _dim: usize) -> f32 {
        2.0
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Manhattan (L1) distance. For unit L2 vectors, ‖a−b‖₁ ≤ √dim·‖a−b‖₂ ≤ 2√dim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }

    fn max_dist_unit(&self, dim: usize) -> f32 {
        2.0 * (dim as f32).sqrt()
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }
}

/// Angular distance: `arccos(a·b / (‖a‖‖b‖))`, a true metric on the unit
/// sphere (unlike raw cosine similarity, which violates the triangle
/// inequality). Maximum distance π for antipodal unit vectors. Zero-norm
/// inputs are treated as orthogonal (distance π/2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Angular;

impl Metric for Angular {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (x, y) in a.iter().zip(b.iter()) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            return std::f32::consts::FRAC_PI_2;
        }
        let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
        cos.acos()
    }

    fn max_dist_unit(&self, _dim: usize) -> f32 {
        std::f32::consts::PI
    }

    fn name(&self) -> &'static str {
        "angular"
    }
}

/// Chebyshev (L∞) distance. For unit L2 vectors, ‖a−b‖∞ ≤ ‖a−b‖₂ ≤ 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
    }

    fn max_dist_unit(&self, _dim: usize) -> f32 {
        2.0
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_values() {
        assert!((Euclidean.dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(Euclidean.dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_values() {
        assert_eq!(Manhattan.dist(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
    }

    #[test]
    fn chebyshev_values() {
        assert_eq!(Chebyshev.dist(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
    }

    fn triangle_holds<M: Metric>(m: M) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let a: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let c: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let ab = m.dist(&a, &b);
            let bc = m.dist(&b, &c);
            let ac = m.dist(&a, &c);
            assert!(ac <= ab + bc + 1e-4, "triangle violated: {ac} > {ab} + {bc}");
            assert!((m.dist(&a, &b) - m.dist(&b, &a)).abs() < 1e-6, "symmetry");
        }
    }

    #[test]
    fn metric_axioms() {
        triangle_holds(Euclidean);
        triangle_holds(Manhattan);
        triangle_holds(Chebyshev);
        triangle_holds(Angular);
    }

    #[test]
    fn angular_values() {
        use std::f32::consts::{FRAC_PI_2, PI};
        assert!(Angular.dist(&[1.0, 0.0], &[2.0, 0.0]).abs() < 1e-6, "parallel = 0");
        assert!((Angular.dist(&[1.0, 0.0], &[0.0, 1.0]) - FRAC_PI_2).abs() < 1e-6);
        assert!((Angular.dist(&[1.0, 0.0], &[-1.0, 0.0]) - PI).abs() < 1e-5);
        // Zero vectors behave as orthogonal, never NaN.
        assert!((Angular.dist(&[0.0, 0.0], &[1.0, 0.0]) - FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn unit_vector_max_distances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let dim = 16;
        for _ in 0..100 {
            let mut a: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut b: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            a.iter_mut().for_each(|x| *x /= na);
            b.iter_mut().for_each(|x| *x /= nb);
            assert!(Euclidean.dist(&a, &b) <= Euclidean.max_dist_unit(dim) + 1e-5);
            assert!(Manhattan.dist(&a, &b) <= Manhattan.max_dist_unit(dim) + 1e-5);
            assert!(Chebyshev.dist(&a, &b) <= Chebyshev.max_dist_unit(dim) + 1e-5);
        }
    }
}
