//! Pivot mapping: original metric space → pivot space.
//!
//! A vector `x` maps to `x' = [d(x, p₁), …, d(x, p_|P|)]`. Mapped vectors of
//! the whole repository are kept resident (flat arena) because verification
//! uses them for the O(|P|) Lemma 1/2 checks before paying an O(dim)
//! distance computation.
//!
//! Mapping is embarrassingly parallel (each vector's row is independent),
//! so [`MappedVectors::build_with`] shards the vectors across an
//! [`ExecPolicy`] and fills each shard's disjoint window of the arena with
//! the batched [`Metric::dist_batch`] kernel against a flattened pivot
//! arena. The result is byte-identical for every policy.

use crate::config::ExecPolicy;
use crate::error::{PexesoError, Result};
use crate::exec;
use crate::metric::Metric;
use crate::vector::VectorStore;

/// Flat arena of pivot-space vectors, |P| coordinates each.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedVectors {
    num_pivots: usize,
    data: Vec<f32>,
}

impl MappedVectors {
    /// Map every vector of `store` against `pivots`. Returns the arena and
    /// counts `pivots.len() * store.len()` distance computations into
    /// `dist_counter` if provided.
    pub fn build<M: Metric>(
        store: &VectorStore,
        pivots: &[Vec<f32>],
        metric: &M,
        dist_counter: Option<&mut u64>,
    ) -> Result<Self> {
        Self::build_with(store, pivots, metric, dist_counter, ExecPolicy::Sequential)
    }

    /// [`MappedVectors::build`] with explicit parallelism. The arena is
    /// identical for every policy.
    pub fn build_with<M: Metric>(
        store: &VectorStore,
        pivots: &[Vec<f32>],
        metric: &M,
        dist_counter: Option<&mut u64>,
        policy: ExecPolicy,
    ) -> Result<Self> {
        if pivots.is_empty() {
            return Err(PexesoError::EmptyInput("pivot mapping with no pivots"));
        }
        for p in pivots {
            if p.len() != store.dim() {
                return Err(PexesoError::DimensionMismatch {
                    expected: store.dim(),
                    got: p.len(),
                });
            }
        }
        let k = pivots.len();
        // Flatten the pivots once so each vector runs one batched kernel
        // call over a contiguous arena instead of |P| pointer-chased rows.
        let pivot_arena: Vec<f32> = pivots.iter().flat_map(|p| p.iter().copied()).collect();
        let mut data = vec![0.0f32; k * store.len()];
        // One slot costs |P|·dim flops (~1 µs at |P|=5, dim=64); scale the
        // parallelism cut-off so each shard carries well over a spawn's
        // worth of work.
        let min_items = (1 << 21) / (k * store.dim()).max(1);
        exec::fill_slots_min(policy, &mut data, k, min_items, |vec_range, window| {
            for (slot, v) in vec_range.enumerate() {
                let out = &mut window[slot * k..(slot + 1) * k];
                metric.dist_batch(store.get_raw(v), &pivot_arena, out);
            }
        });
        if let Some(c) = dist_counter {
            *c += (k * store.len()) as u64;
        }
        Ok(Self {
            num_pivots: k,
            data,
        })
    }

    pub fn num_pivots(&self) -> usize {
        self.num_pivots
    }

    /// Number of mapped vectors.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.num_pivots).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The mapped coordinates of vector `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> &[f32] {
        let start = idx * self.num_pivots;
        &self.data[start..start + self.num_pivots]
    }

    /// Iterate over mapped vectors in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.num_pivots)
    }

    /// Append one mapped vector (index maintenance).
    pub fn push(&mut self, coords: &[f32]) -> Result<()> {
        if coords.len() != self.num_pivots {
            return Err(PexesoError::DimensionMismatch {
                expected: self.num_pivots,
                got: coords.len(),
            });
        }
        self.data.extend_from_slice(coords);
        Ok(())
    }

    /// Raw flat data (persistence).
    pub fn raw_data(&self) -> &[f32] {
        &self.data
    }

    /// Rebuild from flat data (persistence).
    pub fn from_raw(num_pivots: usize, data: Vec<f32>) -> Result<Self> {
        if num_pivots == 0 || !data.len().is_multiple_of(num_pivots) {
            return Err(PexesoError::Corrupt(format!(
                "mapped data length {} not a multiple of |P| {num_pivots}",
                data.len()
            )));
        }
        Ok(Self { num_pivots, data })
    }

    /// Maximum coordinate value (used to validate grid span assumptions).
    pub fn max_coord(&self) -> f32 {
        self.data.iter().fold(0.0f32, |a, &b| a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    fn store_2d(points: &[[f32; 2]]) -> VectorStore {
        let mut s = VectorStore::new(2);
        for p in points {
            s.push(p).unwrap();
        }
        s
    }

    #[test]
    fn mapping_matches_hand_computation() {
        // The paper's Fig. 2 example layout: pivots x1 and x8.
        let s = store_2d(&[[0.0, 0.0], [3.0, 4.0], [1.0, 0.0]]);
        let pivots = vec![vec![0.0f32, 0.0], vec![3.0f32, 4.0]];
        let m = MappedVectors::build(&s, &pivots, &Euclidean, None).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0), &[0.0, 5.0]);
        assert_eq!(m.get(1), &[5.0, 0.0]);
        let g2 = m.get(2);
        assert!((g2[0] - 1.0).abs() < 1e-6);
        assert!((g2[1] - (4.0f32 + 16.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn distance_counter_counts_all_pairs() {
        let s = store_2d(&[[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]);
        let pivots = vec![vec![0.0f32, 0.0], vec![1.0f32, 0.0]];
        let mut count = 0u64;
        MappedVectors::build(&s, &pivots, &Euclidean, Some(&mut count)).unwrap();
        assert_eq!(count, 6);
    }

    #[test]
    fn no_pivots_is_error() {
        let s = store_2d(&[[0.0, 0.0]]);
        assert!(MappedVectors::build(&s, &[], &Euclidean, None).is_err());
    }

    #[test]
    fn pivot_dim_mismatch_is_error() {
        let s = store_2d(&[[0.0, 0.0]]);
        let pivots = vec![vec![0.0f32; 3]];
        assert!(matches!(
            MappedVectors::build(&s, &pivots, &Euclidean, None),
            Err(PexesoError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_raw_validates() {
        assert!(MappedVectors::from_raw(3, vec![0.0; 7]).is_err());
        assert!(MappedVectors::from_raw(0, vec![]).is_err());
        let m = MappedVectors::from_raw(2, vec![0.0; 6]).unwrap();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        // Sized above the work-scaled parallelism cut-off so the sharded
        // fill path genuinely runs (8 pivots × 64 dims → min_items 4096).
        let dim = 64;
        let mut s = VectorStore::new(dim);
        for _ in 0..6000 {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            s.push(&v).unwrap();
        }
        let pivots: Vec<Vec<f32>> = (0..8).map(|i| s.get_raw(i * 11).to_vec()).collect();
        let seq = MappedVectors::build_with(&s, &pivots, &Euclidean, None, ExecPolicy::Sequential)
            .unwrap();
        // `Fixed` forces real fan-out even where the adaptive planner
        // would clamp `Parallel` to the inline path (single-core hosts).
        for policy in [
            ExecPolicy::Parallel { threads: 8 },
            ExecPolicy::Fixed { threads: 8 },
        ] {
            let par = MappedVectors::build_with(&s, &pivots, &Euclidean, None, policy).unwrap();
            assert_eq!(seq.raw_data(), par.raw_data(), "{policy:?}");
        }
    }

    #[test]
    fn max_coord() {
        let m = MappedVectors::from_raw(2, vec![0.5, 1.25, 0.0, 0.75]).unwrap();
        assert_eq!(m.max_coord(), 1.25);
    }
}
