//! SIMD distance kernels with runtime dispatch and a scalar ground truth.
//!
//! Every distance in the system — verification, pivot mapping, the
//! oracle in tests — funnels through the handful of inner loops in this
//! module. Three tiers implement each loop:
//!
//! * **scalar** — always compiled, the portable ground truth. The
//!   accumulation is eight independent f32 lanes (elements `i`,
//!   `i+8`, `i+16`, … share a lane) combined as
//!   `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, plus a sequential tail for
//!   `len % 8` trailing dimensions.
//! * **AVX2** (`x86_64`) — one 256-bit vector register holds exactly those
//!   eight lanes; `_mm256_sub_ps`/`_mm256_mul_ps`/`_mm256_add_ps` perform
//!   the same IEEE-754 operation per lane as the scalar code, and the
//!   epilogue stores the register into `[f32; 8]` and reduces with the
//!   scalar combiner. No FMA is used — fusing would change rounding and
//!   break the tier-agreement contract below.
//! * **NEON** (`aarch64`) — two 128-bit registers model the same eight
//!   lanes with the same epilogue.
//!
//! ## Exact agreement
//!
//! For finite, non-NaN inputs every tier returns **bit-identical** results:
//! same lanes, same operations, same combination order. The differential
//! suite (`tests/simd_differential.rs`) pins each SIMD tier against the
//! scalar one across all metrics, unaligned lengths, and edge values
//! (zeros, subnormals, `±f32::MAX`). This is what lets the exactness
//! contract of [`crate::metric::Metric::dist_le`] survive the dispatch:
//! `Parallel ≡ Sequential ≡ scalar` stays byte-identical whichever tier
//! answered.
//!
//! The early-exit (`*_le`) kernels may check their threshold bound on any
//! schedule *and with any reduction order* — an early `false` only fires
//! when a partial sum already exceeds the inflated bound (whose margin
//! absorbs reassociation error), which implies the full distance does too
//! — so the SIMD tiers use a cheap shuffle reduction for the checks and
//! keep the canonical reduction for the fall-through result, without
//! affecting the boolean answer.
//!
//! ## Dispatch
//!
//! The tier is detected once per process ([`tier`]) with
//! `is_x86_feature_detected!` and cached. Setting the environment variable
//! `PEXESO_FORCE_SCALAR` (to anything but `0`) before first use forces the
//! scalar tier — CI runs the whole workspace both ways.

use std::sync::OnceLock;

/// Canonical accumulator width: eight independent f32 lanes.
pub const LANES: usize = 8;

/// Dimensions per early-exit bound check in the scalar tier: enough work
/// between checks to amortise the branch, small enough to exit within a
/// few cache lines.
const EXIT_BLOCK: usize = 16;

/// Dimensions per bound check in the SIMD tiers. Verification workloads
/// reject most candidates within the first vector block — the partial sum
/// is typically orders of magnitude above the bound — so checking every
/// block (with the cheap shuffle reduction) wins over longer strides even
/// though each check pays a horizontal reduction.
const SIMD_EXIT_BLOCK: usize = 8;

/// How many rows ahead the gather loops ([`l2_le_first`]) prefetch: far
/// enough to cover an L3 round-trip behind one early-exiting distance
/// test, near enough that the lines survive in L1.
const PF_AHEAD: usize = 2;

/// The instruction tier answering kernel calls in this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Portable eight-lane scalar loops (the ground truth).
    Scalar,
    /// 256-bit AVX2 loops (x86-64, runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// 128-bit NEON loop pairs (aarch64).
    #[cfg(target_arch = "aarch64")]
    Neon,
}

impl Tier {
    /// Stable lowercase name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Tier::Avx2 => "avx2",
            #[cfg(target_arch = "aarch64")]
            Tier::Neon => "neon",
        }
    }
}

/// The tier every kernel entry point dispatches to, detected once and
/// cached. `PEXESO_FORCE_SCALAR` (any value but `0`) pins it to
/// [`Tier::Scalar`] for differential testing and triage.
pub fn tier() -> Tier {
    static TIER: OnceLock<Tier> = OnceLock::new();
    *TIER.get_or_init(detect_tier)
}

fn detect_tier() -> Tier {
    if std::env::var_os("PEXESO_FORCE_SCALAR").is_some_and(|v| v != *"0") {
        return Tier::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Tier::Avx2;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        return Tier::Neon;
    }
    Tier::Scalar
}

/// Combine the eight lanes exactly as every tier's epilogue must.
#[inline(always)]
fn sum8(l: &[f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Combine the eight max-lanes. Order is value-irrelevant for the
/// non-negative, non-NaN magnitudes these kernels produce, but one
/// canonical order keeps the tiers trivially comparable.
#[inline(always)]
fn max8(l: &[f32; LANES]) -> f32 {
    (l[0].max(l[1]).max(l[2].max(l[3]))).max(l[4].max(l[5]).max(l[6].max(l[7])))
}

/// Conservative squared bound for the Euclidean early exit, evaluated in
/// f64 so its own rounding can never mask a borderline match: partial
/// sums of squares are monotone non-decreasing, so once a partial exceeds
/// this inflated bound the true distance is strictly beyond `tau`.
#[inline(always)]
fn inflated_sq_bound(tau: f32) -> f64 {
    (tau as f64) * (tau as f64) * 1.000_001 + f64::MIN_POSITIVE
}

/// The L1 analogue of [`inflated_sq_bound`].
#[inline(always)]
fn inflated_bound(tau: f32) -> f64 {
    (tau as f64) * 1.000_001 + f64::MIN_POSITIVE
}

// ---------------------------------------------------------------------------
// Scalar tier (ground truth, always compiled)
// ---------------------------------------------------------------------------

/// Sequential tail shared by every tier: squared-difference sum of the
/// dimensions from `from` onward.
#[inline(always)]
fn l2_tail(a: &[f32], b: &[f32], from: usize) -> f32 {
    let mut tail = 0.0f32;
    for i in from..a.len() {
        let d = a[i] - b[i];
        tail += d * d;
    }
    tail
}

#[inline(always)]
fn l1_tail(a: &[f32], b: &[f32], from: usize) -> f32 {
    let mut tail = 0.0f32;
    for i in from..a.len() {
        tail += (a[i] - b[i]).abs();
    }
    tail
}

#[inline(always)]
fn linf_tail(a: &[f32], b: &[f32], from: usize) -> f32 {
    let mut tail = 0.0f32;
    for i in from..a.len() {
        tail = tail.max((a[i] - b[i]).abs());
    }
    tail
}

/// Squared Euclidean distance, scalar tier.
pub fn l2_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let blocks = a.len() / LANES;
    for i in 0..blocks {
        let o = i * LANES;
        for l in 0..LANES {
            let d = a[o + l] - b[o + l];
            lanes[l] += d * d;
        }
    }
    sum8(&lanes) + l2_tail(a, b, blocks * LANES)
}

/// Early-exit `‖a−b‖₂ ≤ tau`, scalar tier. Exactly equals
/// `l2_sq_scalar(a, b).sqrt() <= tau`.
pub fn l2_le_scalar(a: &[f32], b: &[f32], tau: f32) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let bound = inflated_sq_bound(tau);
    let mut lanes = [0.0f32; LANES];
    let blocks = a.len() / LANES;
    let mut i = 0;
    while i < blocks {
        let check_at = (i + EXIT_BLOCK / LANES).min(blocks);
        while i < check_at {
            let o = i * LANES;
            for l in 0..LANES {
                let d = a[o + l] - b[o + l];
                lanes[l] += d * d;
            }
            i += 1;
        }
        if i < blocks && (sum8(&lanes) as f64) > bound {
            return false;
        }
    }
    // Identical accumulation to `l2_sq_scalar` from here: exact agreement.
    (sum8(&lanes) + l2_tail(a, b, blocks * LANES)).sqrt() <= tau
}

/// Scalar tier of [`l2_le_first`]: the same per-row test as
/// [`l2_le_scalar`], in row order, stopping at the first match.
pub fn l2_le_first_scalar(
    q: &[f32],
    arena: &[f32],
    dim: usize,
    vids: &[u32],
    tau: f32,
) -> (usize, Option<usize>) {
    for (i, &vid) in vids.iter().enumerate() {
        if let Some(&next) = vids.get(i + PF_AHEAD) {
            prefetch(&arena[next as usize * dim..]);
        }
        let start = vid as usize * dim;
        if l2_le_scalar(q, &arena[start..start + dim], tau) {
            return (i + 1, Some(i));
        }
    }
    (vids.len(), None)
}

/// Manhattan distance, scalar tier.
pub fn l1_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let blocks = a.len() / LANES;
    for i in 0..blocks {
        let o = i * LANES;
        for l in 0..LANES {
            lanes[l] += (a[o + l] - b[o + l]).abs();
        }
    }
    sum8(&lanes) + l1_tail(a, b, blocks * LANES)
}

/// Early-exit `‖a−b‖₁ ≤ tau`, scalar tier.
pub fn l1_le_scalar(a: &[f32], b: &[f32], tau: f32) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let bound = inflated_bound(tau);
    let mut lanes = [0.0f32; LANES];
    let blocks = a.len() / LANES;
    let mut i = 0;
    while i < blocks {
        let check_at = (i + EXIT_BLOCK / LANES).min(blocks);
        while i < check_at {
            let o = i * LANES;
            for l in 0..LANES {
                lanes[l] += (a[o + l] - b[o + l]).abs();
            }
            i += 1;
        }
        if i < blocks && (sum8(&lanes) as f64) > bound {
            return false;
        }
    }
    sum8(&lanes) + l1_tail(a, b, blocks * LANES) <= tau
}

/// Chebyshev (L∞) distance, scalar tier.
pub fn linf_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let blocks = a.len() / LANES;
    for i in 0..blocks {
        let o = i * LANES;
        for l in 0..LANES {
            lanes[l] = lanes[l].max((a[o + l] - b[o + l]).abs());
        }
    }
    max8(&lanes).max(linf_tail(a, b, blocks * LANES))
}

/// Early-exit `‖a−b‖∞ ≤ tau`, scalar tier. `max` is exact under any
/// evaluation order, so bailing at the first coordinate beyond `tau` is
/// trivially equivalent.
pub fn linf_le_scalar(a: &[f32], b: &[f32], tau: f32) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() <= tau)
}

/// The three angular accumulators `(a·b, ‖a‖², ‖b‖²)`, scalar tier.
pub fn angular_parts_scalar(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = [0.0f32; LANES];
    let mut na = [0.0f32; LANES];
    let mut nb = [0.0f32; LANES];
    let blocks = a.len() / LANES;
    for i in 0..blocks {
        let o = i * LANES;
        for l in 0..LANES {
            let (x, y) = (a[o + l], b[o + l]);
            dot[l] += x * y;
            na[l] += x * x;
            nb[l] += y * y;
        }
    }
    let (mut dot_t, mut na_t, mut nb_t) = (0.0f32, 0.0f32, 0.0f32);
    for i in blocks * LANES..a.len() {
        let (x, y) = (a[i], b[i]);
        dot_t += x * y;
        na_t += x * x;
        nb_t += y * y;
    }
    (sum8(&dot) + dot_t, sum8(&na) + na_t, sum8(&nb) + nb_t)
}

// ---------------------------------------------------------------------------
// AVX2 tier
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    /// Store the 256-bit accumulator and combine with the canonical
    /// scalar epilogue, so the reduction order matches the scalar tier
    /// bit-for-bit.
    #[inline(always)]
    unsafe fn reduce_sum(acc: __m256) -> f32 {
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        sum8(&lanes)
    }

    #[inline(always)]
    unsafe fn reduce_max(acc: __m256) -> f32 {
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        max8(&lanes)
    }

    /// `|x|` by clearing the sign bit — bitwise identical to `f32::abs`.
    #[inline(always)]
    unsafe fn abs(x: __m256) -> __m256 {
        _mm256_andnot_ps(_mm256_set1_ps(-0.0), x)
    }

    /// Fast shuffle-tree reduction for early-exit *bound checks only*: its
    /// reassociated order differs from [`sum8`] by a few ulps, which the
    /// inflated f64 bound's `1e-6` margin absorbs, so a `> bound` verdict
    /// from this sum still proves the true distance exceeds `tau`. The
    /// fall-through result path must keep [`reduce_sum`].
    #[inline(always)]
    unsafe fn check_sum(acc: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps::<1>(acc);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_movehdup_ps(s));
        _mm_cvtss_f32(s)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES;
        let mut acc = _mm256_setzero_ps();
        for i in 0..blocks {
            let o = i * LANES;
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(o)),
                _mm256_loadu_ps(b.as_ptr().add(o)),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        }
        reduce_sum(acc) + l2_tail(a, b, blocks * LANES)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn l2_le(a: &[f32], b: &[f32], tau: f32) -> bool {
        l2_le_bounded(a, b, inflated_sq_bound(tau), tau)
    }

    /// [`l2_le`] with the threshold bound precomputed, so gather loops
    /// ([`l2_le_first`]) hoist it out of their row loop. `#[inline(always)]`
    /// into AVX2-enabled callers only.
    #[inline(always)]
    unsafe fn l2_le_bounded(a: &[f32], b: &[f32], bound: f64, tau: f32) -> bool {
        let blocks = a.len() / LANES;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < blocks {
            let check_at = (i + SIMD_EXIT_BLOCK / LANES).min(blocks);
            while i < check_at {
                let o = i * LANES;
                let d = _mm256_sub_ps(
                    _mm256_loadu_ps(a.as_ptr().add(o)),
                    _mm256_loadu_ps(b.as_ptr().add(o)),
                );
                acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
                i += 1;
            }
            if i < blocks && (check_sum(acc) as f64) > bound {
                return false;
            }
        }
        (reduce_sum(acc) + l2_tail(a, b, blocks * LANES)).sqrt() <= tau
    }

    /// AVX2 gather form of [`l2_le`] (see [`super::l2_le_first`]): one
    /// bound computation and one dispatched call for the whole row list,
    /// with the distance body inlined into the loop and rows prefetched
    /// [`PF_AHEAD`] iterations early.
    #[target_feature(enable = "avx2")]
    pub unsafe fn l2_le_first(
        q: &[f32],
        arena: &[f32],
        dim: usize,
        vids: &[u32],
        tau: f32,
    ) -> (usize, Option<usize>) {
        let bound = inflated_sq_bound(tau);
        for (i, &vid) in vids.iter().enumerate() {
            if let Some(&next) = vids.get(i + PF_AHEAD) {
                prefetch(&arena[next as usize * dim..]);
            }
            let start = vid as usize * dim;
            if l2_le_bounded(q, &arena[start..start + dim], bound, tau) {
                return (i + 1, Some(i));
            }
        }
        (vids.len(), None)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn l1(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES;
        let mut acc = _mm256_setzero_ps();
        for i in 0..blocks {
            let o = i * LANES;
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(o)),
                _mm256_loadu_ps(b.as_ptr().add(o)),
            );
            acc = _mm256_add_ps(acc, abs(d));
        }
        reduce_sum(acc) + l1_tail(a, b, blocks * LANES)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn l1_le(a: &[f32], b: &[f32], tau: f32) -> bool {
        let bound = inflated_bound(tau);
        let blocks = a.len() / LANES;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < blocks {
            let check_at = (i + SIMD_EXIT_BLOCK / LANES).min(blocks);
            while i < check_at {
                let o = i * LANES;
                let d = _mm256_sub_ps(
                    _mm256_loadu_ps(a.as_ptr().add(o)),
                    _mm256_loadu_ps(b.as_ptr().add(o)),
                );
                acc = _mm256_add_ps(acc, abs(d));
                i += 1;
            }
            if i < blocks && (check_sum(acc) as f64) > bound {
                return false;
            }
        }
        reduce_sum(acc) + l1_tail(a, b, blocks * LANES) <= tau
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn linf(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES;
        let mut acc = _mm256_setzero_ps();
        for i in 0..blocks {
            let o = i * LANES;
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(o)),
                _mm256_loadu_ps(b.as_ptr().add(o)),
            );
            acc = _mm256_max_ps(acc, abs(d));
        }
        reduce_max(acc).max(linf_tail(a, b, blocks * LANES))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn linf_le(a: &[f32], b: &[f32], tau: f32) -> bool {
        let blocks = a.len() / LANES;
        let tau8 = _mm256_set1_ps(tau);
        for i in 0..blocks {
            let o = i * LANES;
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(o)),
                _mm256_loadu_ps(b.as_ptr().add(o)),
            );
            // Any |d| > tau (or NaN, matching `!(|d| <= tau)`) fails.
            let beyond = _mm256_cmp_ps::<_CMP_NLE_UQ>(abs(d), tau8);
            if _mm256_movemask_ps(beyond) != 0 {
                return false;
            }
        }
        a[blocks * LANES..]
            .iter()
            .zip(b[blocks * LANES..].iter())
            .all(|(x, y)| (x - y).abs() <= tau)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn angular_parts(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let blocks = a.len() / LANES;
        let mut dot = _mm256_setzero_ps();
        let mut na = _mm256_setzero_ps();
        let mut nb = _mm256_setzero_ps();
        for i in 0..blocks {
            let o = i * LANES;
            let x = _mm256_loadu_ps(a.as_ptr().add(o));
            let y = _mm256_loadu_ps(b.as_ptr().add(o));
            dot = _mm256_add_ps(dot, _mm256_mul_ps(x, y));
            na = _mm256_add_ps(na, _mm256_mul_ps(x, x));
            nb = _mm256_add_ps(nb, _mm256_mul_ps(y, y));
        }
        let (mut dot_t, mut na_t, mut nb_t) = (0.0f32, 0.0f32, 0.0f32);
        for i in blocks * LANES..a.len() {
            let (x, y) = (a[i], b[i]);
            dot_t += x * y;
            na_t += x * x;
            nb_t += y * y;
        }
        (
            reduce_sum(dot) + dot_t,
            reduce_sum(na) + na_t,
            reduce_sum(nb) + nb_t,
        )
    }
}

// ---------------------------------------------------------------------------
// NEON tier
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::*;
    use std::arch::aarch64::*;

    /// Store both 128-bit accumulators as the canonical eight lanes and
    /// combine with the scalar epilogue.
    #[inline(always)]
    unsafe fn reduce_sum(acc0: float32x4_t, acc1: float32x4_t) -> f32 {
        let mut lanes = [0.0f32; LANES];
        vst1q_f32(lanes.as_mut_ptr(), acc0);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc1);
        sum8(&lanes)
    }

    #[inline(always)]
    unsafe fn reduce_max(acc0: float32x4_t, acc1: float32x4_t) -> f32 {
        let mut lanes = [0.0f32; LANES];
        vst1q_f32(lanes.as_mut_ptr(), acc0);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc1);
        max8(&lanes)
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES;
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        for i in 0..blocks {
            let o = i * LANES;
            let d0 = vsubq_f32(vld1q_f32(a.as_ptr().add(o)), vld1q_f32(b.as_ptr().add(o)));
            let d1 = vsubq_f32(
                vld1q_f32(a.as_ptr().add(o + 4)),
                vld1q_f32(b.as_ptr().add(o + 4)),
            );
            acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
            acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
        }
        reduce_sum(acc0, acc1) + l2_tail(a, b, blocks * LANES)
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn l2_le(a: &[f32], b: &[f32], tau: f32) -> bool {
        let bound = inflated_sq_bound(tau);
        let blocks = a.len() / LANES;
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < blocks {
            let check_at = (i + SIMD_EXIT_BLOCK / LANES).min(blocks);
            while i < check_at {
                let o = i * LANES;
                let d0 = vsubq_f32(vld1q_f32(a.as_ptr().add(o)), vld1q_f32(b.as_ptr().add(o)));
                let d1 = vsubq_f32(
                    vld1q_f32(a.as_ptr().add(o + 4)),
                    vld1q_f32(b.as_ptr().add(o + 4)),
                );
                acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
                acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
                i += 1;
            }
            if i < blocks && (reduce_sum(acc0, acc1) as f64) > bound {
                return false;
            }
        }
        (reduce_sum(acc0, acc1) + l2_tail(a, b, blocks * LANES)).sqrt() <= tau
    }

    /// NEON tier of [`super::l2_le_first`]: row-order gather over `vids`
    /// with the same per-row test as [`l2_le`], stopping at the first
    /// match. Dispatch is hoisted out of the row loop.
    #[target_feature(enable = "neon")]
    pub unsafe fn l2_le_first(
        q: &[f32],
        arena: &[f32],
        dim: usize,
        vids: &[u32],
        tau: f32,
    ) -> (usize, Option<usize>) {
        for (i, &vid) in vids.iter().enumerate() {
            if let Some(&next) = vids.get(i + PF_AHEAD) {
                prefetch(&arena[next as usize * dim..]);
            }
            let start = vid as usize * dim;
            if l2_le(q, &arena[start..start + dim], tau) {
                return (i + 1, Some(i));
            }
        }
        (vids.len(), None)
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn l1(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES;
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        for i in 0..blocks {
            let o = i * LANES;
            let d0 = vsubq_f32(vld1q_f32(a.as_ptr().add(o)), vld1q_f32(b.as_ptr().add(o)));
            let d1 = vsubq_f32(
                vld1q_f32(a.as_ptr().add(o + 4)),
                vld1q_f32(b.as_ptr().add(o + 4)),
            );
            acc0 = vaddq_f32(acc0, vabsq_f32(d0));
            acc1 = vaddq_f32(acc1, vabsq_f32(d1));
        }
        reduce_sum(acc0, acc1) + l1_tail(a, b, blocks * LANES)
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn l1_le(a: &[f32], b: &[f32], tau: f32) -> bool {
        let bound = inflated_bound(tau);
        let blocks = a.len() / LANES;
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < blocks {
            let check_at = (i + SIMD_EXIT_BLOCK / LANES).min(blocks);
            while i < check_at {
                let o = i * LANES;
                let d0 = vsubq_f32(vld1q_f32(a.as_ptr().add(o)), vld1q_f32(b.as_ptr().add(o)));
                let d1 = vsubq_f32(
                    vld1q_f32(a.as_ptr().add(o + 4)),
                    vld1q_f32(b.as_ptr().add(o + 4)),
                );
                acc0 = vaddq_f32(acc0, vabsq_f32(d0));
                acc1 = vaddq_f32(acc1, vabsq_f32(d1));
                i += 1;
            }
            if i < blocks && (reduce_sum(acc0, acc1) as f64) > bound {
                return false;
            }
        }
        reduce_sum(acc0, acc1) + l1_tail(a, b, blocks * LANES) <= tau
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn linf(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES;
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        for i in 0..blocks {
            let o = i * LANES;
            let d0 = vsubq_f32(vld1q_f32(a.as_ptr().add(o)), vld1q_f32(b.as_ptr().add(o)));
            let d1 = vsubq_f32(
                vld1q_f32(a.as_ptr().add(o + 4)),
                vld1q_f32(b.as_ptr().add(o + 4)),
            );
            acc0 = vmaxq_f32(acc0, vabsq_f32(d0));
            acc1 = vmaxq_f32(acc1, vabsq_f32(d1));
        }
        reduce_max(acc0, acc1).max(linf_tail(a, b, blocks * LANES))
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn linf_le(a: &[f32], b: &[f32], tau: f32) -> bool {
        let blocks = a.len() / LANES;
        let tau4 = vdupq_n_f32(tau);
        for i in 0..blocks {
            let o = i * LANES;
            let d0 = vabsq_f32(vsubq_f32(
                vld1q_f32(a.as_ptr().add(o)),
                vld1q_f32(b.as_ptr().add(o)),
            ));
            let d1 = vabsq_f32(vsubq_f32(
                vld1q_f32(a.as_ptr().add(o + 4)),
                vld1q_f32(b.as_ptr().add(o + 4)),
            ));
            // `|d| <= tau` per lane; any zero lane (including NaN) fails.
            let ok0 = vcleq_f32(d0, tau4);
            let ok1 = vcleq_f32(d1, tau4);
            if vminvq_u32(vandq_u32(ok0, ok1)) == 0 {
                return false;
            }
        }
        a[blocks * LANES..]
            .iter()
            .zip(b[blocks * LANES..].iter())
            .all(|(x, y)| (x - y).abs() <= tau)
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn angular_parts(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let blocks = a.len() / LANES;
        let mut dot0 = vdupq_n_f32(0.0);
        let mut dot1 = vdupq_n_f32(0.0);
        let mut na0 = vdupq_n_f32(0.0);
        let mut na1 = vdupq_n_f32(0.0);
        let mut nb0 = vdupq_n_f32(0.0);
        let mut nb1 = vdupq_n_f32(0.0);
        for i in 0..blocks {
            let o = i * LANES;
            let x0 = vld1q_f32(a.as_ptr().add(o));
            let x1 = vld1q_f32(a.as_ptr().add(o + 4));
            let y0 = vld1q_f32(b.as_ptr().add(o));
            let y1 = vld1q_f32(b.as_ptr().add(o + 4));
            dot0 = vaddq_f32(dot0, vmulq_f32(x0, y0));
            dot1 = vaddq_f32(dot1, vmulq_f32(x1, y1));
            na0 = vaddq_f32(na0, vmulq_f32(x0, x0));
            na1 = vaddq_f32(na1, vmulq_f32(x1, x1));
            nb0 = vaddq_f32(nb0, vmulq_f32(y0, y0));
            nb1 = vaddq_f32(nb1, vmulq_f32(y1, y1));
        }
        let (mut dot_t, mut na_t, mut nb_t) = (0.0f32, 0.0f32, 0.0f32);
        for i in blocks * LANES..a.len() {
            let (x, y) = (a[i], b[i]);
            dot_t += x * y;
            na_t += x * x;
            nb_t += y * y;
        }
        (
            reduce_sum(dot0, dot1) + dot_t,
            reduce_sum(na0, na1) + na_t,
            reduce_sum(nb0, nb1) + nb_t,
        )
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

macro_rules! dispatch {
    ($scalar:path, $simd:ident, ($($arg:expr),*)) => {
        match tier() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Tier::Avx2 is only ever detected when the CPU
            // reports AVX2 support at runtime.
            Tier::Avx2 => unsafe { avx2::$simd($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: Tier::Neon is only ever detected when the CPU
            // reports NEON support at runtime.
            Tier::Neon => unsafe { neon::$simd($($arg),*) },
            Tier::Scalar => $scalar($($arg),*),
        }
    };
}

/// Squared Euclidean distance `‖a−b‖₂²` on the active tier.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(l2_sq_scalar, l2_sq, (a, b))
}

/// Early-exit `‖a−b‖₂ ≤ tau` on the active tier; exactly equals
/// `l2_sq(a, b).sqrt() <= tau`.
#[inline]
pub fn l2_le(a: &[f32], b: &[f32], tau: f32) -> bool {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(l2_le_scalar, l2_le, (a, b, tau))
}

/// Gather form of [`l2_le`]: test the rows named by `vids` (each a row
/// index into `arena`, `dim` floats per row) against `q` in order,
/// stopping at the first match. Returns `(rows_tested, first_match)`
/// where `first_match` is the index *into `vids`* of the matching row.
///
/// Exactly equals calling `l2_le(q, row)` per row with an early break —
/// same tier, same per-row result, and `rows_tested` equals the number
/// of calls the plain loop would have made, so callers can keep
/// distance-computation counters bit-identical. The win is mechanical:
/// tier dispatch and the early-exit bound are hoisted out of the row
/// loop, the SIMD body inlines into one function, and upcoming rows are
/// prefetched while the current one is tested.
#[inline]
pub fn l2_le_first(
    q: &[f32],
    arena: &[f32],
    dim: usize,
    vids: &[u32],
    tau: f32,
) -> (usize, Option<usize>) {
    debug_assert_eq!(q.len(), dim);
    match tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Tier::Avx2 is only ever detected when the CPU
        // reports AVX2 support at runtime.
        Tier::Avx2 => unsafe { avx2::l2_le_first(q, arena, dim, vids, tau) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Tier::Neon is only ever detected when the CPU
        // reports NEON support at runtime.
        Tier::Neon => unsafe { neon::l2_le_first(q, arena, dim, vids, tau) },
        Tier::Scalar => l2_le_first_scalar(q, arena, dim, vids, tau),
    }
}

/// Manhattan distance `‖a−b‖₁` on the active tier.
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(l1_scalar, l1, (a, b))
}

/// Early-exit `‖a−b‖₁ ≤ tau` on the active tier; exactly equals
/// `l1(a, b) <= tau`.
#[inline]
pub fn l1_le(a: &[f32], b: &[f32], tau: f32) -> bool {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(l1_le_scalar, l1_le, (a, b, tau))
}

/// Chebyshev distance `‖a−b‖∞` on the active tier.
#[inline]
pub fn linf(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(linf_scalar, linf, (a, b))
}

/// Early-exit `‖a−b‖∞ ≤ tau` on the active tier; exactly equals
/// `linf(a, b) <= tau`.
#[inline]
pub fn linf_le(a: &[f32], b: &[f32], tau: f32) -> bool {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(linf_le_scalar, linf_le, (a, b, tau))
}

/// The angular accumulators `(a·b, ‖a‖², ‖b‖²)` on the active tier.
#[inline]
pub fn angular_parts(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(angular_parts_scalar, angular_parts, (a, b))
}

/// Best-effort hint to pull the first cache lines of `row` towards L1
/// before a kernel reads it. Verification gathers candidate rows in
/// postings order (random access), so hinting the *next* row while the
/// current one is verified hides much of the miss latency. Purely a
/// scheduling hint — no architectural effect — and a no-op off x86-64.
#[inline(always)]
pub fn prefetch(row: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory semantics; any address is allowed.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let p = row.as_ptr().cast::<i8>();
        _mm_prefetch::<_MM_HINT_T0>(p);
        // The early-exit kernels usually decide within the first
        // SIMD_EXIT_BLOCK dimensions — two cache lines.
        if row.len() > 16 {
            _mm_prefetch::<_MM_HINT_T0>(p.add(64));
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = row;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pair(rng: &mut StdRng, dim: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        (a, b)
    }

    /// Whatever tier is active must agree with the scalar ground truth
    /// bit-for-bit on every kernel (vacuously green when dispatch picks
    /// scalar; the CI matrix runs both ways and
    /// `tests/simd_differential.rs` calls the SIMD tier directly).
    #[test]
    fn dispatched_kernels_match_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(41);
        for dim in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64, 129] {
            for _ in 0..50 {
                let (a, b) = random_pair(&mut rng, dim);
                assert_eq!(l2_sq(&a, &b).to_bits(), l2_sq_scalar(&a, &b).to_bits());
                assert_eq!(l1(&a, &b).to_bits(), l1_scalar(&a, &b).to_bits());
                assert_eq!(linf(&a, &b).to_bits(), linf_scalar(&a, &b).to_bits());
                let (d, na, nb) = angular_parts(&a, &b);
                let (ds, nas, nbs) = angular_parts_scalar(&a, &b);
                assert_eq!(d.to_bits(), ds.to_bits());
                assert_eq!(na.to_bits(), nas.to_bits());
                assert_eq!(nb.to_bits(), nbs.to_bits());
                for tau in [0.0f32, 0.5, 1.0, rng.gen_range(0.0f32..4.0)] {
                    assert_eq!(l2_le(&a, &b, tau), l2_le_scalar(&a, &b, tau));
                    assert_eq!(l1_le(&a, &b, tau), l1_le_scalar(&a, &b, tau));
                    assert_eq!(linf_le(&a, &b, tau), linf_le_scalar(&a, &b, tau));
                }
            }
        }
    }

    /// The `_le` kernels agree with the full kernels at the boundary.
    #[test]
    fn le_kernels_are_exact_at_the_boundary() {
        let mut rng = StdRng::seed_from_u64(42);
        for dim in [1usize, 8, 17, 64] {
            for _ in 0..100 {
                let (a, b) = random_pair(&mut rng, dim);
                let d2 = l2_sq(&a, &b).sqrt();
                for tau in [d2, d2 * 0.999, d2 * 1.001] {
                    assert_eq!(l2_le(&a, &b, tau), d2 <= tau, "dim={dim} tau={tau}");
                }
                let d1 = l1(&a, &b);
                for tau in [d1, d1 * 0.999, d1 * 1.001] {
                    assert_eq!(l1_le(&a, &b, tau), d1 <= tau, "dim={dim} tau={tau}");
                }
                let di = linf(&a, &b);
                for tau in [di, di * 0.999, di * 1.001] {
                    assert_eq!(linf_le(&a, &b, tau), di <= tau, "dim={dim} tau={tau}");
                }
            }
        }
    }

    #[test]
    fn tier_is_cached_and_named() {
        let t = tier();
        assert_eq!(t, tier(), "tier must be stable within a process");
        assert!(!t.name().is_empty());
    }
}
