//! Deterministic parallel execution layer.
//!
//! Every hot stage of the PEXESO pipeline — pivot mapping, grid and
//! inverted-index construction, blocking, verification, multi-query and
//! out-of-core search — is expressed as *independent work over contiguous
//! index ranges* and funnelled through the helpers here. The helpers shard
//! the range across the threads of an [`ExecPolicy`] with
//! `std::thread::scope` and merge shard results in range order, so the
//! output is byte-identical to a sequential run (there are no
//! order-sensitive floating-point reductions across shards). That property
//! is what lets `ExecPolicy` be a pure throughput knob: the differential
//! tests in `tests/exactness.rs` pin `Sequential ≡ Parallel` exactly.
//!
//! No external runtime (rayon et al.) is used: the registry-less build
//! environment bakes in only the standard library, and scoped threads are
//! all these fork-join shapes need.
//!
//! ## Adaptive parallelism
//!
//! [`ExecPolicy::Parallel`]'s thread count is a *ceiling*, not a command:
//! every helper clamps it to the machine's available cores and to a
//! per-shard work break-even before spawning anything, so a parallel
//! policy degenerates to the sequential path whenever threads cannot pay
//! for themselves (an 8-thread request on a 1-core box, or a shard that
//! would carry less work than one spawn+join costs). The break-even floor
//! is calibrated once per process against the actual measured spawn cost.
//! [`ExecPolicy::Fixed`] bypasses the clamp and shards exactly as asked —
//! it keeps the sharded merge code exercised by differential tests on
//! machines where the adaptive policy would (correctly) never shard.

use std::ops::Range;
use std::sync::OnceLock;

use crate::config::ExecPolicy;

/// Below this many work items the thread-spawn overhead dominates and the
/// helpers fall back to the sequential path regardless of policy. Spawning
/// and joining a thread costs on the order of tens of microseconds, so a
/// shard needs roughly a millisecond of work to pay for itself; stages
/// with very cheap per-item cost pass a larger `min_items` of their own.
pub const MIN_PARALLEL_ITEMS: usize = 2048;

/// Spawn+join cost (ns) the `min_items` floors are written against. The
/// calibration below scales the floors up when the machine is slower.
const BASELINE_SPAWN_NS: u64 = 25_000;

/// The machine's available parallelism, resolved once.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// One-time spawn-cost calibration: how many times more expensive a
/// scoped spawn+join is on this machine than the [`BASELINE_SPAWN_NS`]
/// the `min_items` floors assume. The minimum of a few trials filters
/// scheduler noise; capped at 8× so one pathological measurement cannot
/// effectively disable parallelism.
fn spawn_cost_factor() -> usize {
    static FACTOR: OnceLock<usize> = OnceLock::new();
    *FACTOR.get_or_init(|| {
        let mut best = u64::MAX;
        for _ in 0..4 {
            let start = std::time::Instant::now();
            std::thread::scope(|scope| {
                scope.spawn(|| {});
            });
            best = best.min(start.elapsed().as_nanos() as u64);
        }
        (best / BASELINE_SPAWN_NS).clamp(1, 8) as usize
    })
}

/// Resolve how many shards a compute-bound stage may use for `n` items:
/// the policy's requested ceiling, clamped to the machine's cores and to
/// the number of shards that each still carry at least `min_items` items
/// (scaled by the calibrated spawn cost). [`ExecPolicy::Fixed`] is exempt
/// from the clamp. The result is a thread *count* only — sharding stays
/// deterministic, so the clamp can never change results.
fn plan_threads(policy: ExecPolicy, n: usize, min_items: usize) -> usize {
    match policy {
        ExecPolicy::Sequential => 1,
        ExecPolicy::Fixed { threads } => threads.max(1),
        ExecPolicy::Parallel { .. } => {
            let requested = policy.effective_threads();
            if requested <= 1 {
                return 1;
            }
            let floor = min_items.max(1).saturating_mul(spawn_cost_factor());
            requested.min(hardware_threads()).min((n / floor).max(1))
        }
    }
}

/// Thread count for *coarse, I/O-overlapping* units (one disk partition
/// per unit): clamped to twice the core count rather than the compute
/// break-even, because a waiting thread costs nothing while another
/// unit's disk read is in flight — overlap pays even on a single core.
fn plan_unit_threads(policy: ExecPolicy, n: usize) -> usize {
    match policy {
        ExecPolicy::Sequential => 1,
        ExecPolicy::Fixed { threads } => threads.max(1).min(n.max(1)),
        ExecPolicy::Parallel { .. } => policy
            .effective_threads()
            .min(hardware_threads() * 2)
            .min(n.max(1)),
    }
}

/// Split `0..n` into at most `threads` contiguous, non-empty ranges.
fn shards(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.clamp(1, n.max(1));
    let chunk = n.div_ceil(threads);
    (0..threads)
        .map(|t| (t * chunk).min(n)..((t + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Run `f` over contiguous shards of `0..n`, returning one result per shard
/// in range order. Sequential policies (or small `n`) run a single shard on
/// the calling thread.
pub fn map_ranges<T, F>(policy: ExecPolicy, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    map_ranges_min(policy, n, MIN_PARALLEL_ITEMS, f)
}

/// [`map_ranges`] with an explicit parallelism cut-off, for stages whose
/// per-item cost is large (e.g. one column or one whole query per item).
pub fn map_ranges_min<T, F>(policy: ExecPolicy, n: usize, min_items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let threads = plan_threads(policy, n, min_items);
    if threads <= 1 || n < 2 {
        return vec![f(0..n)];
    }
    let ranges = shards(n, threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                scope.spawn(move || f(r))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pexeso worker thread panicked"))
            .collect()
    })
}

/// Fill `out` (viewed as `n = out.len() / width` logical slots of `width`
/// elements) by handing each shard of slots its disjoint `&mut` window.
/// `f(slot_range, window)` writes `window[(i - slot_range.start) * width ..]`
/// for each slot `i`. Deterministic: slot values never depend on sharding.
pub fn fill_slots<T, F>(policy: ExecPolicy, out: &mut [T], width: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    fill_slots_min(policy, out, width, MIN_PARALLEL_ITEMS, f)
}

/// [`fill_slots`] with an explicit parallelism cut-off, for stages whose
/// per-slot cost is far from the default assumption (e.g. leaf-key packing
/// at a few ns per slot needs far more slots to amortise a spawn).
pub fn fill_slots_min<T, F>(policy: ExecPolicy, out: &mut [T], width: usize, min_items: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert!(width > 0, "slot width must be positive");
    debug_assert_eq!(out.len() % width, 0);
    let n = out.len() / width;
    let threads = plan_threads(policy, n, min_items);
    if threads <= 1 || n < 2 {
        f(0..n, out);
        return;
    }
    let ranges = shards(n, threads);
    std::thread::scope(|scope| {
        let mut rest = out;
        for r in ranges {
            let (window, tail) = rest.split_at_mut((r.end - r.start) * width);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(r, window));
        }
    });
}

/// Dynamic work-stealing loop for *coarse* units of uneven cost (e.g. one
/// disk partition per unit). `f(i)` runs once for every `i in 0..n`;
/// results are returned in unit order. Unlike [`map_ranges`] the
/// assignment of units to threads is dynamic, which is safe exactly
/// because each unit's result is independent of every other.
pub fn map_units<T, F>(policy: ExecPolicy, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = plan_unit_threads(policy, n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots = std::sync::Mutex::new(&mut out);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (next, slots, f) = (&next, &slots, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                slots.lock().expect("result lock poisoned")[i] = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("every unit produced a result"))
        .collect()
}

/// Fallible [`map_units`]: stops handing out new units after the first
/// `Err` (or worker panic, converted to the supplied error) and returns
/// the lowest-indexed failure, like a sequential `?` loop would. Units
/// already in flight on other threads still run to completion; their
/// results are discarded when an earlier unit failed.
pub fn try_map_units<T, E, F>(
    policy: ExecPolicy,
    n: usize,
    on_panic: impl Fn() -> E + Sync,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let threads = plan_unit_threads(policy, n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let abort = std::sync::atomic::AtomicBool::new(false);
    let mut out: Vec<Option<Result<T, E>>> = (0..n).map(|_| None).collect();
    let slots = std::sync::Mutex::new(&mut out);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (next, abort, slots, f, on_panic) = (&next, &abort, &slots, &f, &on_panic);
            scope.spawn(move || loop {
                if abort.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                    .unwrap_or_else(|_| Err(on_panic()));
                if r.is_err() {
                    abort.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                slots.lock().expect("result lock poisoned")[i] = Some(r);
            });
        }
    });
    // Surface the lowest-indexed error (matching a sequential loop); a
    // trailing `None` can only follow an abort.
    let mut done = Vec::with_capacity(n);
    for slot in out {
        match slot {
            Some(Ok(v)) => done.push(v),
            Some(Err(e)) => return Err(e),
            None => break,
        }
    }
    if done.len() == n {
        Ok(done)
    } else {
        // Aborted: some later unit failed before earlier ones ran.
        Err(on_panic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_range_without_overlap() {
        for n in [0usize, 1, 7, 100, 2048, 10_001] {
            for t in [1usize, 2, 3, 8, 64] {
                let s = shards(n, t);
                let mut covered = 0;
                let mut expected_start = 0;
                for r in &s {
                    assert_eq!(r.start, expected_start);
                    assert!(!r.is_empty());
                    covered += r.len();
                    expected_start = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn map_ranges_parallel_equals_sequential() {
        let n = 50_000;
        let work = |r: Range<usize>| -> u64 { r.map(|i| (i as u64).wrapping_mul(31)).sum() };
        let seq: u64 = map_ranges(ExecPolicy::Sequential, n, work)
            .into_iter()
            .sum();
        // Fixed bypasses the adaptive clamp, so the sharded merge genuinely
        // runs even on a single-core machine; Parallel may legitimately
        // degrade to one shard there but must still agree.
        for policy in [
            ExecPolicy::Fixed { threads: 7 },
            ExecPolicy::Parallel { threads: 7 },
        ] {
            let par: u64 = map_ranges(policy, n, work).into_iter().sum();
            assert_eq!(seq, par, "{policy:?}");
        }
    }

    #[test]
    fn fill_slots_parallel_equals_sequential() {
        let n = 10_000;
        let width = 3;
        let f = |slots: Range<usize>, window: &mut [u32]| {
            for (k, i) in slots.enumerate() {
                for w in 0..width {
                    window[k * width + w] = (i * width + w) as u32;
                }
            }
        };
        let mut seq = vec![0u32; n * width];
        fill_slots(ExecPolicy::Sequential, &mut seq, width, f);
        for policy in [
            ExecPolicy::Fixed { threads: 5 },
            ExecPolicy::Parallel { threads: 5 },
        ] {
            let mut par = vec![0u32; n * width];
            fill_slots(policy, &mut par, width, f);
            assert_eq!(seq, par, "{policy:?}");
        }
        assert_eq!(seq[7], 7);
    }

    #[test]
    fn map_units_preserves_order() {
        let seq = map_units(ExecPolicy::Sequential, 20, |i| i * i);
        for policy in [
            ExecPolicy::Fixed { threads: 4 },
            ExecPolicy::Parallel { threads: 4 },
        ] {
            let par = map_units(policy, 20, |i| i * i);
            assert_eq!(seq, par, "{policy:?}");
        }
        assert_eq!(seq[3], 9);
    }

    #[test]
    fn adaptive_clamp_bounds_parallel_but_not_fixed() {
        let hw = hardware_threads();
        assert!(hw >= 1);
        // Parallel: never above the core count, never sharding work below
        // the spawn break-even, and never zero.
        for (n, min_items) in [(0usize, 2048usize), (100, 2048), (1 << 20, 2048), (12, 2)] {
            let t = plan_threads(ExecPolicy::Parallel { threads: 64 }, n, min_items);
            assert!(t >= 1 && t <= hw, "n={n} -> {t}");
            if t > 1 {
                assert!(n / t >= min_items, "shard below break-even: n={n} t={t}");
            }
        }
        // Too little total work is always one shard, whatever the ceiling.
        assert_eq!(
            plan_threads(ExecPolicy::Parallel { threads: 64 }, 100, 2048),
            1
        );
        // Fixed is exempt from every clamp.
        assert_eq!(
            plan_threads(ExecPolicy::Fixed { threads: 64 }, 100, 2048),
            64
        );
        assert_eq!(plan_threads(ExecPolicy::Sequential, 1 << 20, 1), 1);
        // Unit planning stays within 2× cores for Parallel, exact for Fixed.
        assert!(plan_unit_threads(ExecPolicy::Parallel { threads: 64 }, 64) <= hw * 2);
        assert_eq!(plan_unit_threads(ExecPolicy::Fixed { threads: 6 }, 64), 6);
        assert_eq!(plan_unit_threads(ExecPolicy::Fixed { threads: 6 }, 3), 3);
    }

    #[test]
    fn try_map_units_short_circuits_and_reports_lowest_error() {
        for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel { threads: 4 }] {
            let ok = try_map_units(policy, 10, || "panic", |i| Ok::<_, &str>(i * 2));
            assert_eq!(ok.unwrap(), (0..10).map(|i| i * 2).collect::<Vec<_>>());

            let err = try_map_units(
                policy,
                10,
                || "panic".to_string(),
                |i| {
                    if i >= 3 {
                        Err(format!("unit {i} failed"))
                    } else {
                        Ok(i)
                    }
                },
            );
            // Lowest-indexed failure, like a sequential `?` loop.
            assert_eq!(err.unwrap_err(), "unit 3 failed", "{policy:?}");
        }
    }

    #[test]
    fn try_map_units_converts_worker_panics_to_errors() {
        let err = try_map_units(
            ExecPolicy::Parallel { threads: 3 },
            6,
            || "worker panicked",
            |i| {
                if i == 2 {
                    panic!("boom");
                }
                Ok::<_, &str>(i)
            },
        );
        assert_eq!(err.unwrap_err(), "worker panicked");
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert_eq!(map_units(ExecPolicy::auto(), 0, |i| i).len(), 0);
        let v = map_ranges(ExecPolicy::auto(), 0, |r| r.len());
        assert_eq!(v.into_iter().sum::<usize>(), 0);
        let mut empty: [u8; 0] = [];
        fill_slots(ExecPolicy::auto(), &mut empty, 4, |_, _| {});
    }
}
