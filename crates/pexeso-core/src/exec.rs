//! Deterministic parallel execution layer.
//!
//! Every hot stage of the PEXESO pipeline — pivot mapping, grid and
//! inverted-index construction, blocking, verification, multi-query and
//! out-of-core search — is expressed as *independent work over contiguous
//! index ranges* and funnelled through the helpers here. The helpers shard
//! the range across the threads of an [`ExecPolicy`] with
//! `std::thread::scope` and merge shard results in range order, so the
//! output is byte-identical to a sequential run (there are no
//! order-sensitive floating-point reductions across shards). That property
//! is what lets `ExecPolicy` be a pure throughput knob: the differential
//! tests in `tests/exactness.rs` pin `Sequential ≡ Parallel` exactly.
//!
//! No external runtime (rayon et al.) is used: the registry-less build
//! environment bakes in only the standard library, and scoped threads are
//! all these fork-join shapes need.

use std::ops::Range;

use crate::config::ExecPolicy;

/// Below this many work items the thread-spawn overhead dominates and the
/// helpers fall back to the sequential path regardless of policy. Spawning
/// and joining a thread costs on the order of tens of microseconds, so a
/// shard needs roughly a millisecond of work to pay for itself; stages
/// with very cheap per-item cost pass a larger `min_items` of their own.
pub const MIN_PARALLEL_ITEMS: usize = 2048;

/// Split `0..n` into at most `threads` contiguous, non-empty ranges.
fn shards(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.clamp(1, n.max(1));
    let chunk = n.div_ceil(threads);
    (0..threads)
        .map(|t| (t * chunk).min(n)..((t + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Run `f` over contiguous shards of `0..n`, returning one result per shard
/// in range order. Sequential policies (or small `n`) run a single shard on
/// the calling thread.
pub fn map_ranges<T, F>(policy: ExecPolicy, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    map_ranges_min(policy, n, MIN_PARALLEL_ITEMS, f)
}

/// [`map_ranges`] with an explicit parallelism cut-off, for stages whose
/// per-item cost is large (e.g. one column or one whole query per item).
pub fn map_ranges_min<T, F>(policy: ExecPolicy, n: usize, min_items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let threads = policy.effective_threads();
    if threads <= 1 || n < min_items.max(2) {
        return vec![f(0..n)];
    }
    let ranges = shards(n, threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                scope.spawn(move || f(r))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pexeso worker thread panicked"))
            .collect()
    })
}

/// Fill `out` (viewed as `n = out.len() / width` logical slots of `width`
/// elements) by handing each shard of slots its disjoint `&mut` window.
/// `f(slot_range, window)` writes `window[(i - slot_range.start) * width ..]`
/// for each slot `i`. Deterministic: slot values never depend on sharding.
pub fn fill_slots<T, F>(policy: ExecPolicy, out: &mut [T], width: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    fill_slots_min(policy, out, width, MIN_PARALLEL_ITEMS, f)
}

/// [`fill_slots`] with an explicit parallelism cut-off, for stages whose
/// per-slot cost is far from the default assumption (e.g. leaf-key packing
/// at a few ns per slot needs far more slots to amortise a spawn).
pub fn fill_slots_min<T, F>(policy: ExecPolicy, out: &mut [T], width: usize, min_items: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert!(width > 0, "slot width must be positive");
    debug_assert_eq!(out.len() % width, 0);
    let n = out.len() / width;
    let threads = policy.effective_threads();
    if threads <= 1 || n < min_items.max(2) {
        f(0..n, out);
        return;
    }
    let ranges = shards(n, threads);
    std::thread::scope(|scope| {
        let mut rest = out;
        for r in ranges {
            let (window, tail) = rest.split_at_mut((r.end - r.start) * width);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(r, window));
        }
    });
}

/// Dynamic work-stealing loop for *coarse* units of uneven cost (e.g. one
/// disk partition per unit). `f(i)` runs once for every `i in 0..n`;
/// results are returned in unit order. Unlike [`map_ranges`] the
/// assignment of units to threads is dynamic, which is safe exactly
/// because each unit's result is independent of every other.
pub fn map_units<T, F>(policy: ExecPolicy, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = policy.effective_threads().min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots = std::sync::Mutex::new(&mut out);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (next, slots, f) = (&next, &slots, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                slots.lock().expect("result lock poisoned")[i] = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("every unit produced a result"))
        .collect()
}

/// Fallible [`map_units`]: stops handing out new units after the first
/// `Err` (or worker panic, converted to the supplied error) and returns
/// the lowest-indexed failure, like a sequential `?` loop would. Units
/// already in flight on other threads still run to completion; their
/// results are discarded when an earlier unit failed.
pub fn try_map_units<T, E, F>(
    policy: ExecPolicy,
    n: usize,
    on_panic: impl Fn() -> E + Sync,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let threads = policy.effective_threads().min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let abort = std::sync::atomic::AtomicBool::new(false);
    let mut out: Vec<Option<Result<T, E>>> = (0..n).map(|_| None).collect();
    let slots = std::sync::Mutex::new(&mut out);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (next, abort, slots, f, on_panic) = (&next, &abort, &slots, &f, &on_panic);
            scope.spawn(move || loop {
                if abort.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                    .unwrap_or_else(|_| Err(on_panic()));
                if r.is_err() {
                    abort.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                slots.lock().expect("result lock poisoned")[i] = Some(r);
            });
        }
    });
    // Surface the lowest-indexed error (matching a sequential loop); a
    // trailing `None` can only follow an abort.
    let mut done = Vec::with_capacity(n);
    for slot in out {
        match slot {
            Some(Ok(v)) => done.push(v),
            Some(Err(e)) => return Err(e),
            None => break,
        }
    }
    if done.len() == n {
        Ok(done)
    } else {
        // Aborted: some later unit failed before earlier ones ran.
        Err(on_panic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_range_without_overlap() {
        for n in [0usize, 1, 7, 100, 2048, 10_001] {
            for t in [1usize, 2, 3, 8, 64] {
                let s = shards(n, t);
                let mut covered = 0;
                let mut expected_start = 0;
                for r in &s {
                    assert_eq!(r.start, expected_start);
                    assert!(!r.is_empty());
                    covered += r.len();
                    expected_start = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn map_ranges_parallel_equals_sequential() {
        let n = 50_000;
        let work = |r: Range<usize>| -> u64 { r.map(|i| (i as u64).wrapping_mul(31)).sum() };
        let seq: u64 = map_ranges(ExecPolicy::Sequential, n, work)
            .into_iter()
            .sum();
        let par: u64 = map_ranges(ExecPolicy::Parallel { threads: 7 }, n, work)
            .into_iter()
            .sum();
        assert_eq!(seq, par);
    }

    #[test]
    fn fill_slots_parallel_equals_sequential() {
        let n = 10_000;
        let width = 3;
        let f = |slots: Range<usize>, window: &mut [u32]| {
            for (k, i) in slots.enumerate() {
                for w in 0..width {
                    window[k * width + w] = (i * width + w) as u32;
                }
            }
        };
        let mut seq = vec![0u32; n * width];
        fill_slots(ExecPolicy::Sequential, &mut seq, width, f);
        let mut par = vec![0u32; n * width];
        fill_slots(ExecPolicy::Parallel { threads: 5 }, &mut par, width, f);
        assert_eq!(seq, par);
        assert_eq!(seq[7], 7);
    }

    #[test]
    fn map_units_preserves_order() {
        let seq = map_units(ExecPolicy::Sequential, 20, |i| i * i);
        let par = map_units(ExecPolicy::Parallel { threads: 4 }, 20, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(seq[3], 9);
    }

    #[test]
    fn try_map_units_short_circuits_and_reports_lowest_error() {
        for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel { threads: 4 }] {
            let ok = try_map_units(policy, 10, || "panic", |i| Ok::<_, &str>(i * 2));
            assert_eq!(ok.unwrap(), (0..10).map(|i| i * 2).collect::<Vec<_>>());

            let err = try_map_units(
                policy,
                10,
                || "panic".to_string(),
                |i| {
                    if i >= 3 {
                        Err(format!("unit {i} failed"))
                    } else {
                        Ok(i)
                    }
                },
            );
            // Lowest-indexed failure, like a sequential `?` loop.
            assert_eq!(err.unwrap_err(), "unit 3 failed", "{policy:?}");
        }
    }

    #[test]
    fn try_map_units_converts_worker_panics_to_errors() {
        let err = try_map_units(
            ExecPolicy::Parallel { threads: 3 },
            6,
            || "worker panicked",
            |i| {
                if i == 2 {
                    panic!("boom");
                }
                Ok::<_, &str>(i)
            },
        );
        assert_eq!(err.unwrap_err(), "worker panicked");
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert_eq!(map_units(ExecPolicy::auto(), 0, |i| i).len(), 0);
        let v = map_ranges(ExecPolicy::auto(), 0, |r| r.len());
        assert_eq!(v.into_iter().sum::<usize>(), 0);
        let mut empty: [u8; 0] = [];
        fill_slots(ExecPolicy::auto(), &mut empty, 4, |_, _| {});
    }
}
