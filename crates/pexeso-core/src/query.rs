//! The unified query API: one request type, one executor trait.
//!
//! PEXESO defines a single logical operation — find the columns whose
//! τ-match count clears a threshold `T` or ranks in the top `k` — but a
//! growing system exposes it through many backends: an in-memory
//! [`PexesoIndex`](crate::search::PexesoIndex), an out-of-core
//! [`PartitionedLake`](crate::outofcore::PartitionedLake), its
//! fully-resident twin
//! [`ResidentPartitions`](crate::outofcore::ResidentPartitions), and a
//! remote serving daemon. This module is the one surface they all share:
//!
//! * [`Query`] — a self-contained, backend-agnostic request: mode
//!   (threshold or top-k), τ, per-query [`SearchOptions`], an outer
//!   [`ExecPolicy`] for partition/batch fan-out, an optional metric
//!   expectation, and a per-query [`QueryBudget`];
//! * [`QueryResponse`] — globally-identified hits
//!   ([`crate::outofcore::GlobalHit`]), the familiar
//!   [`SearchStats`], and a typed [`QueryOutcome`] that says whether the
//!   answer is exact or a budget tripped mid-verification;
//! * [`Queryable`] — the object-safe executor trait every backend
//!   implements, so callers can hold a `&dyn Queryable` and stay agnostic
//!   to where the index actually lives.
//!
//! ## The unified result contract
//!
//! Every backend answers the same `Query` with byte-identical rankings:
//!
//! * threshold mode returns every joinable column, ascending by
//!   `external_id`;
//! * top-k mode returns (up to) `k` columns ranked by match count
//!   descending, ties broken by ascending `external_id` (backends whose
//!   internal tie-break differs re-rank tie-inclusively);
//! * `k == 0` returns no hits (and no error); `T` counts are clamped to
//!   at least 1; an invalid τ is a typed error on every backend.
//!
//! ## Budgets
//!
//! A [`QueryBudget`] bounds the *verification* work of one query: a cap on
//! exact distance computations and/or a wall-clock deadline. The limits
//! are checked inside the verification loops (per query vector for the
//! threshold scan, per batch for the best-first top-k loop); when one
//! trips, the query returns the hits found so far with
//! [`QueryOutcome::Exceeded`] instead of silently presenting a partial
//! answer as exact. The distance cap cuts off deterministically: a
//! budgeted threshold scan runs sequentially and the top-k loop's batch
//! boundaries are policy-independent, so the same budget yields the same
//! partial result every time. Deadlines are inherently wall-clock-bound
//! and therefore best-effort.
//!
//! ```
//! use pexeso_core::prelude::*;
//!
//! let mut repo = ColumnSet::new(4);
//! repo.add_column("t1", "c", 0, vec![&[1.0, 0.0, 0.0, 0.0][..]]).unwrap();
//! repo.add_column("t2", "c", 1, vec![&[0.0, 1.0, 0.0, 0.0][..]]).unwrap();
//! let index = PexesoIndex::build(repo, Euclidean, IndexOptions::default()).unwrap();
//!
//! let mut q = VectorStore::new(4);
//! q.push(&[1.0, 0.0, 0.0, 0.0]).unwrap();
//!
//! // One request type for every ranking mode and backend.
//! let query = Query::threshold(Tau::Ratio(0.05), JoinThreshold::Ratio(0.9))
//!     .expect_metric("euclidean");
//! let backend: &dyn Queryable = &index;
//! let resp = backend.execute(&query, &q).unwrap();
//! assert!(resp.exact());
//! assert_eq!(resp.hits.len(), 1);
//! assert_eq!(resp.hits[0].external_id, 0);
//!
//! // Top-k is the same request with a different mode.
//! let top = backend.execute(&Query::topk(Tau::Ratio(0.05), 1), &q).unwrap();
//! assert_eq!(top.hits[0].table_name, "t1");
//! ```

use std::time::{Duration, Instant};

use crate::config::{ExecPolicy, JoinThreshold, LemmaFlags, Tau};
use crate::error::Result;
use crate::explain::ExplainReport;
use crate::outofcore::GlobalHit;
use crate::search::SearchOptions;
use crate::stats::SearchStats;
use crate::trace::{QueryTrace, TraceLevel};
use crate::vector::VectorStore;

/// The ranking mode of a [`Query`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryMode {
    /// Every column with at least `T` matching query records.
    Threshold(JoinThreshold),
    /// The `k` columns with the most matching query records.
    Topk(usize),
}

/// A per-query bound on verification work. The default is unlimited.
///
/// `max_distance_computations` caps the exact distance computations spent
/// verifying candidates (the [`SearchStats::distance_computations`]
/// counter); `deadline` bounds wall-clock time from the moment the backend
/// starts executing. Either limit tripping yields
/// [`QueryOutcome::Exceeded`] with the hits found so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryBudget {
    /// Cap on exact distance computations; `None` = unlimited.
    pub max_distance_computations: Option<u64>,
    /// Wall-clock allowance for the whole query; `None` = unlimited.
    pub deadline: Option<Duration>,
}

impl QueryBudget {
    /// The unlimited budget (what [`Default`] also yields).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether any limit is set at all.
    pub fn is_limited(&self) -> bool {
        self.max_distance_computations.is_some() || self.deadline.is_some()
    }
}

/// Which budget limit cut a query short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exceeded {
    /// [`QueryBudget::max_distance_computations`] was reached.
    DistanceComputations,
    /// [`QueryBudget::deadline`] passed.
    Deadline,
}

impl std::fmt::Display for Exceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exceeded::DistanceComputations => write!(f, "distance-computation budget exceeded"),
            Exceeded::Deadline => write!(f, "deadline exceeded"),
        }
    }
}

/// Whether a [`QueryResponse`] is the exact answer or a budget tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryOutcome {
    /// The hits are exactly the defined answer set/ranking.
    #[default]
    Exact,
    /// A budget limit tripped mid-verification; the hits are a sound but
    /// possibly incomplete subset (threshold mode) or a ranking over the
    /// columns verified so far (top-k mode).
    Exceeded(Exceeded),
}

/// One backend-independent, criteria-carrying joinability query.
///
/// Construct with [`Query::threshold`] or [`Query::topk`], refine with the
/// builder methods, and hand it to any [`Queryable`] backend. See the
/// [module docs](self) for the shared result contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Threshold or top-k ranking.
    pub mode: QueryMode,
    /// Distance threshold τ.
    pub tau: Tau,
    /// Per-query knobs: lemma toggles, quick browsing, verify strategy,
    /// and the *inner* (per-query) execution policy.
    pub options: SearchOptions,
    /// Outer fan-out policy: how partitions (out-of-core/resident
    /// backends) or whole queries ([`Queryable::execute_many`]) are spread
    /// over threads. Results are policy-independent.
    pub policy: ExecPolicy,
    /// Metric the backend is expected to have been built with (e.g.
    /// `"euclidean"`). Backends that know their metric reject a mismatch
    /// instead of silently returning non-exact results; `None` accepts the
    /// backend's own metric.
    pub metric: Option<String>,
    /// Per-query verification budget.
    pub budget: QueryBudget,
    /// Phase-tracing level. [`TraceLevel::Off`] (the default) adds no
    /// work beyond one branch per execution; any other level attaches a
    /// [`QueryTrace`] to the response. Tracing never changes results.
    pub trace: TraceLevel,
    /// Correlation id minted at the outermost hop
    /// ([`crate::log::mint_request_id`]) and propagated unchanged to
    /// every backend/shard, so one id links structured-log lines, SLOW
    /// entries, and merged trace spans across the fleet. `None` (the
    /// default) means the request is uncorrelated; results never depend
    /// on it.
    pub request_id: Option<u64>,
    /// Whether to attach an [`ExplainReport`] (the candidate funnel and
    /// pruning decisions) to the response. Off by default; the report
    /// is a pure function of the final stats, so enabling it never
    /// changes hits or stats (`tests/explain.rs` pins this).
    pub explain: bool,
}

impl Query {
    fn new(mode: QueryMode, tau: Tau) -> Self {
        Self {
            mode,
            tau,
            options: SearchOptions::default(),
            policy: ExecPolicy::Sequential,
            metric: None,
            budget: QueryBudget::default(),
            trace: TraceLevel::Off,
            request_id: None,
            explain: false,
        }
    }

    /// A threshold query: every column with ≥ `t` matching query records.
    pub fn threshold(tau: Tau, t: JoinThreshold) -> Self {
        Self::new(QueryMode::Threshold(t), tau)
    }

    /// A top-k query: the `k` columns with the most matching records.
    pub fn topk(tau: Tau, k: usize) -> Self {
        Self::new(QueryMode::Topk(k), tau)
    }

    /// Replace the per-query [`SearchOptions`] wholesale.
    pub fn with_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Set the lemma toggles (Fig. 9 ablations; results never change).
    pub fn with_flags(mut self, flags: LemmaFlags) -> Self {
        self.options.flags = flags;
        self
    }

    /// Enable/disable the quick-browsing shortcut.
    pub fn quick_browse(mut self, on: bool) -> Self {
        self.options.quick_browse = on;
        self
    }

    /// Set the *inner* per-query execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.options.exec = exec;
        self
    }

    /// Set the *outer* fan-out policy (partitions / batched queries).
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Expect the backend to have been built with the named metric.
    pub fn expect_metric(mut self, name: &str) -> Self {
        self.metric = Some(name.to_string());
        self
    }

    /// Replace the verification budget wholesale.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Cap the exact distance computations spent verifying this query.
    pub fn with_max_distance_computations(mut self, n: u64) -> Self {
        self.budget.max_distance_computations = Some(n);
        self
    }

    /// Bound the wall-clock time of this query (best-effort).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.budget.deadline = Some(deadline);
        self
    }

    /// Request a phase trace at the given level. Results are unchanged;
    /// the response additionally carries a [`QueryTrace`].
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Tag the query with a fleet-wide correlation id (see
    /// [`Query::request_id`]).
    pub fn with_request_id(mut self, rid: u64) -> Self {
        self.request_id = Some(rid);
        self
    }

    /// Request an [`ExplainReport`] alongside the hits. Results are
    /// unchanged; the response additionally carries the funnel.
    pub fn with_explain(mut self, on: bool) -> Self {
        self.explain = on;
        self
    }
}

/// The unified answer to a [`Query`]: globally-identified hits, the usual
/// per-query instrumentation, and an explicit exactness outcome.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Joinable columns under the unified ranking contract (see the
    /// [module docs](self)).
    pub hits: Vec<GlobalHit>,
    pub stats: SearchStats,
    pub outcome: QueryOutcome,
    /// Phase trace, present iff the query asked for one
    /// ([`Query::with_trace`] with a level other than
    /// [`TraceLevel::Off`]).
    pub trace: Option<QueryTrace>,
    /// Candidate-funnel report, present iff the query asked for one
    /// ([`Query::with_explain`]).
    pub explain: Option<ExplainReport>,
}

impl QueryResponse {
    /// Whether the hits are the exact, complete answer.
    pub fn exact(&self) -> bool {
        self.outcome == QueryOutcome::Exact
    }
}

/// An executor of [`Query`]s. Object-safe: backends are usable as
/// `&dyn Queryable`, so batch drivers, servers, and tests can be written
/// once against the trait.
///
/// Implementations answer the same query with byte-identical rankings
/// (the differential test `tests/query_api.rs` pins in-memory, disk,
/// resident, and remote backends against each other).
pub trait Queryable {
    /// Answer one query column.
    fn execute(&self, query: &Query, vectors: &VectorStore) -> Result<QueryResponse>;

    /// Answer many query columns against the same backend.
    /// `responses[i]` is exactly what `execute(query, columns[i])`
    /// returns; `query.policy` may fan whole queries across threads
    /// (backends override the default per-column loop where that pays).
    fn execute_many(&self, query: &Query, columns: &[&VectorStore]) -> Result<Vec<QueryResponse>> {
        columns.iter().map(|c| self.execute(query, c)).collect()
    }
}

/// Live bookkeeping for one query's [`QueryBudget`], shared by every
/// backend: the deadline is armed once when the backend starts executing,
/// and the distance cap is charged against `base + local` so multi-part
/// executions (partitions, tie-inclusive re-queries) accumulate correctly
/// via [`BudgetGuard::advance`].
#[derive(Debug, Clone)]
pub struct BudgetGuard {
    max_distances: Option<u64>,
    deadline: Option<Instant>,
    base_distances: u64,
}

impl BudgetGuard {
    /// Arm a guard for `budget`, or `None` when it is unlimited.
    pub fn start(budget: &QueryBudget) -> Option<Self> {
        if !budget.is_limited() {
            return None;
        }
        Some(Self {
            max_distances: budget.max_distance_computations,
            deadline: budget.deadline.map(|d| Instant::now() + d),
            base_distances: 0,
        })
    }

    /// Charge distance work completed by a finished sub-execution, so the
    /// next sub-execution's local counter continues from here.
    pub fn advance(&mut self, distances: u64) {
        self.base_distances += distances;
    }

    /// Check the limits against a sub-execution's local counters. The
    /// distance cap is checked first: it is deterministic, while the
    /// deadline depends on wall clock.
    pub fn check(&self, local_distances: u64) -> Option<Exceeded> {
        if let Some(max) = self.max_distances {
            if self.base_distances + local_distances >= max {
                return Some(Exceeded::DistanceComputations);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Exceeded::Deadline);
            }
        }
        None
    }
}

/// Merge a sub-execution's exceeded flag into a query-level outcome: the
/// first limit to trip wins and is sticky. Public (with the ranking
/// helpers below) so out-of-crate backends — e.g. the delta-overlay
/// executor in `pexeso-delta` — compose partition results under exactly
/// the same contract as the built-in ones.
pub fn fold_outcome(outcome: &mut QueryOutcome, exceeded: Option<Exceeded>) {
    if *outcome == QueryOutcome::Exact {
        if let Some(e) = exceeded {
            *outcome = QueryOutcome::Exceeded(e);
        }
    }
}

/// Rank a tie-inclusive `(match_count, hit)` list under the unified
/// contract — count descending, external id ascending — and truncate to
/// `k`. Shared by every top-k backend.
pub fn rank_topk_hits(mut hits: Vec<GlobalHit>, k: usize) -> Vec<GlobalHit> {
    hits.sort_by(|a, b| {
        b.match_count
            .cmp(&a.match_count)
            .then(a.external_id.cmp(&b.external_id))
    });
    hits.truncate(k);
    hits
}

/// Sort threshold hits under the unified contract: external id ascending.
pub fn sort_threshold_hits(hits: &mut [GlobalHit]) {
    hits.sort_by_key(|h| h.external_id);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_carries_every_criterion() {
        let q = Query::topk(Tau::Ratio(0.06), 7)
            .with_flags(LemmaFlags::without_lemma1())
            .quick_browse(false)
            .with_exec(ExecPolicy::Parallel { threads: 2 })
            .with_policy(ExecPolicy::Parallel { threads: 3 })
            .expect_metric("manhattan")
            .with_max_distance_computations(1000)
            .with_deadline(Duration::from_millis(50))
            .with_trace(TraceLevel::Phases)
            .with_request_id(0xabcd)
            .with_explain(true);
        assert_eq!(q.mode, QueryMode::Topk(7));
        assert_eq!(q.trace, TraceLevel::Phases);
        assert_eq!(q.request_id, Some(0xabcd));
        assert!(q.explain);
        let default = Query::topk(Tau::Ratio(0.06), 7);
        assert_eq!(default.trace, TraceLevel::Off);
        assert_eq!(default.request_id, None);
        assert!(!default.explain);
        assert!(!q.options.flags.lemma1_vector_filter);
        assert!(!q.options.quick_browse);
        assert_eq!(q.options.exec, ExecPolicy::Parallel { threads: 2 });
        assert_eq!(q.policy, ExecPolicy::Parallel { threads: 3 });
        assert_eq!(q.metric.as_deref(), Some("manhattan"));
        assert_eq!(q.budget.max_distance_computations, Some(1000));
        assert!(q.budget.deadline.is_some());
        assert!(q.budget.is_limited());
        assert!(!QueryBudget::unlimited().is_limited());
    }

    #[test]
    fn budget_guard_charges_across_sub_executions() {
        let budget = QueryBudget {
            max_distance_computations: Some(10),
            deadline: None,
        };
        let mut guard = BudgetGuard::start(&budget).unwrap();
        assert_eq!(guard.check(5), None);
        assert_eq!(guard.check(10), Some(Exceeded::DistanceComputations));
        guard.advance(6);
        assert_eq!(guard.check(3), None);
        assert_eq!(guard.check(4), Some(Exceeded::DistanceComputations));
        assert!(BudgetGuard::start(&QueryBudget::unlimited()).is_none());
    }

    #[test]
    fn deadline_guard_trips_once_passed() {
        let budget = QueryBudget {
            max_distance_computations: None,
            deadline: Some(Duration::ZERO),
        };
        let guard = BudgetGuard::start(&budget).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(guard.check(0), Some(Exceeded::Deadline));
    }

    #[test]
    fn outcome_folding_is_sticky_first_wins() {
        let mut o = QueryOutcome::Exact;
        fold_outcome(&mut o, None);
        assert_eq!(o, QueryOutcome::Exact);
        fold_outcome(&mut o, Some(Exceeded::Deadline));
        assert_eq!(o, QueryOutcome::Exceeded(Exceeded::Deadline));
        fold_outcome(&mut o, Some(Exceeded::DistanceComputations));
        assert_eq!(o, QueryOutcome::Exceeded(Exceeded::Deadline));
    }

    #[test]
    fn unified_rankings() {
        let hit = |ext: u64, count: u32| GlobalHit {
            external_id: ext,
            table_name: "t".into(),
            column_name: "c".into(),
            match_count: count,
        };
        let ranked = rank_topk_hits(vec![hit(5, 3), hit(2, 9), hit(1, 3), hit(9, 1)], 3);
        let ids: Vec<u64> = ranked.iter().map(|h| h.external_id).collect();
        assert_eq!(ids, vec![2, 1, 5]);
        let mut th = vec![hit(5, 3), hit(2, 9), hit(9, 1)];
        sort_threshold_hits(&mut th);
        let ids: Vec<u64> = th.iter().map(|h| h.external_id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }
}
