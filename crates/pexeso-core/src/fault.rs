//! Deterministic fault injection for crash and failure testing.
//!
//! A process-global registry of **named fault points**. Production code
//! marks the boundaries where hardware and kernels actually betray you —
//! an fsync, a record write, a manifest rename, a socket read — with a
//! single call (`fault::check`, `fault::write_all`). Tests (and the
//! dev-only `pexeso serve --fault-profile` flag) *arm* rules against
//! those names: fail the Nth hit with an injected I/O error, tear a
//! write after K bytes, or delay an operation. Nothing is ever armed in
//! production, and the disarmed path is a single relaxed atomic load —
//! no lock, no allocation, no branch on per-point state — so the hooks
//! are free where they sit on hot paths.
//!
//! ## Determinism
//!
//! Rules trigger on exact hit ordinals (`after` = number of hits to let
//! pass first), so a crash test can enumerate every fault point an
//! operation crosses (trace mode), then replay the operation once per
//! (point, ordinal) pair with a crash armed exactly there. The registry
//! is process-global: tests that arm faults must serialize (the chaos
//! suites share a mutex) and disarm in all paths.
//!
//! ```
//! use pexeso_core::fault::{self, FaultAction, FaultRule};
//!
//! let _guard = fault::test_lock();
//! fault::arm("demo.op", FaultRule::nth(1, FaultAction::Error));
//! assert!(fault::check("demo.op").is_ok()); // first hit passes
//! assert!(fault::check("demo.op").is_err()); // second hit fails
//! assert!(fault::check("demo.op").is_ok()); // rule is one-shot
//! fault::disarm_all();
//! ```

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails with an injected [`io::Error`]
    /// (`ErrorKind::Other`, message tagged `fault-injected`).
    Error,
    /// A write persists only its first `keep` bytes, then fails — a torn
    /// write, as a power loss mid-`write(2)` would leave it. At
    /// non-write points this degrades to [`FaultAction::Error`].
    Tear { keep: usize },
    /// The operation is delayed by this many milliseconds, then
    /// proceeds normally. Arms a deterministic window for kill tests
    /// and models a wedged peer/black-holed socket (bounded by the
    /// caller's timeout).
    Delay { ms: u64 },
}

/// One armed rule: let `after` hits pass, then perform `action`.
#[derive(Debug, Clone, Copy)]
pub struct FaultRule {
    /// Hits to let through before firing (0 = fire on the first hit).
    pub after: u64,
    pub action: FaultAction,
    /// `true`: fire on exactly one hit, then lie dormant (crash tests).
    /// `false`: fire on every hit from `after` onward (wedged-disk /
    /// black-hole modelling).
    pub once: bool,
}

impl FaultRule {
    /// Fire exactly once, on the hit with ordinal `after` (0-based).
    pub fn nth(after: u64, action: FaultAction) -> Self {
        Self {
            after,
            action,
            once: true,
        }
    }

    /// Fire on every hit from ordinal `after` onward.
    pub fn from_nth(after: u64, action: FaultAction) -> Self {
        Self {
            after,
            action,
            once: false,
        }
    }
}

#[derive(Default)]
struct PointState {
    hits: u64,
    rule: Option<FaultRule>,
}

#[derive(Default)]
struct Registry {
    points: HashMap<String, PointState>,
    /// Count hits at every point even without a rule (trace mode).
    tracing: bool,
}

/// Fast-path gate: `false` in production, so every hook is one relaxed
/// load. Set whenever any rule is armed or tracing is on.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock_registry() -> MutexGuard<'static, Registry> {
    registry().lock().expect("fault registry poisoned")
}

/// Arm `rule` at `point`, resetting the point's hit counter.
pub fn arm(point: &str, rule: FaultRule) {
    let mut reg = lock_registry();
    reg.points.insert(
        point.to_string(),
        PointState {
            hits: 0,
            rule: Some(rule),
        },
    );
    ARMED.store(true, Ordering::SeqCst);
}

/// Count hits at every point without firing anything. Used by the chaos
/// sweep to enumerate the fault points an operation crosses.
pub fn begin_trace() {
    let mut reg = lock_registry();
    reg.points.clear();
    reg.tracing = true;
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm every rule, stop tracing, and restore the zero-cost path.
pub fn disarm_all() {
    let mut reg = lock_registry();
    reg.points.clear();
    reg.tracing = false;
    ARMED.store(false, Ordering::SeqCst);
}

/// Hits recorded at `point` since it was armed / tracing began.
pub fn hits(point: &str) -> u64 {
    lock_registry().points.get(point).map_or(0, |s| s.hits)
}

/// Every traced point with its hit count, sorted by name — the
/// enumeration a crash sweep iterates.
pub fn traced_points() -> Vec<(String, u64)> {
    let reg = lock_registry();
    let mut v: Vec<(String, u64)> = reg
        .points
        .iter()
        .map(|(k, s)| (k.clone(), s.hits))
        .collect();
    v.sort();
    v
}

/// Whether any rule is armed (or tracing is on). The inline fast path
/// every hook takes first.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Record a hit at `point` and return the action to perform, if a rule
/// fires on this ordinal. Never allocates or locks when disarmed.
#[inline]
pub fn fire(point: &str) -> Option<FaultAction> {
    if !armed() {
        return None;
    }
    fire_slow(point)
}

#[cold]
fn fire_slow(point: &str) -> Option<FaultAction> {
    let mut reg = lock_registry();
    if !reg.tracing && !reg.points.contains_key(point) {
        return None;
    }
    let state = reg.points.entry(point.to_string()).or_default();
    let ordinal = state.hits;
    state.hits += 1;
    let rule = state.rule?;
    let fires = if rule.once {
        ordinal == rule.after
    } else {
        ordinal >= rule.after
    };
    fires.then_some(rule.action)
}

/// The injected error every firing `Error`/`Tear` rule produces;
/// recognisable by message so tests can distinguish injected failures
/// from real ones.
pub fn injected_error(point: &str) -> io::Error {
    io::Error::other(format!("fault-injected at {point}"))
}

/// Check a non-write fault point: `Error` (and `Tear`) fail the
/// operation, `Delay` sleeps then proceeds.
#[inline]
pub fn check(point: &str) -> io::Result<()> {
    match fire(point) {
        None => Ok(()),
        Some(FaultAction::Delay { ms }) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Some(FaultAction::Error) | Some(FaultAction::Tear { .. }) => Err(injected_error(point)),
    }
}

/// `write_all` through a fault point. `Tear` persists the first `keep`
/// bytes (flushing so they actually reach the next layer) and then
/// fails — the torn-write shape crash-recovery code must tolerate.
#[inline]
pub fn write_all<W: Write>(w: &mut W, buf: &[u8], point: &str) -> io::Result<()> {
    match fire(point) {
        None => w.write_all(buf),
        Some(FaultAction::Delay { ms }) => {
            std::thread::sleep(Duration::from_millis(ms));
            w.write_all(buf)
        }
        Some(FaultAction::Error) => Err(injected_error(point)),
        Some(FaultAction::Tear { keep }) => {
            w.write_all(&buf[..keep.min(buf.len())])?;
            w.flush()?;
            Err(injected_error(point))
        }
    }
}

/// Parse a `--fault-profile` string: comma-separated rules, each
/// `point:after:action[:param]` with actions `error`, `tear:<keep>`,
/// `delay:<ms>`, `delay-from:<ms>` (recurring delay). Example:
/// `wal.append.fsync:0:error,serve.apply:0:delay:2000`.
pub fn parse_profile(profile: &str) -> Result<Vec<(String, FaultRule)>, String> {
    let mut rules = Vec::new();
    for spec in profile.split(',').filter(|s| !s.trim().is_empty()) {
        let parts: Vec<&str> = spec.trim().split(':').collect();
        if parts.len() < 3 {
            return Err(format!(
                "bad fault spec '{spec}': want point:after:action[:param]"
            ));
        }
        let point = parts[0].to_string();
        let after: u64 = parts[1]
            .parse()
            .map_err(|_| format!("bad fault spec '{spec}': '{}' is not a count", parts[1]))?;
        let param = |what: &str| -> Result<u64, String> {
            parts
                .get(3)
                .ok_or_else(|| format!("bad fault spec '{spec}': {what} needs a parameter"))?
                .parse()
                .map_err(|_| format!("bad fault spec '{spec}': bad {what} parameter"))
        };
        let rule = match parts[2] {
            "error" => FaultRule::nth(after, FaultAction::Error),
            "tear" => FaultRule::nth(
                after,
                FaultAction::Tear {
                    keep: param("tear")? as usize,
                },
            ),
            "delay" => FaultRule::nth(
                after,
                FaultAction::Delay {
                    ms: param("delay")?,
                },
            ),
            "delay-from" => FaultRule::from_nth(
                after,
                FaultAction::Delay {
                    ms: param("delay")?,
                },
            ),
            other => return Err(format!("bad fault spec '{spec}': unknown action '{other}'")),
        };
        rules.push((point, rule));
    }
    if rules.is_empty() {
        return Err("empty fault profile".into());
    }
    Ok(rules)
}

/// Arm every rule in a parsed profile (the `--fault-profile` entry
/// point).
pub fn arm_profile(profile: &str) -> Result<(), String> {
    for (point, rule) in parse_profile(profile)? {
        arm(&point, rule);
    }
    Ok(())
}

/// The mutex every fault-arming test must hold: the registry is
/// process-global, so concurrent armed tests would see each other's
/// rules. Disarmed code paths are unaffected (they never read the
/// registry), so ordinary tests need no lock.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A previous test panicking while armed must not poison every
    // later fault test; the registry itself is re-initialised by each.
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_is_inert() {
        let _guard = test_lock();
        disarm_all();
        assert!(!armed());
        assert_eq!(fire("any.point"), None);
        assert!(check("any.point").is_ok());
        let mut buf = Vec::new();
        fault_write_roundtrip(&mut buf);
        assert_eq!(buf, b"hello");
    }

    fn fault_write_roundtrip(buf: &mut Vec<u8>) {
        write_all(buf, b"hello", "any.point").unwrap();
    }

    #[test]
    fn nth_rule_fires_once_on_exact_ordinal() {
        let _guard = test_lock();
        disarm_all();
        arm("p", FaultRule::nth(2, FaultAction::Error));
        assert!(check("p").is_ok());
        assert!(check("p").is_ok());
        let err = check("p").unwrap_err();
        assert!(err.to_string().contains("fault-injected at p"));
        assert!(check("p").is_ok(), "one-shot rule must not re-fire");
        assert_eq!(hits("p"), 4);
        disarm_all();
    }

    #[test]
    fn recurring_rule_fires_from_ordinal() {
        let _guard = test_lock();
        disarm_all();
        arm("p", FaultRule::from_nth(1, FaultAction::Error));
        assert!(check("p").is_ok());
        assert!(check("p").is_err());
        assert!(check("p").is_err());
        disarm_all();
    }

    #[test]
    fn tear_persists_prefix_then_fails() {
        let _guard = test_lock();
        disarm_all();
        arm("w", FaultRule::nth(0, FaultAction::Tear { keep: 3 }));
        let mut buf = Vec::new();
        assert!(write_all(&mut buf, b"abcdef", "w").is_err());
        assert_eq!(buf, b"abc");
        // Rule spent: the next write goes through whole.
        write_all(&mut buf, b"gh", "w").unwrap();
        assert_eq!(buf, b"abcgh");
        disarm_all();
    }

    #[test]
    fn unrelated_points_are_untouched_while_armed() {
        let _guard = test_lock();
        disarm_all();
        arm("only.this", FaultRule::nth(0, FaultAction::Error));
        assert!(check("some.other").is_ok());
        assert!(check("only.this").is_err());
        disarm_all();
    }

    #[test]
    fn trace_mode_counts_without_firing() {
        let _guard = test_lock();
        disarm_all();
        begin_trace();
        assert!(check("a").is_ok());
        assert!(check("a").is_ok());
        assert!(check("b").is_ok());
        assert_eq!(
            traced_points(),
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
        disarm_all();
    }

    #[test]
    fn profile_parsing() {
        let rules = parse_profile("wal.append.fsync:0:error, serve.apply:2:delay:500").unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].0, "wal.append.fsync");
        assert_eq!(rules[0].1.after, 0);
        assert_eq!(rules[0].1.action, FaultAction::Error);
        assert_eq!(rules[1].0, "serve.apply");
        assert_eq!(rules[1].1.action, FaultAction::Delay { ms: 500 });
        assert!(rules[1].1.once);

        let tear = parse_profile("x:1:tear:7").unwrap();
        assert_eq!(tear[0].1.action, FaultAction::Tear { keep: 7 });
        let recur = parse_profile("x:0:delay-from:10").unwrap();
        assert!(!recur[0].1.once);

        assert!(parse_profile("").is_err());
        assert!(parse_profile("no-colons").is_err());
        assert!(parse_profile("p:zero:error").is_err());
        assert!(parse_profile("p:0:tear").is_err());
        assert!(parse_profile("p:0:explode").is_err());
    }
}
