//! Flat vector arena.
//!
//! All vectors of a repository (or of a query column) live in one contiguous
//! `Vec<f32>`, indexed by [`VectorId`]. This keeps the hot verification loop
//! cache-friendly and avoids per-vector allocations (see the perf-book notes
//! on heap allocation).

use crate::error::{PexesoError, Result};

/// Handle to a vector inside a [`VectorStore`]. u32 keeps candidate
/// structures small; 4 G vectors per store is far beyond the target scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VectorId(pub u32);

/// A dense arena of equal-dimensional f32 vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorStore {
    dim: usize,
    data: Vec<f32>,
}

impl AsRef<VectorStore> for VectorStore {
    fn as_ref(&self) -> &VectorStore {
        self
    }
}

impl VectorStore {
    /// Create an empty store of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Pre-allocate for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors stored.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a vector, returning its id.
    pub fn push(&mut self, v: &[f32]) -> Result<VectorId> {
        if v.len() != self.dim {
            return Err(PexesoError::DimensionMismatch {
                expected: self.dim,
                got: v.len(),
            });
        }
        let id = VectorId(self.len() as u32);
        self.data.extend_from_slice(v);
        Ok(id)
    }

    /// Borrow a vector by id.
    #[inline]
    pub fn get(&self, id: VectorId) -> &[f32] {
        let start = id.0 as usize * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Borrow a vector by raw index.
    #[inline]
    pub fn get_raw(&self, idx: usize) -> &[f32] {
        let start = idx * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Iterate over all vectors in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// L2-normalise every vector in place (zero vectors stay zero), the
    /// precondition for the paper's ratio-based τ specification.
    pub fn normalize_all(&mut self) {
        for chunk in self.data.chunks_exact_mut(self.dim) {
            let norm_sq: f32 = chunk.iter().map(|x| x * x).sum();
            if norm_sq > 0.0 {
                let inv = norm_sq.sqrt().recip();
                for x in chunk {
                    *x *= inv;
                }
            }
        }
    }

    /// Raw flat data (persistence).
    pub fn raw_data(&self) -> &[f32] {
        &self.data
    }

    /// Rebuild from flat data (persistence).
    pub fn from_raw(dim: usize, data: Vec<f32>) -> Result<Self> {
        if dim == 0 || !data.len().is_multiple_of(dim) {
            return Err(PexesoError::Corrupt(format!(
                "flat data length {} not a multiple of dim {dim}",
                data.len()
            )));
        }
        Ok(Self { dim, data })
    }

    /// True if any stored component is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut s = VectorStore::new(3);
        let a = s.push(&[1.0, 2.0, 3.0]).unwrap();
        let b = s.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), &[1.0, 2.0, 3.0]);
        assert_eq!(s.get(b), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut s = VectorStore::new(3);
        assert!(matches!(
            s.push(&[1.0]),
            Err(PexesoError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn normalize_all_unit_norm() {
        let mut s = VectorStore::new(2);
        s.push(&[3.0, 4.0]).unwrap();
        s.push(&[0.0, 0.0]).unwrap();
        s.normalize_all();
        let v = s.get(VectorId(0));
        assert!((v[0] - 0.6).abs() < 1e-6 && (v[1] - 0.8).abs() < 1e-6);
        assert_eq!(s.get(VectorId(1)), &[0.0, 0.0]);
    }

    #[test]
    fn iter_visits_in_order() {
        let mut s = VectorStore::new(1);
        for i in 0..5 {
            s.push(&[i as f32]).unwrap();
        }
        let collected: Vec<f32> = s.iter().map(|v| v[0]).collect();
        assert_eq!(collected, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_raw_validates() {
        assert!(VectorStore::from_raw(3, vec![0.0; 7]).is_err());
        let s = VectorStore::from_raw(3, vec![0.0; 9]).unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dimensionality must be positive")]
    fn zero_dim_store_rejected() {
        VectorStore::new(0);
    }

    #[test]
    #[should_panic(expected = "dimensionality must be positive")]
    fn zero_dim_with_capacity_rejected() {
        VectorStore::with_capacity(0, 4);
    }

    #[test]
    fn zero_dim_from_raw_rejected() {
        // Even with empty data (0 is a multiple of everything), dim 0 is
        // corrupt: it would make every length/index computation divide by
        // zero downstream.
        assert!(VectorStore::from_raw(0, vec![]).is_err());
        assert!(VectorStore::from_raw(0, vec![1.0]).is_err());
    }

    #[test]
    fn non_finite_detection() {
        let mut s = VectorStore::new(2);
        s.push(&[1.0, 2.0]).unwrap();
        assert!(!s.has_non_finite());
        s.push(&[f32::NAN, 0.0]).unwrap();
        assert!(s.has_non_finite());
    }
}
