//! Differential sweep pinning the SIMD kernel tiers to the scalar ground
//! truth.
//!
//! The kernel contract (see `pexeso_core::kernel`) is *exact agreement*:
//! on whatever tier the host dispatches to (AVX2, NEON, or scalar), every
//! entry point returns bit-identical results to its always-compiled
//! scalar counterpart — same lane-wise accumulation, same canonical
//! reduction. These tests drive the dispatched entries against the
//! `*_scalar` forms across unaligned lengths (every remainder class of
//! the 8-lane block), boundary thresholds, and IEEE edge values (zeros,
//! subnormals, ±MAX and the infinities they overflow into).
//!
//! On a host without SIMD (or under `PEXESO_FORCE_SCALAR=1`) the sweep
//! degenerates to scalar-vs-scalar and passes trivially; CI runs both
//! configurations so the SIMD tiers are genuinely exercised where the
//! hardware allows.

use pexeso_core::kernel;
use pexeso_core::metric::{Angular, Chebyshev, Euclidean, Manhattan, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lengths covering every `len % 8` remainder, the one-block boundary,
/// and multi-block vectors with and without tails.
const DIMS: &[usize] = &[
    1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 15, 16, 17, 23, 31, 32, 33, 47, 63, 64, 65, 100, 127, 128, 129,
    255,
];

/// IEEE f32 edge values the kernels must carry through unchanged: signed
/// zeros, the smallest subnormal, the smallest normal, and magnitudes
/// whose squares overflow to infinity.
const EDGES: &[f32] = &[
    0.0,
    -0.0,
    f32::from_bits(1), // smallest positive subnormal
    -f32::from_bits(1),
    f32::MIN_POSITIVE,
    f32::MAX,
    -f32::MAX,
    1.0,
    -1.0,
    1e-20,
    -3.5,
];

fn random_vec(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// A vector sprinkled with edge values at random positions.
fn edgy_vec(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim)
        .map(|_| {
            if rng.gen_range(0u32..3) == 0 {
                EDGES[rng.gen_range(0..EDGES.len())]
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect()
}

/// Bitwise f32 equality (distinguishes NaN payloads and signed zeros —
/// stronger than `==`, which is exactly what "bit-identical" promises).
fn assert_bits_eq(a: f32, b: f32, what: &str, dim: usize) {
    assert!(
        a.to_bits() == b.to_bits(),
        "{what} dim={dim}: dispatched {a:?} ({:#010x}) != scalar {b:?} ({:#010x})",
        a.to_bits(),
        b.to_bits()
    );
}

#[test]
fn distances_match_scalar_bitwise() {
    let mut rng = StdRng::seed_from_u64(0x51D);
    for &dim in DIMS {
        for case in 0..40 {
            let (a, b) = if case % 2 == 0 {
                (random_vec(&mut rng, dim), random_vec(&mut rng, dim))
            } else {
                (edgy_vec(&mut rng, dim), edgy_vec(&mut rng, dim))
            };
            assert_bits_eq(
                kernel::l2_sq(&a, &b),
                kernel::l2_sq_scalar(&a, &b),
                "l2_sq",
                dim,
            );
            assert_bits_eq(kernel::l1(&a, &b), kernel::l1_scalar(&a, &b), "l1", dim);
            assert_bits_eq(
                kernel::linf(&a, &b),
                kernel::linf_scalar(&a, &b),
                "linf",
                dim,
            );
            let (dot, na, nb) = kernel::angular_parts(&a, &b);
            let (dot_s, na_s, nb_s) = kernel::angular_parts_scalar(&a, &b);
            assert_bits_eq(dot, dot_s, "angular dot", dim);
            assert_bits_eq(na, na_s, "angular |a|²", dim);
            assert_bits_eq(nb, nb_s, "angular |b|²", dim);
        }
    }
}

#[test]
fn threshold_tests_match_scalar_at_boundaries() {
    let mut rng = StdRng::seed_from_u64(0x7A0);
    for &dim in DIMS {
        for case in 0..30 {
            let (a, b) = if case % 2 == 0 {
                (random_vec(&mut rng, dim), random_vec(&mut rng, dim))
            } else {
                (edgy_vec(&mut rng, dim), edgy_vec(&mut rng, dim))
            };
            let l2 = kernel::l2_sq_scalar(&a, &b).sqrt();
            let l1 = kernel::l1_scalar(&a, &b);
            let linf = kernel::linf_scalar(&a, &b);
            // Boundary taus (the computed distance itself, nudged both
            // ways) are where an over-eager early exit would diverge.
            for scale in [1.0f32, 0.999, 1.001, 0.5, 2.0, 0.0] {
                let t2 = l2 * scale;
                let t1 = l1 * scale;
                let ti = linf * scale;
                assert_eq!(
                    kernel::l2_le(&a, &b, t2),
                    kernel::l2_le_scalar(&a, &b, t2),
                    "l2_le dim={dim} tau={t2}"
                );
                assert_eq!(
                    kernel::l1_le(&a, &b, t1),
                    kernel::l1_le_scalar(&a, &b, t1),
                    "l1_le dim={dim} tau={t1}"
                );
                assert_eq!(
                    kernel::linf_le(&a, &b, ti),
                    kernel::linf_le_scalar(&a, &b, ti),
                    "linf_le dim={dim} tau={ti}"
                );
            }
            // And a handful of arbitrary taus, including subnormal ones.
            for tau in [0.0f32, f32::from_bits(1), 1e-10, 0.3, 10.0] {
                assert_eq!(
                    kernel::l2_le(&a, &b, tau),
                    kernel::l2_le_scalar(&a, &b, tau),
                    "l2_le dim={dim} tau={tau}"
                );
            }
        }
    }
}

#[test]
fn dist_le_agrees_with_dist_for_all_metrics() {
    // The metric-level contract on the dispatched tier: `dist_le` is
    // exactly `dist() <= tau`, whatever the tier decides to early-exit on.
    let mut rng = StdRng::seed_from_u64(0xD15);
    for &dim in DIMS {
        for _ in 0..20 {
            let a = edgy_vec(&mut rng, dim);
            let b = edgy_vec(&mut rng, dim);
            macro_rules! check {
                ($m:expr) => {
                    let d = $m.dist(&a, &b);
                    for tau in [d, d * 0.999, d * 1.001, 0.0, rng.gen_range(0.0f32..3.0)] {
                        assert_eq!(
                            $m.dist_le(&a, &b, tau),
                            d <= tau,
                            "{} dim={dim} d={d} tau={tau}",
                            $m.name()
                        );
                    }
                };
            }
            check!(Euclidean);
            check!(Manhattan);
            check!(Chebyshev);
            check!(Angular);
        }
    }
}

#[test]
fn dist_batch_matches_per_row_dist_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for &dim in &[1usize, 7, 8, 17, 64, 129] {
        let rows = 41;
        let q = edgy_vec(&mut rng, dim);
        let flat: Vec<f32> = (0..rows).flat_map(|_| edgy_vec(&mut rng, dim)).collect();
        macro_rules! check {
            ($m:expr) => {
                let mut out = vec![0.0f32; rows];
                $m.dist_batch(&q, &flat, &mut out);
                for (i, row) in flat.chunks_exact(dim).enumerate() {
                    let solo = $m.dist(&q, row);
                    assert!(
                        out[i].to_bits() == solo.to_bits(),
                        "{} dim={dim} row={i}: batch {:?} != solo {:?}",
                        $m.name(),
                        out[i],
                        solo
                    );
                }
            };
        }
        check!(Euclidean);
        check!(Manhattan);
        check!(Chebyshev);
        check!(Angular);
    }
}

/// Reference for the gather kernel: the plain per-row loop it replaces.
fn first_match_reference<M: Metric>(
    m: &M,
    q: &[f32],
    arena: &[f32],
    dim: usize,
    vids: &[u32],
    tau: f32,
) -> (usize, Option<usize>) {
    for (i, &vid) in vids.iter().enumerate() {
        let start = vid as usize * dim;
        if m.dist_le(q, &arena[start..start + dim], tau) {
            return (i + 1, Some(i));
        }
    }
    (vids.len(), None)
}

#[test]
fn gather_first_match_equals_per_row_loop() {
    let mut rng = StdRng::seed_from_u64(0xF157);
    for &dim in &[1usize, 4, 8, 17, 64, 96] {
        for _ in 0..30 {
            let n_rows = rng.gen_range(1usize..40);
            let arena: Vec<f32> = (0..n_rows)
                .flat_map(|_| random_vec(&mut rng, dim))
                .collect();
            let q = random_vec(&mut rng, dim);
            // Random gather order with repeats — postings lists are
            // sorted in practice, but the kernel must not care.
            let vids: Vec<u32> = (0..rng.gen_range(0usize..60))
                .map(|_| rng.gen_range(0..n_rows as u32))
                .collect();
            for tau in [0.0f32, 0.5, 1.0, 2.0, 5.0] {
                let expect = first_match_reference(&Euclidean, &q, &arena, dim, &vids, tau);
                assert_eq!(
                    Euclidean.dist_le_first(&q, &arena, dim, &vids, tau),
                    expect,
                    "dist_le_first dim={dim} tau={tau} vids={vids:?}"
                );
                assert_eq!(
                    kernel::l2_le_first(&q, &arena, dim, &vids, tau),
                    expect,
                    "l2_le_first dim={dim} tau={tau}"
                );
                assert_eq!(
                    kernel::l2_le_first_scalar(&q, &arena, dim, &vids, tau),
                    expect,
                    "l2_le_first_scalar dim={dim} tau={tau}"
                );
                // Default trait implementation (what non-Euclidean
                // metrics use) against the same reference.
                assert_eq!(
                    Manhattan.dist_le_first(&q, &arena, dim, &vids, tau),
                    first_match_reference(&Manhattan, &q, &arena, dim, &vids, tau),
                    "manhattan default dist_le_first dim={dim} tau={tau}"
                );
            }
        }
    }
}

#[test]
fn gather_first_match_empty_and_exhausted() {
    let arena = vec![0.0f32; 64];
    let q = vec![1.0f32; 8];
    assert_eq!(kernel::l2_le_first(&q, &arena, 8, &[], 0.5), (0, None));
    // No row within tau: every row tested, no match.
    let vids: Vec<u32> = (0..8).collect();
    assert_eq!(
        kernel::l2_le_first(&q, &arena, 8, &vids, 0.5),
        (8, None),
        "all rows at distance sqrt(8)"
    );
    // Every row matches: exactly one row tested.
    assert_eq!(
        kernel::l2_le_first(&q, &arena, 8, &vids, 10.0),
        (1, Some(0))
    );
}
