//! Property tests for the core structures: lemma soundness, grid
//! containment, divergence properties, persistence round-trips,
//! log-bucketed histogram guarantees.

use proptest::prelude::*;

use pexeso_core::grid::{CellKey, GridParams};
use pexeso_core::hist::{
    bucket_index, bucket_upper_bound, bucket_width, AtomicHistogram, NUM_BUCKETS,
};
use pexeso_core::histogram::{jensen_shannon, jsd_paper, Histogram};
use pexeso_core::lemmas;
use pexeso_core::mapping::MappedVectors;
use pexeso_core::metric::{Euclidean, Metric};
use pexeso_core::vector::VectorStore;

fn unit_vec(dim: usize, seed: u64) -> Vec<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Lemma 1 never prunes a true match; Lemma 2 never admits a false one.
    #[test]
    fn lemma_1_2_soundness(seed_q in 0u64..10_000, seed_x in 0u64..10_000, tau in 0.01f32..1.5) {
        let dim = 10;
        let q = unit_vec(dim, seed_q);
        let x = unit_vec(dim, seed_x);
        let pivots: Vec<Vec<f32>> = (0..3).map(|i| unit_vec(dim, 999 + i)).collect();
        let qm: Vec<f32> = pivots.iter().map(|p| Euclidean.dist(&q, p)).collect();
        let xm: Vec<f32> = pivots.iter().map(|p| Euclidean.dist(&x, p)).collect();
        let d = Euclidean.dist(&q, &x);
        if d <= tau {
            prop_assert!(!lemmas::lemma1_filter(&qm, &xm, tau), "pruned a match d={}", d);
        }
        if lemmas::lemma2_match(&qm, &xm, tau) {
            prop_assert!(d <= tau + 1e-4, "matched a non-match d={}", d);
        }
    }

    /// A mapped vector is always contained in the bounds of its leaf cell
    /// and of every ancestor cell.
    #[test]
    fn grid_containment(seed in 0u64..10_000, levels in 1usize..8) {
        let dim = 8;
        let v = unit_vec(dim, seed);
        let pivots: Vec<Vec<f32>> = (0..3).map(|i| unit_vec(dim, 31 + i)).collect();
        let mapped: Vec<f32> = pivots.iter().map(|p| Euclidean.dist(&v, p)).collect();
        let params = GridParams::new(3, levels, 2.0 + 1e-4).unwrap();
        let mut key = params.leaf_key(&mapped);
        for level in (1..=levels).rev() {
            let b = params.bounds(key, level);
            for (i, &mc) in mapped.iter().enumerate().take(3) {
                prop_assert!(
                    b.lower[i] <= mc + 1e-4 && mc <= b.upper[i] + 1e-4,
                    "level {} dim {}: {} not in [{}, {}]",
                    level, i, mapped[i], b.lower[i], b.upper[i]
                );
            }
            key = key.parent();
        }
    }

    /// Cell-key pack/unpack/parent arithmetic is consistent.
    #[test]
    fn cell_key_arithmetic(indices in proptest::collection::vec(0u8..=255, 1..16)) {
        let key = CellKey::pack(&indices);
        prop_assert_eq!(key.unpack(indices.len()), indices.clone());
        let parent = key.parent().unpack(indices.len());
        for (p, i) in parent.iter().zip(indices.iter()) {
            prop_assert_eq!(*p, i >> 1);
        }
    }

    /// The paper's JSD is symmetric and non-negative; the true
    /// Jensen–Shannon divergence is additionally bounded by ln 2.
    #[test]
    fn divergence_properties(
        a in proptest::collection::vec(0.01f64..1.0, 8),
        b in proptest::collection::vec(0.01f64..1.0, 8),
    ) {
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect::<Vec<f64>>()
        };
        let a = norm(&a);
        let b = norm(&b);
        let j = jsd_paper(&a, &b);
        prop_assert!(j >= -1e-12);
        prop_assert!((j - jsd_paper(&b, &a)).abs() < 1e-9, "symmetry");
        prop_assert!(jsd_paper(&a, &a).abs() < 1e-12);
        let js = jensen_shannon(&a, &b);
        prop_assert!((-1e-12..=std::f64::consts::LN_2 + 1e-9).contains(&js));
    }

    /// Histogram mass queries upper-bound the true fraction of values in a
    /// range (bins overlapping the range count fully).
    #[test]
    fn histogram_mass_is_upper_bound(
        values in proptest::collection::vec(0.0f32..1.0, 1..200),
        a in 0.0f32..1.0,
        width in 0.0f32..0.5,
    ) {
        let h = Histogram::from_values(values.iter().copied(), 0.0, 1.0, 16);
        let b = (a + width).min(1.0);
        let actual = values.iter().filter(|&&v| v >= a && v <= b).count() as f64
            / values.len() as f64;
        prop_assert!(h.mass_in(a, b) + 1e-9 >= actual);
    }

    /// Persist round-trip: a freshly built index and its reloaded twin
    /// return identical results (spot-checked with one query).
    #[test]
    fn persist_roundtrip(seed in 0u64..300) {
        use pexeso_core::prelude::*;
        use pexeso_core::persist::{load_index, save_index};
        let dim = 8;
        let mut columns = ColumnSet::new(dim);
        for c in 0..5 {
            let vecs: Vec<Vec<f32>> = (0..8).map(|i| unit_vec(dim, seed * 100 + c * 10 + i)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns.add_column("t", &format!("c{c}"), c, refs).unwrap();
        }
        let mut query = VectorStore::new(dim);
        for i in 0..4 {
            query.push(&unit_vec(dim, seed * 7 + i)).unwrap();
        }
        let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
        let path = std::env::temp_dir().join(format!("pexeso_prop_persist_{seed}_{}.pex", std::process::id()));
        save_index(&index, &path).unwrap();
        let loaded = load_index(&path, Euclidean).unwrap();
        std::fs::remove_file(&path).ok();
        let tau = Tau::Ratio(0.2);
        let t = JoinThreshold::Ratio(0.5);
        let q = Query::threshold(tau, t);
        let a = index.execute(&q, &query).unwrap();
        let b = loaded.execute(&q, &query).unwrap();
        prop_assert_eq!(a.hits, b.hits);
    }

    /// Top-k invariants, with the brute-force oracle supplying exact
    /// per-column scores:
    ///
    /// * the result is sorted by count descending, column id ascending;
    /// * at most `k` hits, all with positive *exact* counts;
    /// * the k-th (worst returned) entry outranks every excluded column;
    /// * growing k only appends: `topk(k)` is a prefix of `topk(k + 1)`.
    #[test]
    fn topk_invariants(seed in 0u64..400, k in 0usize..14, tau_r in 0.05f32..0.6) {
        use pexeso_core::prelude::*;
        use pexeso_core::oracle;
        let dim = 8;
        let mut columns = ColumnSet::new(dim);
        for c in 0..9 {
            let vecs: Vec<Vec<f32>> = (0..10).map(|i| unit_vec(dim, seed * 131 + c * 17 + i)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns.add_column("t", &format!("c{c}"), c, refs).unwrap();
        }
        let mut query = VectorStore::new(dim);
        for i in 0..6 {
            query.push(&unit_vec(dim, seed * 13 + 1000 + i)).unwrap();
        }
        let index = PexesoIndex::build(
            columns.clone(),
            Euclidean,
            IndexOptions { num_pivots: 3, levels: Some(3), ..Default::default() },
        ).unwrap();
        let tau = Tau::Ratio(tau_r);
        let exact = oracle::match_counts(&columns, &Euclidean, &query, tau, None).unwrap();
        // External ids equal insertion order here, so the unified
        // external-id tie-break matches the oracle's column-id one.
        let res = index.execute(&Query::topk(tau, k), &query).unwrap();

        prop_assert!(res.hits.len() <= k);
        for w in res.hits.windows(2) {
            prop_assert!(
                w[0].match_count > w[1].match_count
                    || (w[0].match_count == w[1].match_count
                        && w[0].external_id < w[1].external_id),
                "not in rank order: {:?}", res.hits
            );
        }
        for h in &res.hits {
            prop_assert!(h.match_count > 0);
            prop_assert_eq!(h.match_count, exact[h.external_id as usize], "count not exact");
        }
        let included: Vec<u32> = res.hits.iter().map(|h| h.external_id as u32).collect();
        if res.hits.len() == k {
            if let Some(last) = res.hits.last() {
                for (c, &cnt) in exact.iter().enumerate() {
                    if cnt > 0 && !included.contains(&(c as u32)) {
                        prop_assert!(
                            last.match_count > cnt
                                || (last.match_count == cnt && (last.external_id as u32) < c as u32),
                            "excluded column {c} (count {cnt}) outranks the k-th hit {last:?}"
                        );
                    }
                }
            }
        } else {
            // Fewer than k hits: every positive column must be included.
            let positive = exact.iter().filter(|&&c| c > 0).count();
            prop_assert_eq!(res.hits.len(), positive);
        }
        let bigger = index.execute(&Query::topk(tau, k + 1), &query).unwrap();
        prop_assert_eq!(
            &res.hits[..],
            &bigger.hits[..res.hits.len().min(bigger.hits.len())],
            "topk({}) is not a prefix of topk({})", k, k + 1
        );
    }

    /// Threshold monotonicity: raising T (or shrinking τ) can only shrink
    /// the answer set, and every T-answer is a subset of the T = 1 answer.
    #[test]
    fn threshold_search_monotone_in_t_and_tau(seed in 0u64..400, t_lo in 0.1f64..0.5, dt in 0.0f64..0.5) {
        use pexeso_core::prelude::*;
        let dim = 8;
        let mut columns = ColumnSet::new(dim);
        for c in 0..8 {
            let vecs: Vec<Vec<f32>> = (0..10).map(|i| unit_vec(dim, seed * 97 + c * 29 + i)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns.add_column("t", &format!("c{c}"), c, refs).unwrap();
        }
        let mut query = VectorStore::new(dim);
        for i in 0..6 {
            query.push(&unit_vec(dim, seed * 11 + 500 + i)).unwrap();
        }
        let index = PexesoIndex::build(
            columns,
            Euclidean,
            IndexOptions { num_pivots: 3, levels: Some(3), ..Default::default() },
        ).unwrap();
        let tau = Tau::Ratio(0.3);
        let t_hi = (t_lo + dt).min(1.0);
        let ids = |r: &QueryResponse| r.hits.iter().map(|h| h.external_id).collect::<Vec<u64>>();
        let lo = ids(&index.execute(&Query::threshold(tau, JoinThreshold::Ratio(t_lo)), &query).unwrap());
        let hi = ids(&index.execute(&Query::threshold(tau, JoinThreshold::Ratio(t_hi)), &query).unwrap());
        prop_assert!(hi.iter().all(|c| lo.contains(c)), "T raised must not grow the answer set");
        let tight = ids(&index.execute(&Query::threshold(Tau::Ratio(0.1), JoinThreshold::Ratio(t_lo)), &query).unwrap());
        prop_assert!(tight.iter().all(|c| lo.contains(c)), "τ↓ grew the answer set");
    }

    /// Mapping then measuring max_coord never exceeds the metric bound for
    /// unit vectors.
    #[test]
    fn mapping_respects_span(seed in 0u64..2000) {
        let dim = 12;
        let mut store = VectorStore::new(dim);
        for i in 0..20 {
            store.push(&unit_vec(dim, seed * 31 + i)).unwrap();
        }
        let pivots: Vec<Vec<f32>> = (0..4).map(|i| unit_vec(dim, seed * 57 + i)).collect();
        let mapped = MappedVectors::build(&store, &pivots, &Euclidean, None).unwrap();
        prop_assert!(mapped.max_coord() <= Euclidean.max_dist_unit(dim) + 1e-4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// A log-bucketed quantile estimate is conservative (at or above the
    /// exact order statistic) and never off by more than the width of the
    /// bucket the exact value lands in.
    #[test]
    fn hist_quantile_within_one_bucket_of_exact(
        values in proptest::collection::vec(0u64..5_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = AtomicHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut values = values;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let est = snap.quantile(q);
        prop_assert!(est >= exact, "estimate {est} below exact {exact}");
        let i = bucket_index(exact);
        prop_assert!(
            est - exact <= bucket_width(i),
            "estimate {est} more than one bucket ({}) above exact {exact}",
            bucket_width(i)
        );
    }

    /// Merging snapshots is associative and order-independent: however
    /// three shards fold, every bucket, the count, and the sum agree.
    #[test]
    fn hist_merge_is_associative(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
        c in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let snap = |vals: &[u64]| {
            let h = AtomicHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right = sb.clone();
        right.merge(&sc);
        let mut outer = sa.clone();
        outer.merge(&right);
        prop_assert_eq!(&left, &outer);
        // c ⊕ b ⊕ a — commutes too.
        let mut rev = sc;
        rev.merge(&sb);
        rev.merge(&sa);
        prop_assert_eq!(&left, &rev);
        prop_assert_eq!(left.count, (a.len() + b.len() + c.len()) as u64);
    }

    /// Values beyond the top bucket's range saturate into it instead of
    /// panicking or wrapping, and the quantile then reports the top
    /// bucket's bound.
    #[test]
    fn hist_saturates_at_top_bucket(v in 0u64..=u64::MAX) {
        let top = bucket_upper_bound(NUM_BUCKETS - 1);
        let h = AtomicHistogram::new();
        h.record(v);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, 1);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), 1);
        prop_assert!(bucket_index(v) < NUM_BUCKETS);
        if v >= top {
            prop_assert_eq!(bucket_index(v), NUM_BUCKETS - 1, "must clamp to the last bucket");
            prop_assert_eq!(snap.quantile(1.0), top);
        } else {
            prop_assert!(snap.quantile(1.0) >= v);
        }
    }
}
