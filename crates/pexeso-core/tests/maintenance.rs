//! Index maintenance (Section III-E) and top-k search: appending a column
//! must be indistinguishable from a fresh build; deletion must hide
//! columns; compaction must preserve the live answer set.

use pexeso_core::prelude::*;

fn unit_vec(dim: usize, seed: u64) -> Vec<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

fn column_vecs(dim: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..len)
        .map(|i| unit_vec(dim, seed * 1000 + i as u64))
        .collect()
}

fn make_columns(dim: usize, n_cols: usize, len: usize, seed: u64) -> ColumnSet {
    let mut cs = ColumnSet::new(dim);
    for c in 0..n_cols {
        let vecs = column_vecs(dim, len, seed + c as u64);
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        cs.add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    cs
}

fn query(dim: usize, n: usize, seed: u64) -> VectorStore {
    let mut q = VectorStore::new(dim);
    for i in 0..n {
        q.push(&unit_vec(dim, seed * 77 + i as u64)).unwrap();
    }
    q
}

/// External ids equal insertion order in these fixtures, so the unified
/// external-id ordering matches the oracle's column-id ordering.
fn ids(hits: &[GlobalHit]) -> Vec<u32> {
    hits.iter().map(|h| h.external_id as u32).collect()
}

#[test]
fn append_equals_fresh_build() {
    let dim = 10;
    // Index built over 8 columns, then 4 appended online.
    let base = make_columns(dim, 8, 15, 100);
    let mut index = PexesoIndex::build(base, Euclidean, IndexOptions::default()).unwrap();
    let mut full = make_columns(dim, 8, 15, 100);
    for c in 8..12u64 {
        let vecs = column_vecs(dim, 15, 100 + c);
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        index
            .append_column("t", &format!("c{c}"), c, refs.clone())
            .unwrap();
        full.add_column("t", &format!("c{c}"), c, refs).unwrap();
    }
    let q = query(dim, 8, 5);
    for tau in [Tau::Ratio(0.05), Tau::Ratio(0.2)] {
        for t in [JoinThreshold::Ratio(0.3), JoinThreshold::Count(1)] {
            let (expected, _) = naive_search(&full, &Euclidean, &q, tau, t, false).unwrap();
            let got = index.execute(&Query::threshold(tau, t), &q).unwrap();
            assert_eq!(
                ids(&got.hits),
                expected.iter().map(|h| h.column.0).collect::<Vec<_>>(),
                "tau={tau:?} t={t:?}"
            );
        }
    }
}

#[test]
fn append_then_topk_sees_new_column() {
    let dim = 8;
    let base = make_columns(dim, 4, 10, 7);
    let mut index = PexesoIndex::build(base, Euclidean, IndexOptions::default()).unwrap();
    // Append a column identical to the query: must rank first in top-k.
    let q = query(dim, 6, 9);
    let q_vecs: Vec<&[f32]> = (0..q.len()).map(|i| q.get_raw(i)).collect();
    let new_col = index.append_column("t", "mirror", 99, q_vecs).unwrap();
    assert_eq!(new_col, ColumnId(4));
    let result = index
        .execute(&Query::topk(Tau::Ratio(0.02), 3), &q)
        .unwrap();
    assert_eq!(result.hits[0].external_id, 99);
    assert_eq!(result.hits[0].match_count as usize, q.len());
}

#[test]
fn removed_columns_disappear_and_compact_preserves() {
    let dim = 10;
    let columns = make_columns(dim, 10, 12, 50);
    let mut index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
    let q = query(dim, 6, 3);
    let tau = Tau::Ratio(0.3);
    let t = JoinThreshold::Count(1);

    let before = index.execute(&Query::threshold(tau, t), &q).unwrap();
    assert!(!before.hits.is_empty(), "need hits to delete");
    let victim = ColumnId(before.hits[0].external_id as u32);
    index.remove_column(victim).unwrap();
    assert!(index.is_deleted(victim));
    assert_eq!(index.live_columns(), 9);

    let after = index.execute(&Query::threshold(tau, t), &q).unwrap();
    assert!(
        !ids(&after.hits).contains(&victim.0),
        "deleted column still returned"
    );
    let expected_rest: Vec<u32> = ids(&before.hits)
        .into_iter()
        .filter(|&c| c != victim.0)
        .collect();
    assert_eq!(ids(&after.hits), expected_rest);

    // Compaction rebuilds without the victim; results on live columns
    // (identified by external id) are unchanged.
    let externals_before: Vec<u64> = after.hits.iter().map(|h| h.external_id).collect();
    let compacted = index.compact().unwrap();
    assert_eq!(compacted.columns().n_columns(), 9);
    let res = compacted.execute(&Query::threshold(tau, t), &q).unwrap();
    let externals_after: Vec<u64> = res.hits.iter().map(|h| h.external_id).collect();
    assert_eq!(externals_after, externals_before);
}

#[test]
fn topk_matches_naive_ranking() {
    let dim = 10;
    let columns = make_columns(dim, 12, 14, 11);
    let index = PexesoIndex::build(columns.clone(), Euclidean, IndexOptions::default()).unwrap();
    let q = query(dim, 8, 13);
    let tau = Tau::Ratio(0.25);
    let tau_abs = tau.resolve(&Euclidean, dim).unwrap();

    // Naive exact counts.
    let mut counts: Vec<(u32, u32)> = columns
        .columns()
        .iter()
        .enumerate()
        .map(|(c, meta)| {
            let count = (0..q.len())
                .filter(|&qi| {
                    meta.vector_range().any(|v| {
                        Euclidean.dist(q.get_raw(qi), columns.store().get_raw(v as usize))
                            <= tau_abs
                    })
                })
                .count() as u32;
            (c as u32, count)
        })
        .filter(|&(_, count)| count > 0)
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    for k in [1usize, 3, 5, 100] {
        let result = index.execute(&Query::topk(tau, k), &q).unwrap();
        let expected: Vec<(u32, u32)> = counts.iter().copied().take(k).collect();
        let got: Vec<(u32, u32)> = result
            .hits
            .iter()
            .map(|h| (h.external_id as u32, h.match_count))
            .collect();
        assert_eq!(got, expected, "k={k}");
    }
}

#[test]
fn topk_edge_inputs() {
    let columns = make_columns(8, 3, 5, 1);
    let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
    let q = query(8, 3, 2);
    // k = 0 is a valid request for an empty ranking, not an error.
    let r = index.execute(&Query::topk(Tau::Ratio(0.1), 0), &q).unwrap();
    assert!(r.hits.is_empty() && r.exact());
    let empty = VectorStore::new(8);
    assert!(index
        .execute(&Query::topk(Tau::Ratio(0.1), 3), &empty)
        .is_err());
}

#[test]
fn remove_out_of_range_errors() {
    let columns = make_columns(8, 3, 5, 2);
    let mut index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
    assert!(index.remove_column(ColumnId(99)).is_err());
}

#[test]
fn compact_without_deletions_is_identity() {
    let columns = make_columns(8, 4, 6, 3);
    let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
    let q = query(8, 4, 4);
    let probe = Query::threshold(Tau::Ratio(0.2), JoinThreshold::Count(1));
    let before = index.execute(&probe, &q).unwrap();
    let compacted = index.compact().unwrap();
    let after = compacted.execute(&probe, &q).unwrap();
    assert_eq!(ids(&before.hits), ids(&after.hits));
}

#[test]
fn angular_metric_end_to_end() {
    use pexeso_core::metric::Angular;
    let dim = 10;
    let columns = make_columns(dim, 8, 10, 21);
    let q = query(dim, 5, 22);
    let tau = Tau::Ratio(0.05); // 5 % of π
    let t = JoinThreshold::Count(1);
    let (expected, _) = naive_search(&columns, &Angular, &q, tau, t, false).unwrap();
    let index = PexesoIndex::build(columns, Angular, IndexOptions::default()).unwrap();
    let got = index.execute(&Query::threshold(tau, t), &q).unwrap();
    assert_eq!(
        ids(&got.hits),
        expected.iter().map(|h| h.column.0).collect::<Vec<_>>()
    );
}
