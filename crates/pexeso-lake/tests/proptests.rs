//! Property tests for the lake substrate: CSV round-trips, generator
//! invariants, type inference stability.

use proptest::prelude::*;

use pexeso_lake::csv;
use pexeso_lake::generator::{GeneratorConfig, SyntheticLake};
use pexeso_lake::table::Table;
use pexeso_lake::types::{infer_column, ColumnType};

/// Arbitrary field content including the characters that require quoting.
fn field_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\n\"]{0,24}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any rectangular grid of arbitrary strings survives a CSV round-trip.
    #[test]
    fn csv_roundtrip(rows in proptest::collection::vec(
        proptest::collection::vec(field_strategy(), 1..6),
        1..12,
    )) {
        // Make rectangular: truncate every row to the shortest width.
        let width = rows.iter().map(|r| r.len()).min().unwrap();
        let rect: Vec<Vec<String>> = rows.into_iter().map(|mut r| { r.truncate(width); r }).collect();
        let text = csv::write(&rect);
        let parsed = csv::parse(&text).unwrap();
        // Rows that are entirely empty single fields serialise to blank
        // lines, which the reader (correctly) skips; compare modulo those.
        let expected: Vec<Vec<String>> = rect
            .into_iter()
            .filter(|r| !(r.len() == 1 && r[0].is_empty()))
            .collect();
        prop_assert_eq!(parsed, expected);
    }

    /// Table round-trip through CSV preserves headers and cells.
    #[test]
    fn table_roundtrip(
        n_rows in 1usize..10,
        n_cols in 1usize..5,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let headers: Vec<String> = (0..n_cols).map(|c| format!("col_{c}")).collect();
        let mut t = Table::new("prop", headers);
        for _ in 0..n_rows {
            let row: Vec<String> = (0..n_cols)
                .map(|_| format!("v{}", rng.gen_range(0..1000)))
                .collect();
            t.push_row(row);
        }
        let text = csv::write_table(&t);
        let back = csv::read_table("prop", &text).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            prop_assert_eq!(back.row(r), t.row(r));
        }
    }

    /// Generator invariants hold across seeds: row/entity alignment,
    /// lexicon coverage, domain closure.
    #[test]
    fn generator_invariants(seed in 0u64..500) {
        let lake = SyntheticLake::generate(GeneratorConfig::tiny(seed));
        for gt in &lake.tables {
            prop_assert_eq!(gt.entities.len(), gt.table.n_rows());
            for &e in &gt.entities {
                let entity = &lake.vocab.entities[e];
                prop_assert_eq!(entity.domain, gt.domain);
                // Every surface form is registered in the lexicon.
                prop_assert!(lake.lexicon.lookup(&entity.surfaces[0]).is_some());
            }
        }
    }

    /// True joinability is symmetric in entity containment terms: a query
    /// built from a table's own entity multiset has joinability 1 to it.
    #[test]
    fn self_joinability_is_one(seed in 0u64..200) {
        let lake = SyntheticLake::generate(GeneratorConfig::tiny(seed));
        let gt = &lake.tables[0];
        prop_assert!((SyntheticLake::true_joinability(gt, gt) - 1.0).abs() < 1e-12);
    }

    /// Numeric strings infer numeric types; appending a word demotes to
    /// text.
    #[test]
    fn type_inference_monotone(values in proptest::collection::vec(0i64..100_000, 1..20)) {
        let mut col: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        prop_assert_eq!(infer_column(&col, 100), ColumnType::Integer);
        col.push("banana".to_string());
        prop_assert_eq!(infer_column(&col, 100), ColumnType::Text);
    }
}
