//! Minimal, dependency-free CSV reader/writer.
//!
//! Supports the RFC-4180 dialect the paper's corpora ship in: comma
//! separation, `"`-quoted fields with `""` escapes, embedded commas and
//! newlines inside quoted fields, and both LF and CRLF record terminators.
//! Implemented from scratch because no CSV crate is on the approved offline
//! dependency list.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::table::Table;

/// Errors produced while parsing CSV input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was still open when the input ended.
    UnterminatedQuote { line: usize },
    /// A closing quote was followed by a character other than a separator,
    /// record terminator, or another quote.
    InvalidQuoteEscape { line: usize },
    /// Records have inconsistent field counts.
    RaggedRow {
        row: usize,
        expected: usize,
        got: usize,
    },
    /// Underlying I/O failure (message-only to stay `Clone`/`Eq`).
    Io(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting near line {line}")
            }
            CsvError::InvalidQuoteEscape { line } => {
                write!(f, "invalid character after closing quote near line {line}")
            }
            CsvError::RaggedRow { row, expected, got } => {
                write!(f, "row {row} has {got} fields, expected {expected}")
            }
            CsvError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parse CSV text into rows of fields. Accepts a trailing newline; an empty
/// input yields no rows. Rows may be ragged (caller decides whether to care;
/// [`read_table`] enforces rectangularity).
pub fn parse(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    // True when the current field started with a quote and we are inside it.
    let mut in_quotes = false;
    // True when anything was written to `field`/`row` for the current record.
    let mut record_dirty = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        // Next char must be sep/terminator/EOF.
                        match chars.peek() {
                            None | Some(',') | Some('\n') | Some('\r') => {}
                            Some(_) => return Err(CsvError::InvalidQuoteEscape { line }),
                        }
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() => {
                in_quotes = true;
                record_dirty = true;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                record_dirty = true;
            }
            '\r' => {
                // Swallow the LF of a CRLF pair if present; bare CR also
                // terminates a record (old-Mac style).
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                line += 1;
                if record_dirty || !field.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    record_dirty = false;
                }
            }
            '\n' => {
                line += 1;
                if record_dirty || !field.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    record_dirty = false;
                }
            }
            _ => {
                field.push(c);
                record_dirty = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line });
    }
    if record_dirty || !field.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Quote a field if it contains separators, quotes, or newlines.
fn escape_field(field: &str, out: &mut String) {
    let needs_quoting = field.contains([',', '"', '\n', '\r']);
    if needs_quoting {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serialise rows to CSV text with `\n` terminators.
pub fn write(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, field) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_field(field, &mut out);
        }
        out.push('\n');
    }
    out
}

/// Parse CSV text into a [`Table`]: first record is the header, remaining
/// records are data and must all have the header's width.
pub fn read_table(name: &str, input: &str) -> Result<Table, CsvError> {
    let mut rows = parse(input)?;
    if rows.is_empty() {
        return Ok(Table::new(name, Vec::<String>::new()));
    }
    let headers = rows.remove(0);
    let width = headers.len();
    let mut table = Table::new(name, headers);
    for (i, row) in rows.into_iter().enumerate() {
        if row.len() != width {
            return Err(CsvError::RaggedRow {
                row: i + 2,
                expected: width,
                got: row.len(),
            });
        }
        table.push_row(row);
    }
    Ok(table)
}

/// Serialise a [`Table`] (header + rows) to CSV text.
pub fn write_table(table: &Table) -> String {
    let mut rows = Vec::with_capacity(table.n_rows() + 1);
    rows.push(table.headers().to_vec());
    for r in 0..table.n_rows() {
        rows.push(table.row(r).into_iter().map(str::to_string).collect());
    }
    write(&rows)
}

/// Load a table from a CSV file on disk.
pub fn read_table_file(path: &Path) -> Result<Table, CsvError> {
    let text = fs::read_to_string(path).map_err(|e| CsvError::Io(e.to_string()))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "table".to_string());
    read_table(&name, &text)
}

/// Write a table to a CSV file on disk.
pub fn write_table_file(table: &Table, path: &Path) -> Result<(), CsvError> {
    let mut f = fs::File::create(path).map_err(|e| CsvError::Io(e.to_string()))?;
    f.write_all(write_table(table).as_bytes())
        .map_err(|e| CsvError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_rows() {
        let rows = parse("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn no_trailing_newline() {
        let rows = parse("a,b\n1,2").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn quoted_field_with_comma_and_newline() {
        let rows = parse("name,desc\n\"Smith, John\",\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1][0], "Smith, John");
        assert_eq!(rows[1][1], "line1\nline2");
    }

    #[test]
    fn escaped_quotes() {
        let rows = parse("\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rows[0][0], "say \"hi\"");
    }

    #[test]
    fn crlf_records() {
        let rows = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn empty_fields_preserved() {
        let rows = parse("a,,c\n,,\n").unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(matches!(
            parse("\"abc"),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn invalid_quote_escape_is_error() {
        assert!(matches!(
            parse("\"abc\"x,y"),
            Err(CsvError::InvalidQuoteEscape { .. })
        ));
    }

    #[test]
    fn empty_input() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("\n").unwrap().is_empty());
    }

    #[test]
    fn roundtrip_with_special_chars() {
        let rows = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with \"quote\"".to_string(), "multi\nline".to_string()],
        ];
        let text = write(&rows);
        assert_eq!(parse(&text).unwrap(), rows);
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", vec!["k", "v"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["b,x".into(), "2".into()]);
        let text = write_table(&t);
        let t2 = read_table("demo", &text).unwrap();
        assert_eq!(t2.n_rows(), 2);
        assert_eq!(t2.cell(1, 0), "b,x");
    }

    #[test]
    fn ragged_rows_rejected_by_read_table() {
        let err = read_table("x", "a,b\n1\n").unwrap_err();
        assert!(matches!(
            err,
            CsvError::RaggedRow {
                row: 2,
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pexeso_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut t = Table::new("t", vec!["a"]);
        t.push_row(vec!["hello".into()]);
        write_table_file(&t, &path).unwrap();
        let t2 = read_table_file(&path).unwrap();
        assert_eq!(t2.cell(0, 0), "hello");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_messages() {
        let e = CsvError::RaggedRow {
            row: 3,
            expected: 2,
            got: 5,
        };
        assert!(e.to_string().contains("row 3"));
        assert!(CsvError::Io("boom".into()).to_string().contains("boom"));
    }
}
