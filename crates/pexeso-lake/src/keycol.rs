//! Key-column detection.
//!
//! The WDC corpus ships key-column annotations; for corpora without them the
//! paper runs SATO (a trained semantic type detector) and keeps columns whose
//! type can serve as a join key. SATO is unavailable offline, so we use the
//! heuristic that captures what the pipeline actually needs: a join-key
//! candidate is an **embeddable (text/date) column with high distinctness
//! and few missing values**. On generated lakes this recovers the planted
//! key column; on real CSVs it picks the natural-key-looking column.

use crate::table::Table;
use crate::types::{infer_column, ColumnType};

/// Scoring weights / cutoffs for key-column detection.
#[derive(Debug, Clone)]
pub struct KeyColumnConfig {
    /// Values sampled per column for type inference.
    pub type_sample: usize,
    /// Minimum fraction of non-empty cells.
    pub min_non_empty: f64,
    /// Minimum fraction of distinct values among non-empty cells.
    pub min_distinct: f64,
    /// Minimum rows for a table to be considered at all (the paper drops
    /// tables with fewer than five rows).
    pub min_rows: usize,
}

impl Default for KeyColumnConfig {
    fn default() -> Self {
        Self {
            type_sample: 256,
            min_non_empty: 0.5,
            min_distinct: 0.3,
            min_rows: 5,
        }
    }
}

/// A column considered joinable-key material, with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyCandidate {
    pub column: usize,
    pub column_type: ColumnType,
    pub score: f64,
}

/// Score every eligible column of `table`, best first.
pub fn key_candidates(table: &Table, cfg: &KeyColumnConfig) -> Vec<KeyCandidate> {
    if table.n_rows() < cfg.min_rows {
        return Vec::new();
    }
    let mut out = Vec::new();
    for c in 0..table.n_cols() {
        let ty = infer_column(table.column(c), cfg.type_sample);
        if !ty.is_embeddable() {
            continue;
        }
        let non_empty = table.non_empty_ratio(c);
        let distinct = table.distinct_ratio(c);
        if non_empty < cfg.min_non_empty || distinct < cfg.min_distinct {
            continue;
        }
        // Distinctness dominates; completeness breaks ties; leftmost
        // position gets a nudge (keys usually lead in published tables).
        let position_bonus = 0.05 * (1.0 - c as f64 / table.n_cols().max(1) as f64);
        let score = distinct * 0.7 + non_empty * 0.25 + position_bonus;
        out.push(KeyCandidate {
            column: c,
            column_type: ty,
            score,
        });
    }
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
    out
}

/// The single best key column, if the table has one.
pub fn detect_key_column(table: &Table, cfg: &KeyColumnConfig) -> Option<usize> {
    key_candidates(table, cfg).first().map(|k| k.column)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game_table() -> Table {
        Table::from_rows(
            "games",
            vec!["Name", "Release", "Publisher"],
            (0..10)
                .map(|i| {
                    vec![
                        format!("Game Title {i}"),
                        format!("{}", 1990 + i),
                        if i % 2 == 0 {
                            "Nintendo".to_string()
                        } else {
                            "Sega".to_string()
                        },
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn picks_distinct_text_column() {
        let t = game_table();
        assert_eq!(detect_key_column(&t, &KeyColumnConfig::default()), Some(0));
    }

    #[test]
    fn numeric_columns_excluded() {
        let t = game_table();
        let cands = key_candidates(&t, &KeyColumnConfig::default());
        assert!(
            cands.iter().all(|k| k.column != 1),
            "release year is numeric"
        );
    }

    #[test]
    fn low_distinct_column_loses() {
        let t = game_table();
        let cands = key_candidates(&t, &KeyColumnConfig::default());
        // Publisher has 2 distinct values over 10 rows -> ratio 0.2 < 0.3.
        assert!(cands.iter().all(|k| k.column != 2));
    }

    #[test]
    fn tiny_tables_skipped() {
        let t = Table::from_rows("tiny", vec!["a"], vec![vec!["x".into()], vec!["y".into()]]);
        assert_eq!(detect_key_column(&t, &KeyColumnConfig::default()), None);
    }

    #[test]
    fn mostly_empty_column_skipped() {
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![
                if i < 2 {
                    format!("v{i}")
                } else {
                    String::new()
                },
                format!("name {i}"),
            ]);
        }
        let t = Table::from_rows("sparse", vec!["sparse", "full"], rows);
        assert_eq!(detect_key_column(&t, &KeyColumnConfig::default()), Some(1));
    }

    #[test]
    fn date_columns_are_candidates() {
        let rows: Vec<Vec<String>> = (1..=9)
            .map(|i| vec![format!("2020-03-0{i}"), format!("{i}")])
            .collect();
        let t = Table::from_rows("dates", vec!["day", "count"], rows);
        let cands = key_candidates(&t, &KeyColumnConfig::default());
        assert_eq!(cands[0].column, 0);
        assert_eq!(cands[0].column_type, ColumnType::Date);
    }
}
