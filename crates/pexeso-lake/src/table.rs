//! Column-major table model.
//!
//! Tables in data lakes are wide, sparse, and read column-at-a-time by the
//! discovery pipeline, so values are stored per column. Cells are plain
//! strings at this layer; typing is inferred on demand by [`crate::types`].

/// A named table: headers plus column-major string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    /// `columns[c][r]` is the cell at row `r`, column `c`. All columns have
    /// equal length (enforced by the mutation API).
    columns: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table with the given header names.
    pub fn new(name: impl Into<String>, headers: Vec<impl Into<String>>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let columns = headers.iter().map(|_| Vec::new()).collect();
        Self {
            name: name.into(),
            headers,
            columns,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    pub fn n_cols(&self) -> usize {
        self.headers.len()
    }

    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Append a row. Panics if the width differs from the header width —
    /// rectangularity is an invariant, not a recoverable condition.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.n_cols(),
            "row width {} != table width {}",
            row.len(),
            self.n_cols()
        );
        for (col, cell) in self.columns.iter_mut().zip(row) {
            col.push(cell);
        }
    }

    /// Borrow one column's cells.
    pub fn column(&self, c: usize) -> &[String] {
        &self.columns[c]
    }

    /// Index of the column with the given header, if any.
    pub fn column_index(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }

    /// Borrow a single cell.
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.columns[c][r]
    }

    /// Materialise one row as borrowed cells.
    pub fn row(&self, r: usize) -> Vec<&str> {
        self.columns.iter().map(|c| c[r].as_str()).collect()
    }

    /// Fraction of non-empty cells in a column.
    pub fn non_empty_ratio(&self, c: usize) -> f64 {
        let col = &self.columns[c];
        if col.is_empty() {
            return 0.0;
        }
        let filled = col.iter().filter(|v| !v.trim().is_empty()).count();
        filled as f64 / col.len() as f64
    }

    /// Fraction of distinct (non-empty, trimmed) values in a column.
    pub fn distinct_ratio(&self, c: usize) -> f64 {
        let col = &self.columns[c];
        if col.is_empty() {
            return 0.0;
        }
        let mut seen = std::collections::HashSet::new();
        let mut non_empty = 0usize;
        for v in col {
            let t = v.trim();
            if !t.is_empty() {
                non_empty += 1;
                seen.insert(t);
            }
        }
        if non_empty == 0 {
            0.0
        } else {
            seen.len() as f64 / non_empty as f64
        }
    }

    /// Build a table from row-major data (convenience for tests/generators).
    pub fn from_rows(
        name: impl Into<String>,
        headers: Vec<impl Into<String>>,
        rows: Vec<Vec<String>>,
    ) -> Self {
        let mut t = Table::new(name, headers);
        for row in rows {
            t.push_row(row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            "people",
            vec!["name", "age", "city"],
            vec![
                vec!["Alice".into(), "30".into(), "Oslo".into()],
                vec!["Bob".into(), "31".into(), "Oslo".into()],
                vec!["Carol".into(), "".into(), "Bergen".into()],
            ],
        )
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.name(), "people");
    }

    #[test]
    fn cells_and_rows() {
        let t = sample();
        assert_eq!(t.cell(2, 0), "Carol");
        assert_eq!(t.row(0), vec!["Alice", "30", "Oslo"]);
        assert_eq!(t.column(2), &["Oslo", "Oslo", "Bergen"]);
    }

    #[test]
    fn column_index_lookup() {
        let t = sample();
        assert_eq!(t.column_index("age"), Some(1));
        assert_eq!(t.column_index("missing"), None);
    }

    #[test]
    fn distinct_and_non_empty_ratios() {
        let t = sample();
        assert!((t.distinct_ratio(0) - 1.0).abs() < 1e-9);
        assert!((t.distinct_ratio(2) - 2.0 / 3.0).abs() < 1e-9);
        assert!((t.non_empty_ratio(1) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_table_ratios() {
        let t = Table::new("empty", vec!["a"]);
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.distinct_ratio(0), 0.0);
        assert_eq!(t.non_empty_ratio(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_push_panics() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }
}
