//! # pexeso-lake — data-lake substrate for PEXESO
//!
//! The paper evaluates on the Canadian Open Data corpus (OPEN) and the WDC
//! Web Table Corpus (SWDC/LWDC), neither of which is redistributable here.
//! This crate supplies everything the framework needs from a data lake:
//!
//! * a from-scratch [`csv`] reader/writer (RFC-4180-ish) for real ingestion,
//! * a column-major [`table::Table`] model with [`types`] inference and a
//!   [`keycol`] key-column detector (stand-in for the SATO model the paper
//!   uses to pick join-key candidates),
//! * controlled [`noise`] channels (misspellings, abbreviations, case), and
//! * a [`generator`] that synthesises entire lakes with **exact ground-truth
//!   joinability labels**, replacing the paper's human labelling step.
//!
//! The generator registers every entity's synonym set in a
//! [`pexeso_embed::Lexicon`], which plays the role of the semantic knowledge
//! a pre-trained embedding model would contribute.

pub mod csv;
pub mod generator;
pub mod keycol;
pub mod noise;
pub mod table;
pub mod types;

pub use generator::{GenTable, GeneratorConfig, SyntheticLake};
pub use table::Table;
pub use types::ColumnType;
