//! Synthetic data-lake generator with exact ground truth.
//!
//! Replaces the paper's corpora + human labelling. Each generated lake is
//! built over a **vocabulary of entities** partitioned into domains. An
//! entity owns several surface forms (synonyms) — all registered in a shared
//! [`Lexicon`] — plus latent attributes used by the ML-task experiments.
//! Every rendered cell records which entity produced it, so the true
//! joinability between any two columns is computable exactly:
//!
//! ```text
//! jn_true(Q, S) = |{ rows of Q whose entity also occurs in S }| / |Q|
//! ```
//!
//! Profiles mirror the shapes of the paper's datasets (Table III): OPEN has
//! few, long columns; WDC has very many, short columns.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pexeso_embed::Lexicon;

use crate::noise::NoiseModel;
use crate::table::Table;

/// Index of an entity in the [`Vocabulary`].
pub type EntityIdx = usize;

/// One real-world thing that can appear in key columns under several names.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Surface forms; index 0 is canonical.
    pub surfaces: Vec<String>,
    /// Domain this entity belongs to (tables draw keys from one domain).
    pub domain: usize,
    /// Latent class label, the signal behind classification tasks.
    pub latent_class: u32,
    /// Latent numeric value, the signal behind regression tasks.
    pub latent_value: f32,
}

/// The generated entity vocabulary.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    pub entities: Vec<Entity>,
    /// Entity indices grouped by domain.
    pub by_domain: Vec<Vec<EntityIdx>>,
}

/// A generated lake table together with its ground-truth annotations.
#[derive(Debug, Clone)]
pub struct GenTable {
    pub table: Table,
    /// Index of the key column within `table`.
    pub key_col: usize,
    /// Per-row entity behind the key cell.
    pub entities: Vec<EntityIdx>,
    /// Domain the keys were drawn from.
    pub domain: usize,
}

impl GenTable {
    /// The key column's rendered string values.
    pub fn key_values(&self) -> &[String] {
        self.table.column(self.key_col)
    }
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    pub seed: u64,
    /// Number of entity domains (tables join only within a domain).
    pub num_domains: usize,
    pub entities_per_domain: usize,
    /// Inclusive range of synonym surface forms per entity.
    pub synonyms_per_entity: (usize, usize),
    pub num_tables: usize,
    /// Inclusive range of rows per lake table.
    pub rows_per_table: (usize, usize),
    /// Probability a cell renders a non-canonical surface form.
    pub synonym_rate: f64,
    /// Character/abbreviation/case noise applied to rendered cells.
    pub noise: NoiseModel,
    /// Numeric attribute columns per lake table (carry ML signal).
    pub numeric_attrs: usize,
    /// Number of latent classes for classification tasks.
    pub num_classes: u32,
    /// Probability an entity's canonical name is a near-variant of another
    /// entity's name in the same domain. Confusables are what give string
    /// similarity joins (and occasionally the fuzzy lexicon) their false
    /// positives — the source of sub-1.0 precision in Table IV.
    pub confusable_rate: f64,
    /// Probability a canonical surface carries a dictionary suffix word
    /// ("Street", "Corporation", …) that the abbreviation noise channel can
    /// shorten and the expander can restore.
    pub suffix_rate: f64,
}

impl GeneratorConfig {
    /// OPEN-like profile (Table III): few tables, long columns
    /// (avg ≈ 800 rows in the paper). `scale` multiplies the table count.
    ///
    /// Entity pools are sized so that a table covers 20–80 % of its domain:
    /// that spreads query↔table entity overlap across the mid-range, which
    /// is what makes the joinability threshold discriminate between
    /// methods (a bimodal overlap distribution would let every method
    /// score perfectly).
    pub fn open_like(scale: f64, seed: u64) -> Self {
        Self {
            seed,
            num_domains: (8.0 * scale).ceil().max(2.0) as usize,
            entities_per_domain: 600,
            synonyms_per_entity: (2, 4),
            num_tables: (150.0 * scale).ceil().max(6.0) as usize,
            rows_per_table: (100, 500),
            synonym_rate: 0.1,
            noise: NoiseModel {
                misspell_rate: 0.03,
                abbrev_rate: 0.03,
                case_rate: 0.03,
            },
            numeric_attrs: 2,
            num_classes: 13,
            confusable_rate: 0.1,
            suffix_rate: 0.25,
        }
    }

    /// WDC-like profile (Table III): many tables, short columns
    /// (avg ≈ 17 rows in the paper).
    pub fn wdc_like(scale: f64, seed: u64) -> Self {
        Self {
            seed,
            num_domains: (30.0 * scale).ceil().max(2.0) as usize,
            entities_per_domain: 30,
            synonyms_per_entity: (2, 4),
            num_tables: (1200.0 * scale).ceil().max(10.0) as usize,
            rows_per_table: (8, 30),
            synonym_rate: 0.1,
            noise: NoiseModel {
                misspell_rate: 0.03,
                abbrev_rate: 0.03,
                case_rate: 0.03,
            },
            numeric_attrs: 2,
            num_classes: 39,
            confusable_rate: 0.1,
            suffix_rate: 0.25,
        }
    }

    /// A tiny profile for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            num_domains: 2,
            entities_per_domain: 30,
            synonyms_per_entity: (1, 2),
            num_tables: 8,
            rows_per_table: (10, 20),
            synonym_rate: 0.3,
            noise: NoiseModel::default(),
            numeric_attrs: 1,
            num_classes: 3,
            confusable_rate: 0.05,
            suffix_rate: 0.2,
        }
    }
}

/// A fully generated lake: vocabulary, lexicon, and annotated tables.
#[derive(Debug, Clone)]
pub struct SyntheticLake {
    pub config: GeneratorConfig,
    pub vocab: Vocabulary,
    pub lexicon: Lexicon,
    pub tables: Vec<GenTable>,
}

/// Syllable-based pronounceable word generator; produces distinct-looking
/// vocabulary without any external word list.
fn random_word(rng: &mut StdRng) -> String {
    const ONSETS: &[&str] = &[
        "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "kl", "l", "m", "n",
        "p", "pr", "qu", "r", "s", "sh", "st", "t", "tr", "v", "w", "z",
    ];
    const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
    const CODAS: &[&str] = &["", "n", "r", "s", "l", "m", "rd", "nt", "x", "ck"];
    let syllables = rng.gen_range(2..=4);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        w.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
        if rng.gen_bool(0.4) {
            w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        }
    }
    w
}

/// Dictionary long-forms the abbreviation noise channel knows how to
/// shorten (and the expander how to restore).
const SUFFIX_WORDS: &[&str] = &[
    "Street",
    "Avenue",
    "Road",
    "Corporation",
    "Incorporated",
    "Company",
    "Limited",
    "International",
];

fn title_case(w: &str) -> String {
    let mut cs = w.chars();
    match cs.next() {
        Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

/// Title-cased multi-word surface form, optionally with a dictionary
/// suffix.
fn random_surface(rng: &mut StdRng, suffix_rate: f64) -> String {
    let words = rng.gen_range(1..=3);
    let mut surface = (0..words)
        .map(|_| title_case(&random_word(rng)))
        .collect::<Vec<_>>()
        .join(" ");
    if rng.gen_bool(suffix_rate) {
        surface.push(' ');
        surface.push_str(SUFFIX_WORDS[rng.gen_range(0..SUFFIX_WORDS.len())]);
    }
    surface
}

/// A near-variant of `base`: either one character edit in a word or one
/// word swapped for a fresh one. The result is confusable with `base` for
/// string-similarity predicates while denoting a different entity.
fn confusable_variant(rng: &mut StdRng, base: &str) -> String {
    let mut words: Vec<String> = base.split(' ').map(str::to_string).collect();
    let i = rng.gen_range(0..words.len());
    if rng.gen_bool(0.5) && words[i].chars().count() >= 4 {
        words[i] = title_case(&crate::noise::misspell(rng, &words[i].to_lowercase()));
    } else {
        words[i] = title_case(&random_word(rng));
    }
    words.join(" ")
}

impl SyntheticLake {
    /// Generate a lake from the configuration. Deterministic in
    /// `config.seed`.
    pub fn generate(config: GeneratorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let vocab = Self::generate_vocabulary(&config, &mut rng);
        let mut lexicon = Lexicon::new();
        for e in &vocab.entities {
            lexicon.add_synonym_set(e.surfaces.iter().map(|s| s.as_str()));
        }
        let mut lake = Self {
            config,
            vocab,
            lexicon,
            tables: Vec::new(),
        };
        for t in 0..lake.config.num_tables {
            let gt = lake.generate_table(&mut rng, &format!("lake_table_{t:05}"));
            lake.tables.push(gt);
        }
        lake
    }

    fn generate_vocabulary(config: &GeneratorConfig, rng: &mut StdRng) -> Vocabulary {
        let mut taken: HashSet<String> = HashSet::new();
        let mut vocab = Vocabulary::default();
        for domain in 0..config.num_domains {
            let mut members: Vec<EntityIdx> = Vec::with_capacity(config.entities_per_domain);
            for e in 0..config.entities_per_domain {
                let n_forms =
                    rng.gen_range(config.synonyms_per_entity.0..=config.synonyms_per_entity.1);
                let mut surfaces = Vec::with_capacity(n_forms);
                // Confusable channel: derive the canonical from a previous
                // same-domain entity's canonical (Table IV's precision
                // pressure).
                if e > 0 && rng.gen_bool(config.confusable_rate) {
                    let prev = &vocab.entities[*members.last().expect("e > 0")];
                    for _ in 0..8 {
                        let s = confusable_variant(rng, &prev.surfaces[0]);
                        if taken.insert(s.to_lowercase()) {
                            surfaces.push(s);
                            break;
                        }
                    }
                }
                while surfaces.len() < n_forms {
                    let s = random_surface(rng, config.suffix_rate);
                    let key = s.to_lowercase();
                    if taken.insert(key) {
                        surfaces.push(s);
                    }
                }
                let latent_class = rng.gen_range(0..config.num_classes);
                // Latent value correlates with the class so both task kinds
                // share one planted signal.
                let latent_value = latent_class as f32 + rng.gen_range(-0.25f32..0.25f32);
                members.push(vocab.entities.len());
                vocab.entities.push(Entity {
                    surfaces,
                    domain,
                    latent_class,
                    latent_value,
                });
            }
            vocab.by_domain.push(members);
        }
        vocab
    }

    /// Render one key cell for `entity`, applying synonym choice + noise.
    fn render_key(&self, rng: &mut StdRng, entity: EntityIdx) -> String {
        let e = &self.vocab.entities[entity];
        let surface = if e.surfaces.len() > 1 && rng.gen_bool(self.config.synonym_rate) {
            &e.surfaces[rng.gen_range(1..e.surfaces.len())]
        } else {
            &e.surfaces[0]
        };
        self.config.noise.apply(rng, surface)
    }

    fn generate_table(&self, rng: &mut StdRng, name: &str) -> GenTable {
        let config = &self.config;
        let domain = rng.gen_range(0..config.num_domains);
        let rows = rng.gen_range(config.rows_per_table.0..=config.rows_per_table.1);
        let members = &self.vocab.by_domain[domain];

        // Sample entities mostly without replacement (keys are mostly
        // distinct) but allow duplicates once the domain is exhausted.
        let mut pool: Vec<EntityIdx> = members.clone();
        let mut entities = Vec::with_capacity(rows);
        for _ in 0..rows {
            if pool.is_empty() {
                entities.push(members[rng.gen_range(0..members.len())]);
            } else {
                let i = rng.gen_range(0..pool.len());
                entities.push(pool.swap_remove(i));
            }
        }

        let mut headers = vec!["name".to_string()];
        for a in 0..config.numeric_attrs {
            headers.push(format!("attr_{a}"));
        }
        headers.push("category".to_string());
        let mut table = Table::new(name, headers);

        // Table-specific affine transform of the latent value, so columns
        // from different tables are correlated but not identical features.
        let w: f32 = rng.gen_range(0.5..2.0);
        let b: f32 = rng.gen_range(-1.0..1.0);

        for &eidx in &entities {
            let e = &self.vocab.entities[eidx];
            let mut row = vec![self.render_key(rng, eidx)];
            for a in 0..config.numeric_attrs {
                let jitter: f32 = rng.gen_range(-0.2..0.2);
                let v = e.latent_value * w + b + jitter + a as f32 * 0.1;
                row.push(format!("{v:.3}"));
            }
            // Categorical attribute: the latent class with 10% label noise.
            let cls = if rng.gen_bool(0.1) {
                rng.gen_range(0..config.num_classes)
            } else {
                e.latent_class
            };
            row.push(format!("class_{cls}"));
            table.push_row(row);
        }
        GenTable {
            table,
            key_col: 0,
            entities,
            domain,
        }
    }

    /// Generate a query table: `rows` keys drawn from `domain`, rendered
    /// with this lake's noise channels. Deterministic in `seed`.
    pub fn make_query(&self, domain: usize, rows: usize, seed: u64) -> GenTable {
        assert!(domain < self.config.num_domains, "domain out of range");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let members = &self.vocab.by_domain[domain];
        let mut pool: Vec<EntityIdx> = members.clone();
        let mut entities = Vec::with_capacity(rows);
        for _ in 0..rows {
            if pool.is_empty() {
                entities.push(members[rng.gen_range(0..members.len())]);
            } else {
                let i = rng.gen_range(0..pool.len());
                entities.push(pool.swap_remove(i));
            }
        }
        let mut table = Table::new("query", vec!["name"]);
        for &eidx in &entities {
            table.push_row(vec![self.render_key(&mut rng, eidx)]);
        }
        GenTable {
            table,
            key_col: 0,
            entities,
            domain,
        }
    }

    /// Exact ground-truth joinability of `target`'s key column to `query`'s:
    /// fraction of query rows whose entity occurs in the target.
    pub fn true_joinability(query: &GenTable, target: &GenTable) -> f64 {
        if query.entities.is_empty() {
            return 0.0;
        }
        let target_set: HashSet<EntityIdx> = target.entities.iter().copied().collect();
        let hit = query
            .entities
            .iter()
            .filter(|e| target_set.contains(e))
            .count();
        hit as f64 / query.entities.len() as f64
    }

    /// Indices of lake tables truly joinable to `query` at threshold `t`.
    pub fn ground_truth(&self, query: &GenTable, t: f64) -> HashSet<usize> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, gt)| Self::true_joinability(query, gt) >= t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total number of key-column cells across the lake.
    pub fn total_key_cells(&self) -> usize {
        self.tables.iter().map(|t| t.entities.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticLake::generate(GeneratorConfig::tiny(7));
        let b = SyntheticLake::generate(GeneratorConfig::tiny(7));
        assert_eq!(a.tables.len(), b.tables.len());
        for (x, y) in a.tables.iter().zip(b.tables.iter()) {
            assert_eq!(x.table, y.table);
            assert_eq!(x.entities, y.entities);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticLake::generate(GeneratorConfig::tiny(1));
        let b = SyntheticLake::generate(GeneratorConfig::tiny(2));
        assert_ne!(a.tables[0].table, b.tables[0].table);
    }

    #[test]
    fn sizes_match_config() {
        let cfg = GeneratorConfig::tiny(3);
        let lake = SyntheticLake::generate(cfg.clone());
        assert_eq!(lake.tables.len(), cfg.num_tables);
        assert_eq!(lake.vocab.by_domain.len(), cfg.num_domains);
        assert_eq!(
            lake.vocab.entities.len(),
            cfg.num_domains * cfg.entities_per_domain
        );
        for t in &lake.tables {
            let rows = t.table.n_rows();
            assert!(rows >= cfg.rows_per_table.0 && rows <= cfg.rows_per_table.1);
            assert_eq!(t.entities.len(), rows);
        }
    }

    #[test]
    fn lexicon_knows_every_canonical_surface() {
        let lake = SyntheticLake::generate(GeneratorConfig::tiny(4));
        for e in &lake.vocab.entities {
            assert!(
                lake.lexicon.lookup(&e.surfaces[0]).is_some(),
                "missing {:?}",
                e.surfaces[0]
            );
        }
    }

    #[test]
    fn synonyms_share_concepts() {
        let lake = SyntheticLake::generate(GeneratorConfig::tiny(5));
        for e in &lake.vocab.entities {
            if e.surfaces.len() > 1 {
                let c0 = lake.lexicon.lookup(&e.surfaces[0]);
                let c1 = lake.lexicon.lookup(&e.surfaces[1]);
                assert_eq!(c0, c1);
                assert!(c0.is_some());
            }
        }
    }

    #[test]
    fn query_same_domain_is_joinable_other_domain_is_not() {
        let mut cfg = GeneratorConfig::tiny(6);
        cfg.entities_per_domain = 20;
        cfg.rows_per_table = (15, 20);
        let lake = SyntheticLake::generate(cfg);
        let q = lake.make_query(0, 15, 99);
        let same: Vec<f64> = lake
            .tables
            .iter()
            .filter(|t| t.domain == 0)
            .map(|t| SyntheticLake::true_joinability(&q, t))
            .collect();
        let other: Vec<f64> = lake
            .tables
            .iter()
            .filter(|t| t.domain != 0)
            .map(|t| SyntheticLake::true_joinability(&q, t))
            .collect();
        assert!(
            same.iter().any(|&j| j > 0.3),
            "same-domain tables should overlap: {same:?}"
        );
        assert!(
            other.iter().all(|&j| j == 0.0),
            "cross-domain tables must not overlap"
        );
    }

    #[test]
    fn ground_truth_threshold_monotone() {
        let lake = SyntheticLake::generate(GeneratorConfig::tiny(8));
        let q = lake.make_query(0, 12, 1);
        let loose = lake.ground_truth(&q, 0.1);
        let tight = lake.ground_truth(&q, 0.8);
        assert!(tight.is_subset(&loose));
    }

    #[test]
    fn key_column_detected_on_generated_tables() {
        use crate::keycol::{detect_key_column, KeyColumnConfig};
        let lake = SyntheticLake::generate(GeneratorConfig::tiny(9));
        let mut detected = 0;
        for t in &lake.tables {
            if detect_key_column(&t.table, &KeyColumnConfig::default()) == Some(t.key_col) {
                detected += 1;
            }
        }
        // The planted key column should almost always be recovered.
        assert!(
            detected * 10 >= lake.tables.len() * 8,
            "{detected}/{}",
            lake.tables.len()
        );
    }

    #[test]
    fn profiles_have_expected_shapes() {
        let open = GeneratorConfig::open_like(0.2, 1);
        let wdc = GeneratorConfig::wdc_like(0.2, 1);
        assert!(open.rows_per_table.0 > wdc.rows_per_table.1);
        assert!(wdc.num_tables > open.num_tables);
    }

    #[test]
    fn query_is_deterministic_in_seed() {
        let lake = SyntheticLake::generate(GeneratorConfig::tiny(10));
        let a = lake.make_query(1, 10, 42);
        let b = lake.make_query(1, 10, 42);
        assert_eq!(a.table, b.table);
    }
}
