//! Noise channels for the synthetic lake.
//!
//! Real lake columns differ from the query column through misspellings,
//! abbreviations, and terminology (synonyms). The generator routes every
//! rendered cell through a [`NoiseModel`] so those phenomena appear at
//! controlled rates — this is what makes equi-join recall low and semantic
//! join recall high, the central effect of the paper's Table IV.

use rand::Rng;

/// Rates of the individual noise channels (each in `[0, 1]`).
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Probability a cell gets one random character edit.
    pub misspell_rate: f64,
    /// Probability a cell's known long-form token is abbreviated
    /// ("Street" → "St").
    pub abbrev_rate: f64,
    /// Probability a cell is rendered in a different letter case.
    pub case_rate: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            misspell_rate: 0.15,
            abbrev_rate: 0.1,
            case_rate: 0.1,
        }
    }
}

impl NoiseModel {
    pub fn clean() -> Self {
        Self {
            misspell_rate: 0.0,
            abbrev_rate: 0.0,
            case_rate: 0.0,
        }
    }

    /// Apply the channels to `s`, consuming randomness from `rng`.
    pub fn apply(&self, rng: &mut impl Rng, s: &str) -> String {
        let mut out = s.to_string();
        if rng.gen_bool(self.abbrev_rate) {
            out = abbreviate(&out);
        }
        if rng.gen_bool(self.misspell_rate) {
            out = misspell(rng, &out);
        }
        if rng.gen_bool(self.case_rate) {
            out = case_noise(rng, &out);
        }
        out
    }
}

/// Long-form → abbreviation pairs (the inverse of the expander dictionary,
/// so the expander can undo this channel).
const ABBREVIATIONS: &[(&str, &str)] = &[
    ("street", "st"),
    ("avenue", "ave"),
    ("boulevard", "blvd"),
    ("road", "rd"),
    ("incorporated", "inc"),
    ("corporation", "corp"),
    ("company", "co"),
    ("limited", "ltd"),
    ("international", "intl"),
    ("march", "mar"),
    ("january", "jan"),
    ("september", "sep"),
    ("december", "dec"),
];

/// Replace the first abbreviatable token with its short form, preserving
/// simple capitalisation.
pub fn abbreviate(s: &str) -> String {
    let mut result: Vec<String> = Vec::new();
    let mut replaced = false;
    for word in s.split(' ') {
        let lower = word.to_lowercase();
        if !replaced {
            if let Some((_, abbr)) = ABBREVIATIONS.iter().find(|(long, _)| *long == lower) {
                let rendered = if word.chars().next().is_some_and(|c| c.is_uppercase()) {
                    let mut a = abbr.to_string();
                    a[..1].make_ascii_uppercase();
                    a
                } else {
                    abbr.to_string()
                };
                result.push(rendered);
                replaced = true;
                continue;
            }
        }
        result.push(word.to_string());
    }
    result.join(" ")
}

/// One random character-level edit: delete, insert, substitute, or adjacent
/// transposition. Strings shorter than 3 chars are returned unchanged so the
/// identity of very short values survives.
pub fn misspell(rng: &mut impl Rng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 3 {
        return s.to_string();
    }
    let letters = "abcdefghijklmnopqrstuvwxyz";
    let rand_letter = |rng: &mut dyn rand::RngCore| {
        letters
            .chars()
            .nth((rng.next_u32() as usize) % letters.len())
            .unwrap()
    };
    let mut out = chars.clone();
    // Only edit inside the string, keeping the first char: first-letter
    // typos are rare in practice and this keeps tokens recognisable.
    let pos = rng.gen_range(1..chars.len());
    match rng.gen_range(0..4u8) {
        0 => {
            out.remove(pos);
        }
        1 => {
            let c = rand_letter(rng);
            out.insert(pos, c);
        }
        2 => {
            out[pos] = rand_letter(rng);
        }
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out.swap(pos - 1, pos);
            }
        }
    }
    out.into_iter().collect()
}

/// Random re-casing: all-lower, all-upper, or title case.
pub fn case_noise(rng: &mut impl Rng, s: &str) -> String {
    match rng.gen_range(0..3u8) {
        0 => s.to_lowercase(),
        1 => s.to_uppercase(),
        _ => s
            .split(' ')
            .map(|w| {
                let mut cs = w.chars();
                match cs.next() {
                    Some(f) => f.to_uppercase().collect::<String>() + &cs.as_str().to_lowercase(),
                    None => String::new(),
                }
            })
            .collect::<Vec<_>>()
            .join(" "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn misspell_changes_one_edit() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let m = misspell(&mut rng, "population");
            let len_diff = (m.chars().count() as i64 - 10).abs();
            assert!(len_diff <= 1, "edit changed length too much: {m}");
            assert!(m.starts_with('p'), "first char preserved: {m}");
        }
    }

    #[test]
    fn misspell_short_strings_untouched() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(misspell(&mut rng, "ab"), "ab");
        assert_eq!(misspell(&mut rng, ""), "");
    }

    #[test]
    fn abbreviate_known_words() {
        assert_eq!(abbreviate("Main Street"), "Main St");
        assert_eq!(abbreviate("acme incorporated"), "acme inc");
        assert_eq!(abbreviate("nothing here"), "nothing here");
    }

    #[test]
    fn abbreviate_only_first_occurrence() {
        assert_eq!(abbreviate("Street Street"), "St Street");
    }

    #[test]
    fn clean_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = NoiseModel::clean();
        assert_eq!(m.apply(&mut rng, "Exact Value"), "Exact Value");
    }

    #[test]
    fn case_noise_preserves_letters() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let c = case_noise(&mut rng, "Hello World");
            assert_eq!(c.to_lowercase(), "hello world");
        }
    }

    #[test]
    fn noise_rates_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = NoiseModel {
            misspell_rate: 0.5,
            abbrev_rate: 0.0,
            case_rate: 0.0,
        };
        let n = 2000;
        let changed = (0..n)
            .filter(|_| m.apply(&mut rng, "population") != "population")
            .count();
        let rate = changed as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.06, "observed misspell rate {rate}");
    }
}
