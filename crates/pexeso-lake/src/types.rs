//! Column type inference.
//!
//! The paper routes only *string* columns (including dates rendered as text)
//! through the embedding pipeline; numeric/ID columns go to equi-join. This
//! module classifies columns by parsing a sample of their values.

/// Inferred type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// No non-empty values.
    Empty,
    /// All values parse as integers.
    Integer,
    /// All values parse as numbers, at least one fractional.
    Float,
    /// All values look like calendar dates.
    Date,
    /// Anything else: free text (the embedding-eligible type).
    Text,
}

impl ColumnType {
    /// Should this column's values be embedded for similarity join?
    /// Dates count: the paper expands their abbreviations and embeds them.
    pub fn is_embeddable(self) -> bool {
        matches!(self, ColumnType::Text | ColumnType::Date)
    }
}

fn is_integer(s: &str) -> bool {
    let s = s.trim();
    if s.is_empty() {
        return false;
    }
    let body = s.strip_prefix(['-', '+']).unwrap_or(s);
    // Allow thousands separators ("1,234,567").
    let cleaned: String = body.chars().filter(|&c| c != ',').collect();
    !cleaned.is_empty() && cleaned.chars().all(|c| c.is_ascii_digit())
}

fn is_float(s: &str) -> bool {
    let s = s.trim();
    if s.is_empty() {
        return false;
    }
    let cleaned: String = s.chars().filter(|&c| c != ',').collect();
    cleaned.parse::<f64>().is_ok()
}

const MONTH_NAMES: &[&str] = &[
    "jan",
    "feb",
    "mar",
    "apr",
    "may",
    "jun",
    "jul",
    "aug",
    "sep",
    "oct",
    "nov",
    "dec",
    "january",
    "february",
    "march",
    "april",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Recognise common date shapes: `2020-03-01`, `01/03/2020`, `3 Mar 2020`,
/// `Mar 3, 2020`.
fn is_date(s: &str) -> bool {
    let s = s.trim();
    if s.is_empty() {
        return false;
    }
    // ISO: YYYY-MM-DD (also with '/').
    let parts: Vec<&str> = s.split(['-', '/']).collect();
    if parts.len() == 3
        && parts
            .iter()
            .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
    {
        let nums: Vec<u32> = parts.iter().map(|p| p.parse().unwrap_or(0)).collect();
        let (a, b, c) = (nums[0], nums[1], nums[2]);
        let iso = a >= 1000 && (1..=12).contains(&b) && (1..=31).contains(&c);
        let dmy = c >= 1000 && (1..=12).contains(&b) && (1..=31).contains(&a);
        let mdy = c >= 1000 && (1..=12).contains(&a) && (1..=31).contains(&b);
        return iso || dmy || mdy;
    }
    // Textual month forms.
    let tokens: Vec<String> = s
        .split([' ', ',', '.'])
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect();
    if (2..=4).contains(&tokens.len()) {
        let has_month = tokens.iter().any(|t| MONTH_NAMES.contains(&t.as_str()));
        let has_number = tokens
            .iter()
            .any(|t| t.chars().all(|c| c.is_ascii_digit()) && !t.is_empty());
        return has_month && has_number;
    }
    false
}

/// Infer the type of a single value.
pub fn infer_value(s: &str) -> ColumnType {
    let t = s.trim();
    if t.is_empty() {
        ColumnType::Empty
    } else if is_integer(t) {
        ColumnType::Integer
    } else if is_float(t) {
        ColumnType::Float
    } else if is_date(t) {
        ColumnType::Date
    } else {
        ColumnType::Text
    }
}

/// Infer a column's type from (a sample of) its values.
///
/// Up to `sample` non-empty values are inspected. Mixed numeric kinds
/// promote to [`ColumnType::Float`]; any text value demotes the whole column
/// to [`ColumnType::Text`].
pub fn infer_column(values: &[String], sample: usize) -> ColumnType {
    let mut seen_any = false;
    let mut all_int = true;
    let mut all_num = true;
    let mut all_date = true;
    for v in values
        .iter()
        .filter(|v| !v.trim().is_empty())
        .take(sample.max(1))
    {
        seen_any = true;
        match infer_value(v) {
            ColumnType::Integer => {
                all_date = false;
            }
            ColumnType::Float => {
                all_int = false;
                all_date = false;
            }
            ColumnType::Date => {
                all_int = false;
                all_num = false;
            }
            ColumnType::Text => return ColumnType::Text,
            ColumnType::Empty => unreachable!("empties filtered above"),
        }
    }
    if !seen_any {
        ColumnType::Empty
    } else if all_date {
        ColumnType::Date
    } else if all_int {
        ColumnType::Integer
    } else if all_num {
        ColumnType::Float
    } else {
        // Mixture of dates and numbers: treat as text-ish (embeddable).
        ColumnType::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[&str]) -> Vec<String> {
        vals.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn integer_column() {
        assert_eq!(
            infer_column(&col(&["1", "42", "-7", "1,234"]), 100),
            ColumnType::Integer
        );
    }

    #[test]
    fn float_column() {
        assert_eq!(
            infer_column(&col(&["1.5", "2", "-0.25"]), 100),
            ColumnType::Float
        );
    }

    #[test]
    fn text_column() {
        assert_eq!(
            infer_column(&col(&["White", "Black", "42"]), 100),
            ColumnType::Text
        );
    }

    #[test]
    fn date_column_iso_and_textual() {
        assert_eq!(
            infer_column(&col(&["2020-03-01", "1999-12-31"]), 100),
            ColumnType::Date
        );
        assert_eq!(
            infer_column(&col(&["3 Mar 2020", "Mar 4, 2021"]), 100),
            ColumnType::Date
        );
        assert_eq!(infer_column(&col(&["01/03/2020"]), 100), ColumnType::Date);
    }

    #[test]
    fn empty_column() {
        assert_eq!(infer_column(&col(&["", "  "]), 100), ColumnType::Empty);
        assert_eq!(infer_column(&[], 100), ColumnType::Empty);
    }

    #[test]
    fn empties_ignored_in_mixed() {
        assert_eq!(infer_column(&col(&["", "5", ""]), 100), ColumnType::Integer);
    }

    #[test]
    fn date_not_confused_with_big_numbers() {
        assert_eq!(infer_value("20200301"), ColumnType::Integer);
        assert_eq!(infer_value("99/99/9999"), ColumnType::Text);
    }

    #[test]
    fn embeddable_flags() {
        assert!(ColumnType::Text.is_embeddable());
        assert!(ColumnType::Date.is_embeddable());
        assert!(!ColumnType::Integer.is_embeddable());
        assert!(!ColumnType::Float.is_embeddable());
        assert!(!ColumnType::Empty.is_embeddable());
    }

    #[test]
    fn sampling_limits_work() {
        // First value is an int, the 10_001st is text — with a small sample
        // we intentionally misclassify; with a big one we catch it.
        let mut vals = vec!["1".to_string(); 100];
        vals.push("oops".to_string());
        assert_eq!(infer_column(&vals, 50), ColumnType::Integer);
        assert_eq!(infer_column(&vals, 1000), ColumnType::Text);
    }
}
