//! PEXESO-H: the paper's self-baseline — identical hierarchical-grid
//! blocking, naive verification.
//!
//! For every candidate ⟨query vector, leaf cell⟩ pair, PEXESO-H computes
//! the exact distance between the query vector and *every* vector in the
//! cell: no inverted index, no Lemma 1/2 vector checks, no Lemma 7. The
//! joinable-skip early termination on T is kept (the paper equips every
//! method with it). Comparing PEXESO against PEXESO-H isolates the value of
//! the inverted-index verification (Table VII reports 1.6–13× between them).

use pexeso_core::util::FastMap;

use pexeso_core::block::{block, quick_browse};
use pexeso_core::column::{ColumnId, ColumnSet};
use pexeso_core::config::{IndexOptions, LemmaFlags};
use pexeso_core::error::{PexesoError, Result};
use pexeso_core::grid::{GridParams, HierarchicalGrid};
use pexeso_core::invindex::InvertedIndex;
use pexeso_core::mapping::MappedVectors;
use pexeso_core::metric::Metric;
use pexeso_core::pivot::select_pivots;
use pexeso_core::search::SearchHit;
use pexeso_core::stats::SearchStats;
use pexeso_core::vector::VectorStore;
use pexeso_core::{JoinThreshold, Tau};

use crate::VectorJoinSearch;

/// PEXESO-H index: grid with per-cell vector lists (no postings).
pub struct PexesoHIndex<'a, M: Metric> {
    columns: &'a ColumnSet,
    metric: M,
    pivots: Vec<Vec<f32>>,
    grid_params: GridParams,
    rv_mapped: MappedVectors,
    /// Grid retaining per-leaf vector id lists (the "naive" side).
    hgrv: HierarchicalGrid,
    /// Only used for quick browsing parity with PEXESO.
    inv: InvertedIndex,
    vec_col: Vec<u32>,
}

impl<'a, M: Metric> PexesoHIndex<'a, M> {
    pub fn build(columns: &'a ColumnSet, metric: M, options: IndexOptions) -> Result<Self> {
        options.validate()?;
        if columns.n_columns() == 0 {
            return Err(PexesoError::EmptyInput("repository with zero columns"));
        }
        let pivots = select_pivots(
            columns.store(),
            &metric,
            options.num_pivots,
            options.pivot_selection,
            options.seed,
        )?;
        let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None)?;
        let span = metric
            .max_dist_unit(columns.dim())
            .max(rv_mapped.max_coord())
            + 1e-4;
        let levels = options.levels.unwrap_or(4);
        let grid_params = GridParams::new(pivots.len(), levels, span)?;
        let hgrv = HierarchicalGrid::build(grid_params.clone(), &rv_mapped)?;
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build(&grid_params, &rv_mapped, &vec_col)?;
        Ok(Self {
            columns,
            metric,
            pivots,
            grid_params,
            rv_mapped,
            hgrv,
            inv,
            vec_col,
        })
    }
}

impl<M: Metric> VectorJoinSearch for PexesoHIndex<'_, M> {
    fn name(&self) -> &'static str {
        "PEXESO-H"
    }

    fn search(
        &self,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
    ) -> Result<(Vec<SearchHit>, SearchStats)> {
        if query.is_empty() {
            return Err(PexesoError::EmptyInput("query column with zero vectors"));
        }
        if query.dim() != self.columns.dim() {
            return Err(PexesoError::DimensionMismatch {
                expected: self.columns.dim(),
                got: query.dim(),
            });
        }
        let tau = tau.resolve(&self.metric, self.columns.dim())?;
        let t_abs = t.resolve(query.len())?;
        let started = std::time::Instant::now();
        let mut stats = SearchStats::new();

        let query_mapped = MappedVectors::build(
            query,
            &self.pivots,
            &self.metric,
            Some(&mut stats.mapping_distances),
        )?;
        if query_mapped.max_coord() > self.grid_params.span {
            return Err(PexesoError::InvalidParameter(
                "query vector maps outside the pivot space; normalise query vectors".into(),
            ));
        }
        let hgq = HierarchicalGrid::build(self.grid_params.clone(), &query_mapped)?;

        let block_start = std::time::Instant::now();
        let mut seeded = FastMap::default();
        let handled = quick_browse(&hgq, &self.inv, &mut seeded, &mut stats);
        let blocked = block(
            &hgq,
            &self.hgrv,
            &query_mapped,
            tau,
            LemmaFlags::all(),
            Some(&handled),
            seeded,
            &mut stats,
        );
        stats.block_time = block_start.elapsed();

        // Naive verification: exact distance to every vector in each
        // matching/candidate cell. Matching cells are certain, but
        // PEXESO-H has no postings, so it still walks their vector lists
        // (without distance computation) to attribute columns.
        let verify_start = std::time::Instant::now();
        let n_cols = self.columns.n_columns();
        let n_q = query.len();
        let mut counts = vec![0u32; n_cols];
        let mut joinable = vec![false; n_cols];
        let mut stamp = vec![0u32; n_cols];
        let mut mi = 0usize;
        let mut ci = 0usize;
        for q in 0..n_q as u32 {
            let gen = q + 1;
            if mi < blocked.matching.len() && blocked.matching[mi].0 == q {
                for &cell in &blocked.matching[mi].1 {
                    for &vid in self.hgrv.leaf_vectors(cell) {
                        let c = self.vec_col[vid as usize] as usize;
                        if joinable[c] || stamp[c] == gen {
                            continue;
                        }
                        stamp[c] = gen;
                        counts[c] += 1;
                        if counts[c] as usize >= t_abs {
                            joinable[c] = true;
                            stats.early_joinable += 1;
                        }
                    }
                }
                mi += 1;
            }
            if ci < blocked.candidates.len() && blocked.candidates[ci].0 == q {
                let qv = query.get_raw(q as usize);
                for &cell in &blocked.candidates[ci].1 {
                    for &vid in self.hgrv.leaf_vectors(cell) {
                        let c = self.vec_col[vid as usize] as usize;
                        if joinable[c] || stamp[c] == gen {
                            continue;
                        }
                        stats.distance_computations += 1;
                        if self
                            .metric
                            .dist(qv, self.columns.store().get_raw(vid as usize))
                            <= tau
                        {
                            stamp[c] = gen;
                            counts[c] += 1;
                            if counts[c] as usize >= t_abs {
                                joinable[c] = true;
                                stats.early_joinable += 1;
                            }
                        }
                    }
                }
                ci += 1;
            }
        }
        stats.verify_time = verify_start.elapsed();
        stats.total_time = started.elapsed();

        let hits = (0..n_cols)
            .filter(|&c| counts[c] as usize >= t_abs)
            .map(|c| SearchHit {
                column: ColumnId(c as u32),
                match_count: counts[c],
            })
            .collect();
        Ok((hits, stats))
    }

    fn index_bytes(&self) -> usize {
        self.hgrv.approx_bytes()
            + self.rv_mapped.raw_data().len() * 4
            + self.vec_col.len() * 4
            + self.pivots.iter().map(|p| p.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pexeso_core::metric::Euclidean;
    use pexeso_core::query::Queryable;
    use pexeso_core::search::{naive_search, PexesoIndex};
    use pexeso_core::PivotSelection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    fn instance(seed: u64, n_cols: usize, col_len: usize, nq: usize) -> (ColumnSet, VectorStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 10;
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng, dim)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng, dim);
            query.push(&v).unwrap();
        }
        (columns, query)
    }

    fn opts() -> IndexOptions {
        IndexOptions {
            num_pivots: 3,
            levels: Some(4),
            pivot_selection: PivotSelection::Pca,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn agrees_with_naive_and_pexeso() {
        for seed in [1u64, 2] {
            let (columns, query) = instance(seed, 12, 25, 8);
            let h = PexesoHIndex::build(&columns, Euclidean, opts()).unwrap();
            let full = PexesoIndex::build(columns.clone(), Euclidean, opts()).unwrap();
            for tau in [Tau::Ratio(0.08), Tau::Ratio(0.25)] {
                for t in [JoinThreshold::Ratio(0.3), JoinThreshold::Ratio(0.7)] {
                    let (expected, _) =
                        naive_search(&columns, &Euclidean, &query, tau, t, false).unwrap();
                    let (got_h, _) = h.search(&query, tau, t).unwrap();
                    let got_full = full
                        .execute(&pexeso_core::query::Query::threshold(tau, t), &query)
                        .unwrap();
                    let ids = |v: &[SearchHit]| v.iter().map(|h| h.column).collect::<Vec<_>>();
                    assert_eq!(ids(&got_h), ids(&expected), "seed={seed}");
                    // External ids equal insertion order in this fixture.
                    let full_ids: Vec<ColumnId> = got_full
                        .hits
                        .iter()
                        .map(|h| ColumnId(h.external_id as u32))
                        .collect();
                    assert_eq!(full_ids, ids(&expected), "seed={seed}");
                }
            }
        }
    }

    #[test]
    fn pexeso_does_fewer_distance_computations_than_h() {
        let (columns, query) = instance(3, 15, 40, 10);
        let h = PexesoHIndex::build(&columns, Euclidean, opts()).unwrap();
        let full = PexesoIndex::build(columns.clone(), Euclidean, opts()).unwrap();
        let tau = Tau::Ratio(0.1);
        let t = JoinThreshold::Ratio(0.5);
        let (_, h_stats) = h.search(&query, tau, t).unwrap();
        let full_result = full
            .execute(&pexeso_core::query::Query::threshold(tau, t), &query)
            .unwrap();
        assert!(
            full_result.stats.distance_computations <= h_stats.distance_computations,
            "PEXESO {} should not exceed PEXESO-H {}",
            full_result.stats.distance_computations,
            h_stats.distance_computations
        );
    }

    #[test]
    fn empty_query_rejected() {
        let (columns, _) = instance(4, 3, 8, 1);
        let h = PexesoHIndex::build(&columns, Euclidean, opts()).unwrap();
        let empty = VectorStore::new(10);
        assert!(h
            .search(&empty, Tau::Ratio(0.1), JoinThreshold::Count(1))
            .is_err());
    }
}
