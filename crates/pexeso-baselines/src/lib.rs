//! # pexeso-baselines — every comparator from the paper's evaluation
//!
//! Effectiveness baselines (Table IV/V, operating on raw strings):
//! equi-join, Jaccard-join, edit-join, fuzzy-join (Wang et al. style),
//! TF-IDF-join — all in [`stringjoin`].
//!
//! Efficiency baselines (Table VII, Figs. 6/8, operating on vectors):
//! * [`covertree`] — CTREE: exact range search with a cover tree;
//! * [`ept`] — EPT: exact linear scan filtered by a pivot table;
//! * [`pq`] — PQ: approximate search with product quantization, with the
//!   recall-calibration knob behind PQ-75 / PQ-85;
//! * [`pexeso_h`] — PEXESO-H: PEXESO's grid blocking with naive per-cell
//!   verification (no inverted index, no Lemma 1/2/7).
//!
//! All vector baselines share the [`VectorJoinSearch`] trait so the
//! benchmark harness can drive them interchangeably; every *exact* method
//! is property-tested to agree with `pexeso_core::naive_search`.

pub mod covertree;
pub mod ept;
pub mod pexeso_h;
pub mod pq;
pub mod stringjoin;
pub mod strsim;

use pexeso_core::error::Result;
use pexeso_core::search::SearchHit;
use pexeso_core::stats::SearchStats;
use pexeso_core::vector::VectorStore;
use pexeso_core::{JoinThreshold, Tau};

/// A joinable-column search method over an embedded repository.
pub trait VectorJoinSearch {
    /// Short display name used in experiment tables ("CTREE", "EPT", …).
    fn name(&self) -> &'static str;

    /// Find all columns joinable to `query` under (τ, T).
    fn search(
        &self,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
    ) -> Result<(Vec<SearchHit>, SearchStats)>;

    /// Estimated resident index size in bytes (Fig. 6b).
    fn index_bytes(&self) -> usize;
}
