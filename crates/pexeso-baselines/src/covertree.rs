//! CTREE: exact joinable-column search with a cover tree.
//!
//! The paper's CTREE baseline builds one cover tree over all repository
//! vectors, issues a range query with radius τ per query vector, and counts
//! results toward the joinability of the column each hit belongs to, with
//! early termination once a column reaches T.
//!
//! The tree uses the simplified-cover-tree insertion of Izbicki & Shelton
//! (ICML'15): covering invariant `d(child, parent) ≤ 2^parent.level`, with
//! the *actual* subtree max-distance tracked per node for tight range-query
//! pruning — this keeps queries exact even where the separation invariant
//! is relaxed.

use pexeso_core::column::{ColumnId, ColumnSet};
use pexeso_core::error::{PexesoError, Result};
use pexeso_core::metric::Metric;
use pexeso_core::search::SearchHit;
use pexeso_core::stats::SearchStats;
use pexeso_core::vector::VectorStore;
use pexeso_core::{JoinThreshold, Tau};

use crate::VectorJoinSearch;

struct Node {
    /// Representative vector id.
    point: u32,
    /// Ids of duplicate vectors (distance ~0 from `point`).
    duplicates: Vec<u32>,
    level: i32,
    children: Vec<usize>,
    /// Actual max distance from `point` to any vector in the subtree.
    max_dist: f32,
}

/// Cover tree over one repository.
pub struct CoverTreeIndex<'a, M: Metric> {
    columns: &'a ColumnSet,
    metric: M,
    nodes: Vec<Node>,
    root: usize,
    vec_col: Vec<u32>,
}

const DUP_EPS: f32 = 1e-7;

impl<'a, M: Metric> CoverTreeIndex<'a, M> {
    /// Build by sequential insertion of every repository vector.
    pub fn build(columns: &'a ColumnSet, metric: M) -> Result<Self> {
        if columns.n_vectors() == 0 {
            return Err(PexesoError::EmptyInput("cover tree over empty repository"));
        }
        let store = columns.store();
        // Root level covers the maximum possible distance.
        let span = metric.max_dist_unit(columns.dim()).max(1.0);
        let root_level = span.log2().ceil() as i32 + 1;
        let mut this = Self {
            columns,
            metric,
            nodes: vec![Node {
                point: 0,
                duplicates: Vec::new(),
                level: root_level,
                children: Vec::new(),
                max_dist: 0.0,
            }],
            root: 0,
            vec_col: columns.vector_to_column(),
        };
        for i in 1..store.len() as u32 {
            this.insert(i);
        }
        Ok(this)
    }

    #[inline]
    fn covdist(level: i32) -> f32 {
        (2.0f32).powi(level)
    }

    fn insert(&mut self, id: u32) {
        let store = self.columns.store();
        let x = store.get(pexeso_core::vector::VectorId(id));
        let mut cur = self.root;
        loop {
            let node = &self.nodes[cur];
            let d = self.metric.dist(x, store.get_raw(node.point as usize));
            // Track actual subtree reach along the path.
            if d > node.max_dist {
                self.nodes[cur].max_dist = d;
            }
            let node = &self.nodes[cur];
            if d <= DUP_EPS {
                self.nodes[cur].duplicates.push(id);
                return;
            }
            // Descend into the first child that covers x.
            let mut next = None;
            for &c in &node.children {
                let child = &self.nodes[c];
                let dc = self.metric.dist(x, store.get_raw(child.point as usize));
                if dc <= Self::covdist(child.level) {
                    next = Some(c);
                    break;
                }
            }
            match next {
                Some(c) => cur = c,
                None => {
                    let level = self.nodes[cur].level - 1;
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        point: id,
                        duplicates: Vec::new(),
                        level,
                        children: Vec::new(),
                        max_dist: 0.0,
                    });
                    self.nodes[cur].children.push(idx);
                    return;
                }
            }
        }
    }

    /// Exact range query: ids of all vectors within `radius` of `q`.
    /// Distance computations are counted into `stats`.
    pub fn range_query(&self, q: &[f32], radius: f32, stats: &mut SearchStats, out: &mut Vec<u32>) {
        let store = self.columns.store();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            stats.distance_computations += 1;
            let d = self.metric.dist(q, store.get_raw(node.point as usize));
            if d <= radius {
                out.push(node.point);
                out.extend_from_slice(&node.duplicates);
            }
            if d <= radius + node.max_dist {
                stack.extend_from_slice(&node.children);
            }
        }
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl<M: Metric> VectorJoinSearch for CoverTreeIndex<'_, M> {
    fn name(&self) -> &'static str {
        "CTREE"
    }

    fn search(
        &self,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
    ) -> Result<(Vec<SearchHit>, SearchStats)> {
        if query.is_empty() {
            return Err(PexesoError::EmptyInput("query column with zero vectors"));
        }
        let tau = tau.resolve(&self.metric, self.columns.dim())?;
        let t_abs = t.resolve(query.len())?;
        let started = std::time::Instant::now();
        let mut stats = SearchStats::new();
        let n_cols = self.columns.n_columns();
        let mut counts = vec![0u32; n_cols];
        let mut joinable = vec![false; n_cols];
        let mut stamp = vec![0u32; n_cols];
        let mut results = Vec::new();
        for (qi, q) in query.iter().enumerate() {
            let gen = qi as u32 + 1;
            results.clear();
            self.range_query(q, tau, &mut stats, &mut results);
            for &vid in &results {
                let c = self.vec_col[vid as usize] as usize;
                if joinable[c] || stamp[c] == gen {
                    continue;
                }
                stamp[c] = gen;
                counts[c] += 1;
                if counts[c] as usize >= t_abs {
                    joinable[c] = true;
                    stats.early_joinable += 1;
                }
            }
        }
        let hits = (0..n_cols)
            .filter(|&c| counts[c] as usize >= t_abs)
            .map(|c| SearchHit {
                column: ColumnId(c as u32),
                match_count: counts[c],
            })
            .collect();
        stats.total_time = started.elapsed();
        stats.verify_time = stats.total_time;
        Ok((hits, stats))
    }

    fn index_bytes(&self) -> usize {
        self.node_count() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.len() * 8 + n.duplicates.len() * 4)
                .sum::<usize>()
            + self.vec_col.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pexeso_core::metric::Euclidean;
    use pexeso_core::search::naive_search;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    fn instance(seed: u64, n_cols: usize, col_len: usize, nq: usize) -> (ColumnSet, VectorStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 10;
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng, dim)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng, dim);
            query.push(&v).unwrap();
        }
        (columns, query)
    }

    #[test]
    fn range_query_is_exact() {
        let (columns, query) = instance(1, 8, 30, 10);
        let tree = CoverTreeIndex::build(&columns, Euclidean).unwrap();
        let tau = 0.5f32;
        for q in query.iter() {
            let mut stats = SearchStats::new();
            let mut got = Vec::new();
            tree.range_query(q, tau, &mut stats, &mut got);
            got.sort_unstable();
            let expected: Vec<u32> = (0..columns.n_vectors() as u32)
                .filter(|&v| Euclidean.dist(q, columns.store().get_raw(v as usize)) <= tau)
                .collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn search_agrees_with_naive() {
        for seed in [2u64, 3, 4] {
            let (columns, query) = instance(seed, 12, 20, 8);
            let tree = CoverTreeIndex::build(&columns, Euclidean).unwrap();
            for tau in [Tau::Ratio(0.05), Tau::Ratio(0.2)] {
                for t in [JoinThreshold::Ratio(0.25), JoinThreshold::Ratio(0.75)] {
                    let (expected, _) =
                        naive_search(&columns, &Euclidean, &query, tau, t, false).unwrap();
                    let (got, _) = tree.search(&query, tau, t).unwrap();
                    let gi: Vec<_> = got.iter().map(|h| h.column).collect();
                    let ei: Vec<_> = expected.iter().map(|h| h.column).collect();
                    assert_eq!(gi, ei, "seed={seed} tau={tau:?} t={t:?}");
                }
            }
        }
    }

    #[test]
    fn duplicates_are_retrievable() {
        let mut columns = ColumnSet::new(2);
        let v = [0.6f32, 0.8];
        columns
            .add_column("t", "dups", 0, vec![&v[..], &v[..], &v[..]])
            .unwrap();
        columns
            .add_column("t", "other", 1, vec![&[1.0f32, 0.0][..]])
            .unwrap();
        let tree = CoverTreeIndex::build(&columns, Euclidean).unwrap();
        let mut stats = SearchStats::new();
        let mut out = Vec::new();
        tree.range_query(&v, 1e-6, &mut stats, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn prunes_far_subtrees() {
        let (columns, query) = instance(5, 10, 50, 5);
        let tree = CoverTreeIndex::build(&columns, Euclidean).unwrap();
        let mut stats = SearchStats::new();
        let mut out = Vec::new();
        tree.range_query(query.get_raw(0), 0.05, &mut stats, &mut out);
        assert!(
            (stats.distance_computations as usize) < columns.n_vectors(),
            "tiny radius should prune most of the tree: {} vs {}",
            stats.distance_computations,
            columns.n_vectors()
        );
    }

    #[test]
    fn empty_repository_rejected() {
        let columns = ColumnSet::new(4);
        assert!(CoverTreeIndex::build(&columns, Euclidean).is_err());
    }
}
