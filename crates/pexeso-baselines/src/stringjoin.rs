//! String-level joinability baselines (Table IV / Table V competitors).
//!
//! All baselines share PEXESO's joinability semantics — the fraction of
//! query records with at least one matching target record — but differ in
//! the record-level matching predicate:
//!
//! * **equi-join** — exact string equality (Zhu et al.'s JOSIE setting);
//! * **Jaccard-join** — token-set Jaccard ≥ θ;
//! * **edit-join** — normalised edit similarity ≥ θ;
//! * **fuzzy-join** — Wang et al.'s fuzzy-token predicate: tokens match
//!   fuzzily (edit similarity ≥ δ), records match when the fuzzy-matched
//!   token fraction ≥ θ;
//! * **TF-IDF-join** — cosine over corpus-wide TF-IDF token vectors ≥ θ.
//!
//! Equality matching is accelerated with a value→columns inverted map;
//! similarity matchers run with per-(record, column) first-match semantics
//! and the same early-termination rules the vector methods use.

use std::collections::{HashMap, HashSet};

use crate::strsim::{edit_similarity, jaccard_tokens, tokens};

/// A repository of string columns (values as rendered in the lake).
#[derive(Debug, Clone, Default)]
pub struct StringColumns {
    pub columns: Vec<Vec<String>>,
    pub names: Vec<String>,
}

impl StringColumns {
    pub fn add(&mut self, name: &str, values: Vec<String>) {
        self.names.push(name.to_string());
        self.columns.push(values);
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// Record-level matching predicate.
pub trait StringMatcher: Send + Sync {
    fn name(&self) -> &'static str;
    fn matches(&self, a: &str, b: &str) -> bool;
}

/// Exact equality on trimmed strings (case-sensitive, like JOSIE's sets).
#[derive(Debug, Clone, Copy)]
pub struct EquiMatcher;

impl StringMatcher for EquiMatcher {
    fn name(&self) -> &'static str {
        "equi-join"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a.trim() == b.trim()
    }
}

/// Token-set Jaccard similarity ≥ θ.
#[derive(Debug, Clone, Copy)]
pub struct JaccardMatcher {
    pub threshold: f64,
}

impl StringMatcher for JaccardMatcher {
    fn name(&self) -> &'static str {
        "jaccard-join"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        jaccard_tokens(a, b) >= self.threshold
    }
}

/// Normalised edit similarity ≥ θ (whole-string).
#[derive(Debug, Clone, Copy)]
pub struct EditMatcher {
    pub threshold: f64,
}

impl StringMatcher for EditMatcher {
    fn name(&self) -> &'static str {
        "edit-join"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        edit_similarity(&a.to_lowercase(), &b.to_lowercase(), self.threshold).is_some()
    }
}

/// Fuzzy-token matching (Wang et al., TODS'14, simplified): each query
/// token fuzzy-matches a target token when their edit similarity ≥ δ;
/// the records match when ≥ θ fraction of the longer token list is
/// fuzzy-matched (greedy one-to-one assignment).
#[derive(Debug, Clone, Copy)]
pub struct FuzzyMatcher {
    /// Token-level edit-similarity threshold δ.
    pub token_sim: f64,
    /// Record-level matched-fraction threshold θ.
    pub fraction: f64,
}

impl StringMatcher for FuzzyMatcher {
    fn name(&self) -> &'static str {
        "fuzzy-join"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        let ta = tokens(a);
        let tb = tokens(b);
        if ta.is_empty() || tb.is_empty() {
            return ta.is_empty() && tb.is_empty();
        }
        let mut used = vec![false; tb.len()];
        let mut matched = 0usize;
        for qa in &ta {
            for (j, qb) in tb.iter().enumerate() {
                if !used[j] && edit_similarity(qa, qb, self.token_sim).is_some() {
                    used[j] = true;
                    matched += 1;
                    break;
                }
            }
        }
        matched as f64 / ta.len().max(tb.len()) as f64 >= self.fraction
    }
}

/// One joinable-column hit.
#[derive(Debug, Clone, PartialEq)]
pub struct StringJoinHit {
    pub column: usize,
    pub match_count: usize,
    /// match_count / |Q| (a lower bound under early termination).
    pub joinability: f64,
}

/// Instrumentation for the string baselines.
#[derive(Debug, Clone, Default)]
pub struct StringJoinStats {
    pub comparisons: u64,
    pub total_time: std::time::Duration,
}

/// Shared search driver: per column, count query records with ≥ 1 match,
/// with joinable-skip and hopeless-prune early termination.
pub fn string_join_search(
    matcher: &dyn StringMatcher,
    query: &[String],
    repo: &StringColumns,
    t_ratio: f64,
) -> (Vec<StringJoinHit>, StringJoinStats) {
    let started = std::time::Instant::now();
    let mut stats = StringJoinStats::default();
    let n_q = query.len();
    let t_abs = ((t_ratio * n_q as f64).ceil() as usize).max(1);
    let mut hits = Vec::new();
    for (ci, col) in repo.columns.iter().enumerate() {
        let mut count = 0usize;
        for (qi, q) in query.iter().enumerate() {
            let mut matched = false;
            for s in col {
                stats.comparisons += 1;
                if matcher.matches(q, s) {
                    matched = true;
                    break;
                }
            }
            if matched {
                count += 1;
                if count >= t_abs {
                    break;
                }
            } else {
                let remaining = n_q - qi - 1;
                if count + remaining < t_abs {
                    break;
                }
            }
        }
        if count >= t_abs {
            hits.push(StringJoinHit {
                column: ci,
                match_count: count,
                joinability: count as f64 / n_q as f64,
            });
        }
    }
    stats.total_time = started.elapsed();
    (hits, stats)
}

/// Equi-join accelerated with a value → columns inverted map (how JOSIE-like
/// systems actually evaluate overlap; also keeps the Table IV baseline from
/// being unfairly slow).
pub struct EquiJoinIndex {
    /// Trimmed value → sorted column ids containing it.
    value_cols: HashMap<String, Vec<u32>>,
    n_columns: usize,
}

impl EquiJoinIndex {
    pub fn build(repo: &StringColumns) -> Self {
        let mut value_cols: HashMap<String, Vec<u32>> = HashMap::new();
        for (ci, col) in repo.columns.iter().enumerate() {
            let mut seen: HashSet<&str> = HashSet::new();
            for v in col {
                let t = v.trim();
                if seen.insert(t) {
                    value_cols.entry(t.to_string()).or_default().push(ci as u32);
                }
            }
        }
        Self {
            value_cols,
            n_columns: repo.len(),
        }
    }

    pub fn search(&self, query: &[String], t_ratio: f64) -> (Vec<StringJoinHit>, StringJoinStats) {
        let started = std::time::Instant::now();
        let mut stats = StringJoinStats::default();
        let n_q = query.len();
        let t_abs = ((t_ratio * n_q as f64).ceil() as usize).max(1);
        let mut counts = vec![0usize; self.n_columns];
        for q in query {
            stats.comparisons += 1;
            if let Some(cols) = self.value_cols.get(q.trim()) {
                for &c in cols {
                    counts[c as usize] += 1;
                }
            }
        }
        let hits = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= t_abs)
            .map(|(ci, &c)| StringJoinHit {
                column: ci,
                match_count: c,
                joinability: c as f64 / n_q as f64,
            })
            .collect();
        stats.total_time = started.elapsed();
        (hits, stats)
    }
}

/// TF-IDF cosine join (Cohen, SIGMOD'98 style): token IDF computed over all
/// repository records; records match when the cosine of their TF-IDF
/// vectors ≥ θ.
pub struct TfIdfJoin {
    /// token → idf
    idf: HashMap<String, f64>,
    /// Per column, per record: sparse normalised tf-idf vector.
    columns: Vec<Vec<Vec<(u32, f32)>>>,
    /// token → dense id
    vocab: HashMap<String, u32>,
    pub threshold: f64,
}

impl TfIdfJoin {
    pub fn build(repo: &StringColumns, threshold: f64) -> Self {
        // Document = one record; IDF over all records of the repository.
        let mut df: HashMap<String, u64> = HashMap::new();
        let mut n_docs = 0u64;
        for col in &repo.columns {
            for v in col {
                n_docs += 1;
                let mut seen = HashSet::new();
                for t in tokens(v) {
                    if seen.insert(t.clone()) {
                        *df.entry(t).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut vocab = HashMap::new();
        let mut idf = HashMap::new();
        for (t, d) in &df {
            let id = vocab.len() as u32;
            vocab.insert(t.clone(), id);
            idf.insert(
                t.clone(),
                ((1.0 + n_docs as f64) / (1.0 + *d as f64)).ln() + 1.0,
            );
        }
        let mut this = Self {
            idf,
            columns: Vec::new(),
            vocab,
            threshold,
        };
        this.columns = repo
            .columns
            .iter()
            .map(|col| col.iter().map(|v| this.vectorize(v)).collect())
            .collect();
        this
    }

    /// Sparse normalised TF-IDF vector of a record (sorted by token id).
    pub fn vectorize(&self, value: &str) -> Vec<(u32, f32)> {
        let mut tf: HashMap<u32, f32> = HashMap::new();
        let toks = tokens(value);
        for t in &toks {
            if let (Some(&id), Some(&w)) = (self.vocab.get(t), self.idf.get(t)) {
                *tf.entry(id).or_insert(0.0) += w as f32;
            }
        }
        let mut v: Vec<(u32, f32)> = tf.into_iter().collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        let norm: f32 = v.iter().map(|(_, w)| w * w).sum::<f32>().sqrt();
        if norm > 0.0 {
            v.iter_mut().for_each(|(_, w)| *w /= norm);
        }
        v
    }

    fn cosine(a: &[(u32, f32)], b: &[(u32, f32)]) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f64;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += (a[i].1 * b[j].1) as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    pub fn search(&self, query: &[String], t_ratio: f64) -> (Vec<StringJoinHit>, StringJoinStats) {
        let started = std::time::Instant::now();
        let mut stats = StringJoinStats::default();
        let n_q = query.len();
        let t_abs = ((t_ratio * n_q as f64).ceil() as usize).max(1);
        let qvecs: Vec<Vec<(u32, f32)>> = query.iter().map(|q| self.vectorize(q)).collect();
        let mut hits = Vec::new();
        for (ci, col) in self.columns.iter().enumerate() {
            let mut count = 0usize;
            for (qi, qv) in qvecs.iter().enumerate() {
                let mut matched = false;
                for sv in col {
                    stats.comparisons += 1;
                    if Self::cosine(qv, sv) >= self.threshold {
                        matched = true;
                        break;
                    }
                }
                if matched {
                    count += 1;
                    if count >= t_abs {
                        break;
                    }
                } else if count + (n_q - qi - 1) < t_abs {
                    break;
                }
            }
            if count >= t_abs {
                hits.push(StringJoinHit {
                    column: ci,
                    match_count: count,
                    joinability: count as f64 / n_q as f64,
                });
            }
        }
        stats.total_time = started.elapsed();
        (hits, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo() -> StringColumns {
        let mut r = StringColumns::default();
        r.add(
            "races",
            vec!["White".into(), "Black".into(), "Pacific Islander".into()],
        );
        r.add("cities", vec!["Oslo".into(), "Bergen".into()]);
        r.add(
            "races_noisy",
            vec!["white".into(), "Blck".into(), "Pacific Islandr".into()],
        );
        r
    }

    fn query() -> Vec<String> {
        vec![
            "White".into(),
            "Black".into(),
            "Hawaiian/Guamanian/Samoan".into(),
        ]
    }

    #[test]
    fn equi_join_finds_exact_only() {
        let r = repo();
        let idx = EquiJoinIndex::build(&r);
        let (hits, _) = idx.search(&query(), 0.5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].column, 0);
        assert_eq!(hits[0].match_count, 2);
    }

    #[test]
    fn equi_join_index_agrees_with_matcher_scan() {
        let r = repo();
        let idx = EquiJoinIndex::build(&r);
        for t in [0.3, 0.5, 0.9] {
            let (a, _) = idx.search(&query(), t);
            let (b, _) = string_join_search(&EquiMatcher, &query(), &r, t);
            let ai: Vec<usize> = a.iter().map(|h| h.column).collect();
            let bi: Vec<usize> = b.iter().map(|h| h.column).collect();
            assert_eq!(ai, bi, "t={t}");
        }
    }

    #[test]
    fn edit_join_tolerates_typos() {
        let r = repo();
        let (hits, _) = string_join_search(&EditMatcher { threshold: 0.7 }, &query(), &r, 0.6);
        let cols: Vec<usize> = hits.iter().map(|h| h.column).collect();
        assert!(cols.contains(&0));
        assert!(
            cols.contains(&2),
            "edit-join should match the noisy column: {cols:?}"
        );
    }

    #[test]
    fn jaccard_join_token_level() {
        let r = repo();
        let (hits, _) = string_join_search(&JaccardMatcher { threshold: 0.99 }, &query(), &r, 0.5);
        // Case-insensitive token equality: "white" matches, "Blck" doesn't.
        assert!(hits.iter().any(|h| h.column == 0));
    }

    #[test]
    fn fuzzy_join_matches_token_typos() {
        let m = FuzzyMatcher {
            token_sim: 0.7,
            fraction: 0.9,
        };
        assert!(m.matches("Pacific Islander", "Pacific Islandr"));
        assert!(!m.matches("Pacific Islander", "Atlantic Salmon"));
        assert!(m.matches("", ""));
    }

    #[test]
    fn tfidf_join_weights_rare_tokens() {
        let mut r = StringColumns::default();
        r.add(
            "a",
            vec!["the zebra".into(), "the lion".into(), "the gnu".into()],
        );
        r.add("b", vec!["the the the".into()]);
        let j = TfIdfJoin::build(&r, 0.5);
        let (hits, _) = j.search(&["zebra".to_string()], 0.9);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].column, 0);
        // "the" alone is a common token; cosine against "the zebra" is low.
        let (hits2, _) = j.search(&["the".to_string()], 0.9);
        assert_eq!(hits2.iter().filter(|h| h.column == 0).count(), 0);
    }

    #[test]
    fn joinability_threshold_respected() {
        let r = repo();
        // T = 1.0 requires every query record to match; only possible for
        // a perfect column.
        let (hits, _) = string_join_search(&EquiMatcher, &query(), &r, 1.0);
        assert!(hits.is_empty());
    }

    #[test]
    fn stats_count_comparisons() {
        let r = repo();
        let (_, stats) = string_join_search(&EquiMatcher, &query(), &r, 0.5);
        assert!(stats.comparisons > 0);
    }
}
