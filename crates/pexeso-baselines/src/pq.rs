//! PQ: approximate joinable-column search with product quantization
//! (Jégou et al., TPAMI'11; the paper uses the nanopq implementation).
//!
//! Vectors are split into `m` subspaces; each subspace is vector-quantised
//! with a k-means codebook of `ks` centroids; a vector is stored as `m`
//! one-byte codes. A query builds per-subspace distance tables once and
//! approximates `d(q,x)²` by summing table entries (asymmetric distance
//! computation). Range queries are *approximate*: a calibrated radius
//! multiplier trades recall for candidates — the knob behind the paper's
//! PQ-75 / PQ-85 variants.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pexeso_core::column::{ColumnId, ColumnSet};
use pexeso_core::error::{PexesoError, Result};
use pexeso_core::metric::{Euclidean, Metric};
use pexeso_core::search::SearchHit;
use pexeso_core::stats::SearchStats;
use pexeso_core::vector::VectorStore;
use pexeso_core::{JoinThreshold, Tau};

use crate::VectorJoinSearch;

/// PQ configuration.
#[derive(Debug, Clone)]
pub struct PqConfig {
    /// Number of subspaces (must not exceed the dimensionality).
    pub num_subspaces: usize,
    /// Centroids per subspace (≤ 256; codes are one byte).
    pub num_centroids: usize,
    /// k-means iterations.
    pub kmeans_iters: usize,
    /// Training sample size.
    pub train_sample: usize,
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> Self {
        Self {
            num_subspaces: 5,
            num_centroids: 32,
            kmeans_iters: 12,
            train_sample: 4096,
            seed: 42,
        }
    }
}

/// Product-quantization index. Only Euclidean is supported (ADC decomposes
/// over subspaces for L2), matching nanopq.
pub struct PqIndex<'a> {
    columns: &'a ColumnSet,
    config: PqConfig,
    /// Subspace boundaries: `bounds[s]..bounds[s+1]` in the original dims.
    bounds: Vec<usize>,
    /// Per subspace: `num_centroids` flattened centroid vectors.
    codebooks: Vec<Vec<f32>>,
    /// `n × m` codes.
    codes: Vec<u8>,
    /// Radius multiplier from recall calibration (1.0 = uncalibrated).
    pub radius_scale: f32,
}

impl<'a> PqIndex<'a> {
    /// Train codebooks on a sample and encode the whole repository.
    pub fn build(columns: &'a ColumnSet, config: PqConfig) -> Result<Self> {
        let dim = columns.dim();
        if config.num_subspaces == 0 || config.num_subspaces > dim {
            return Err(PexesoError::InvalidParameter(format!(
                "num_subspaces {} outside 1..={dim}",
                config.num_subspaces
            )));
        }
        if config.num_centroids == 0 || config.num_centroids > 256 {
            return Err(PexesoError::InvalidParameter(
                "num_centroids outside 1..=256".into(),
            ));
        }
        if columns.n_vectors() == 0 {
            return Err(PexesoError::EmptyInput("PQ over empty repository"));
        }
        let m = config.num_subspaces;
        // Even split with the remainder spread over the first subspaces.
        let base = dim / m;
        let extra = dim % m;
        let mut bounds = vec![0usize];
        for s in 0..m {
            bounds.push(bounds[s] + base + usize::from(s < extra));
        }

        let store = columns.store();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sample_idx: Vec<usize> = (0..store.len()).collect();
        sample_idx.shuffle(&mut rng);
        sample_idx.truncate(config.train_sample.min(store.len()));

        let mut codebooks = Vec::with_capacity(m);
        for s in 0..m {
            let lo = bounds[s];
            let hi = bounds[s + 1];
            codebooks.push(train_kmeans(
                store,
                &sample_idx,
                lo,
                hi,
                config.num_centroids,
                config.kmeans_iters,
                &mut rng,
            ));
        }

        // Encode every vector.
        let mut codes = vec![0u8; store.len() * m];
        for i in 0..store.len() {
            let v = store.get_raw(i);
            for s in 0..m {
                codes[i * m + s] = nearest_centroid(
                    &v[bounds[s]..bounds[s + 1]],
                    &codebooks[s],
                    bounds[s + 1] - bounds[s],
                );
            }
        }
        Ok(Self {
            columns,
            config,
            bounds,
            codebooks,
            codes,
            radius_scale: 1.0,
        })
    }

    /// Per-subspace squared-distance tables for a query.
    fn adc_tables(&self, q: &[f32]) -> Vec<f32> {
        let m = self.config.num_subspaces;
        let ks = self.config.num_centroids;
        let mut tables = vec![0.0f32; m * ks];
        for s in 0..m {
            let lo = self.bounds[s];
            let hi = self.bounds[s + 1];
            let dsub = hi - lo;
            let qs = &q[lo..hi];
            for c in 0..ks {
                let cent = &self.codebooks[s][c * dsub..(c + 1) * dsub];
                let mut acc = 0.0f32;
                for (a, b) in qs.iter().zip(cent.iter()) {
                    let d = a - b;
                    acc += d * d;
                }
                tables[s * ks + c] = acc;
            }
        }
        tables
    }

    /// Approximate squared distance via table lookups.
    #[inline]
    fn adc_dist_sq(&self, tables: &[f32], x: usize) -> f32 {
        let m = self.config.num_subspaces;
        let ks = self.config.num_centroids;
        let mut acc = 0.0f32;
        for s in 0..m {
            acc += tables[s * ks + self.codes[x * m + s] as usize];
        }
        acc
    }

    /// Calibrate the radius multiplier so that the approximate range query
    /// reaches at least `target_recall` on a sampled workload at radius
    /// `tau` (the paper's "adjust PQ to make the recall of range query at
    /// least 75 % / 85 %"). Returns the chosen multiplier.
    pub fn calibrate_recall(&mut self, tau: f32, target_recall: f64, sample_queries: usize) -> f32 {
        let store = self.columns.store();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xca11b7a7e);
        let n = store.len();
        let q_idx: Vec<usize> = (0..sample_queries.min(n))
            .map(|_| rng.gen_range(0..n))
            .collect();

        let recall_at = |scale: f32| -> f64 {
            let mut found = 0usize;
            let mut truth = 0usize;
            let r_sq = (tau * scale) * (tau * scale);
            for &qi in &q_idx {
                let q = store.get_raw(qi);
                let tables = self.adc_tables(q);
                for x in 0..n {
                    let true_match = Euclidean.dist(q, store.get_raw(x)) <= tau;
                    if true_match {
                        truth += 1;
                        if self.adc_dist_sq(&tables, x) <= r_sq {
                            found += 1;
                        }
                    }
                }
            }
            if truth == 0 {
                1.0
            } else {
                found as f64 / truth as f64
            }
        };

        // Monotone in scale: binary search the smallest adequate multiplier.
        // The upper bound is generous because at tight τ the quantisation
        // error can dwarf the radius.
        let (mut lo, mut hi) = (0.5f32, 16.0f32);
        if recall_at(hi) < target_recall {
            self.radius_scale = hi;
            return hi;
        }
        for _ in 0..20 {
            let mid = (lo + hi) / 2.0;
            if recall_at(mid) >= target_recall {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        self.radius_scale = hi;
        hi
    }

    /// Approximate per-pair match decision (used by the "our join with
    /// PQ-85" effectiveness row): ADC distance within the scaled radius.
    pub fn approx_matches(&self, tables: &[f32], x: usize, tau: f32) -> bool {
        let r = tau * self.radius_scale;
        self.adc_dist_sq(tables, x) <= r * r
    }
}

/// Lloyd's k-means over one subspace of a sample.
fn train_kmeans(
    store: &VectorStore,
    sample: &[usize],
    lo: usize,
    hi: usize,
    ks: usize,
    iters: usize,
    rng: &mut StdRng,
) -> Vec<f32> {
    let dsub = hi - lo;
    let ks = ks.min(sample.len().max(1));
    // Init: distinct random sample points.
    let mut centroids = Vec::with_capacity(ks * dsub);
    for i in 0..ks {
        let p = sample[i % sample.len()];
        centroids.extend_from_slice(&store.get_raw(p)[lo..hi]);
    }
    let mut assign = vec![0u8; sample.len()];
    for _ in 0..iters {
        // Assign.
        for (si, &p) in sample.iter().enumerate() {
            assign[si] = nearest_centroid(&store.get_raw(p)[lo..hi], &centroids, dsub);
        }
        // Update.
        let mut sums = vec![0.0f32; ks * dsub];
        let mut counts = vec![0u32; ks];
        for (si, &p) in sample.iter().enumerate() {
            let c = assign[si] as usize;
            counts[c] += 1;
            for (dst, src) in sums[c * dsub..(c + 1) * dsub]
                .iter_mut()
                .zip(&store.get_raw(p)[lo..hi])
            {
                *dst += src;
            }
        }
        for c in 0..ks {
            if counts[c] == 0 {
                // Re-seed dead centroids from a random sample point.
                let p = sample[rng.gen_range(0..sample.len())];
                centroids[c * dsub..(c + 1) * dsub].copy_from_slice(&store.get_raw(p)[lo..hi]);
            } else {
                let inv = 1.0 / counts[c] as f32;
                for (dst, src) in centroids[c * dsub..(c + 1) * dsub]
                    .iter_mut()
                    .zip(&sums[c * dsub..])
                {
                    *dst = src * inv;
                }
            }
        }
    }
    // Pad to the requested ks if the sample was tiny.
    centroids
}

#[inline]
fn nearest_centroid(v: &[f32], centroids: &[f32], dsub: usize) -> u8 {
    let ks = centroids.len() / dsub;
    let mut best = (0usize, f32::INFINITY);
    for c in 0..ks {
        let cent = &centroids[c * dsub..(c + 1) * dsub];
        let mut acc = 0.0f32;
        for (a, b) in v.iter().zip(cent.iter()) {
            let d = a - b;
            acc += d * d;
        }
        if acc < best.1 {
            best = (c, acc);
        }
    }
    best.0 as u8
}

impl VectorJoinSearch for PqIndex<'_> {
    fn name(&self) -> &'static str {
        "PQ"
    }

    fn search(
        &self,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
    ) -> Result<(Vec<SearchHit>, SearchStats)> {
        if query.is_empty() {
            return Err(PexesoError::EmptyInput("query column with zero vectors"));
        }
        let tau = tau.resolve(&Euclidean, self.columns.dim())?;
        let t_abs = t.resolve(query.len())?;
        let started = std::time::Instant::now();
        let mut stats = SearchStats::new();
        let n_q = query.len();
        let tables: Vec<Vec<f32>> = query.iter().map(|q| self.adc_tables(q)).collect();
        let mut hits = Vec::new();
        for (ci, col) in self.columns.columns().iter().enumerate() {
            let mut count = 0usize;
            for (qi, tbl) in tables.iter().enumerate() {
                let mut matched = false;
                for x in col.vector_range() {
                    // Table lookups, not true distance computations; count
                    // them separately as lemma2-style cheap checks.
                    stats.lemma2_matched += 1;
                    if self.approx_matches(tbl, x as usize, tau) {
                        matched = true;
                        break;
                    }
                }
                if matched {
                    count += 1;
                    if count >= t_abs {
                        stats.early_joinable += 1;
                        break;
                    }
                } else if count + (n_q - qi - 1) < t_abs {
                    break;
                }
            }
            if count >= t_abs {
                hits.push(SearchHit {
                    column: ColumnId(ci as u32),
                    match_count: count as u32,
                });
            }
        }
        stats.total_time = started.elapsed();
        stats.verify_time = stats.total_time;
        Ok((hits, stats))
    }

    fn index_bytes(&self) -> usize {
        self.codes.len() + self.codebooks.iter().map(|c| c.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pexeso_core::search::naive_search;

    fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    fn instance(seed: u64, n_cols: usize, col_len: usize, nq: usize) -> (ColumnSet, VectorStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 12;
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng, dim)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng, dim);
            query.push(&v).unwrap();
        }
        (columns, query)
    }

    #[test]
    fn build_and_encode_shapes() {
        let (columns, _) = instance(1, 5, 20, 1);
        let pq = PqIndex::build(&columns, PqConfig::default()).unwrap();
        assert_eq!(pq.codes.len(), columns.n_vectors() * 5);
        assert_eq!(pq.codebooks.len(), 5);
        assert!(pq.index_bytes() > 0);
    }

    #[test]
    fn adc_approximates_true_distance() {
        let (columns, query) = instance(2, 6, 30, 10);
        let pq = PqIndex::build(
            &columns,
            PqConfig {
                num_centroids: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let mut err_acc = 0.0f64;
        let mut n = 0usize;
        for q in query.iter() {
            let tables = pq.adc_tables(q);
            for x in 0..columns.n_vectors() {
                let true_d = Euclidean.dist(q, columns.store().get_raw(x));
                let adc_d = pq.adc_dist_sq(&tables, x).sqrt();
                err_acc += (true_d - adc_d).abs() as f64;
                n += 1;
            }
        }
        let mae = err_acc / n as f64;
        assert!(mae < 0.35, "ADC mean absolute error too large: {mae}");
    }

    #[test]
    fn calibration_reaches_target_recall() {
        let (columns, _) = instance(3, 8, 40, 1);
        let mut pq = PqIndex::build(&columns, PqConfig::default()).unwrap();
        let tau = 0.4f32;
        let scale = pq.calibrate_recall(tau, 0.85, 20);
        assert!((0.5..=16.0).contains(&scale));

        // Measure recall on a fresh sample of repository queries.
        let store = columns.store();
        let mut found = 0usize;
        let mut truth = 0usize;
        for qi in (0..store.len()).step_by(13) {
            let q = store.get_raw(qi);
            let tables = pq.adc_tables(q);
            for x in 0..store.len() {
                if Euclidean.dist(q, store.get_raw(x)) <= tau {
                    truth += 1;
                    if pq.approx_matches(&tables, x, tau) {
                        found += 1;
                    }
                }
            }
        }
        let recall = found as f64 / truth.max(1) as f64;
        assert!(recall >= 0.75, "calibrated recall too low: {recall}");
    }

    #[test]
    fn search_is_approximately_right() {
        // PQ is approximate; require substantial overlap with the truth,
        // not equality.
        let (columns, query) = instance(4, 12, 25, 8);
        let mut pq = PqIndex::build(&columns, PqConfig::default()).unwrap();
        let tau = Tau::Ratio(0.25);
        let t = JoinThreshold::Ratio(0.3);
        pq.calibrate_recall(0.5, 0.85, 16);
        let (got, _) = pq.search(&query, tau, t).unwrap();
        let (expected, _) = naive_search(&columns, &Euclidean, &query, tau, t, false).unwrap();
        let g: std::collections::HashSet<u32> = got.iter().map(|h| h.column.0).collect();
        let e: std::collections::HashSet<u32> = expected.iter().map(|h| h.column.0).collect();
        if !e.is_empty() {
            let inter = g.intersection(&e).count();
            let recall = inter as f64 / e.len() as f64;
            assert!(
                recall >= 0.5,
                "PQ column recall too low: {recall} ({g:?} vs {e:?})"
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let (columns, _) = instance(5, 2, 5, 1);
        assert!(PqIndex::build(
            &columns,
            PqConfig {
                num_subspaces: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(PqIndex::build(
            &columns,
            PqConfig {
                num_subspaces: 13,
                ..Default::default()
            }
        )
        .is_err());
        assert!(PqIndex::build(
            &columns,
            PqConfig {
                num_centroids: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn uneven_dimension_split_covers_all_dims() {
        let (columns, _) = instance(6, 2, 8, 1);
        // dim 12 into 5 subspaces: 3,3,2,2,2.
        let pq = PqIndex::build(
            &columns,
            PqConfig {
                num_subspaces: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(*pq.bounds.last().unwrap(), 12);
        assert_eq!(pq.bounds.len(), 6);
        let widths: Vec<usize> = pq.bounds.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(widths, vec![3, 3, 2, 2, 2]);
    }
}
