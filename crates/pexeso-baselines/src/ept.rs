//! EPT: exact joinable-column search with an extreme-pivot table
//! (Ruiz et al., SISAP'13; the pivot-table baseline Chen et al. recommend).
//!
//! A set of well-separated pivots is chosen (farthest-first traversal, the
//! "extreme" part) and the distance from every repository vector to every
//! pivot is tabulated. A query computes its own pivot distances once, then
//! scans the table: a vector survives only if no pivot certifies
//! `|d(q,p) − d(x,p)| > τ` (the Lemma-1 bound); survivors pay an exact
//! distance. Early termination mirrors the other methods.

use pexeso_core::column::{ColumnId, ColumnSet};
use pexeso_core::error::{PexesoError, Result};
use pexeso_core::metric::Metric;
use pexeso_core::search::SearchHit;
use pexeso_core::stats::SearchStats;
use pexeso_core::vector::VectorStore;
use pexeso_core::{JoinThreshold, PivotSelection, Tau};

use crate::VectorJoinSearch;

/// The pivot table index.
pub struct EptIndex<'a, M: Metric> {
    columns: &'a ColumnSet,
    metric: M,
    pivots: Vec<Vec<f32>>,
    /// Row-major: `table[x * k + j] = d(x, p_j)`.
    table: Vec<f32>,
    k: usize,
}

impl<'a, M: Metric> EptIndex<'a, M> {
    /// Build with `k` extreme pivots.
    pub fn build(columns: &'a ColumnSet, metric: M, k: usize, seed: u64) -> Result<Self> {
        if columns.n_vectors() == 0 {
            return Err(PexesoError::EmptyInput("EPT over empty repository"));
        }
        let pivots = pexeso_core::pivot::select_pivots(
            columns.store(),
            &metric,
            k,
            PivotSelection::FarthestFirst,
            seed,
        )?;
        let k = pivots.len();
        let store = columns.store();
        let mut table = Vec::with_capacity(store.len() * k);
        for x in store.iter() {
            for p in &pivots {
                table.push(metric.dist(x, p));
            }
        }
        Ok(Self {
            columns,
            metric,
            pivots,
            table,
            k,
        })
    }

    #[inline]
    fn pivot_row(&self, x: usize) -> &[f32] {
        &self.table[x * self.k..(x + 1) * self.k]
    }
}

impl<M: Metric> VectorJoinSearch for EptIndex<'_, M> {
    fn name(&self) -> &'static str {
        "EPT"
    }

    fn search(
        &self,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
    ) -> Result<(Vec<SearchHit>, SearchStats)> {
        if query.is_empty() {
            return Err(PexesoError::EmptyInput("query column with zero vectors"));
        }
        let tau = tau.resolve(&self.metric, self.columns.dim())?;
        let t_abs = t.resolve(query.len())?;
        let started = std::time::Instant::now();
        let mut stats = SearchStats::new();

        // Query pivot distances, computed once.
        let mut q_table = Vec::with_capacity(query.len() * self.k);
        for q in query.iter() {
            for p in &self.pivots {
                stats.mapping_distances += 1;
                q_table.push(self.metric.dist(q, p));
            }
        }

        let n_q = query.len();
        let mut hits = Vec::new();
        for (ci, col) in self.columns.columns().iter().enumerate() {
            let mut count = 0usize;
            for qi in 0..n_q {
                let q_piv = &q_table[qi * self.k..(qi + 1) * self.k];
                let qv = query.get_raw(qi);
                let mut matched = false;
                for x in col.vector_range() {
                    let x_piv = self.pivot_row(x as usize);
                    let filtered = q_piv
                        .iter()
                        .zip(x_piv.iter())
                        .any(|(a, b)| (a - b).abs() > tau);
                    if filtered {
                        stats.lemma1_filtered += 1;
                        continue;
                    }
                    stats.distance_computations += 1;
                    if self
                        .metric
                        .dist(qv, self.columns.store().get_raw(x as usize))
                        <= tau
                    {
                        matched = true;
                        break;
                    }
                }
                if matched {
                    count += 1;
                    if count >= t_abs {
                        stats.early_joinable += 1;
                        break;
                    }
                } else if count + (n_q - qi - 1) < t_abs {
                    stats.lemma7_pruned += 1;
                    break;
                }
            }
            if count >= t_abs {
                hits.push(SearchHit {
                    column: ColumnId(ci as u32),
                    match_count: count as u32,
                });
            }
        }
        stats.total_time = started.elapsed();
        stats.verify_time = stats.total_time;
        Ok((hits, stats))
    }

    fn index_bytes(&self) -> usize {
        self.table.len() * 4 + self.pivots.iter().map(|p| p.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pexeso_core::metric::Euclidean;
    use pexeso_core::search::naive_search;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    fn instance(seed: u64, n_cols: usize, col_len: usize, nq: usize) -> (ColumnSet, VectorStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 10;
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng, dim)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng, dim);
            query.push(&v).unwrap();
        }
        (columns, query)
    }

    #[test]
    fn agrees_with_naive() {
        for seed in [1u64, 2] {
            let (columns, query) = instance(seed, 10, 25, 8);
            let ept = EptIndex::build(&columns, Euclidean, 4, 7).unwrap();
            for tau in [Tau::Ratio(0.05), Tau::Ratio(0.25)] {
                for t in [JoinThreshold::Ratio(0.3), JoinThreshold::Ratio(0.8)] {
                    let (expected, _) =
                        naive_search(&columns, &Euclidean, &query, tau, t, false).unwrap();
                    let (got, _) = ept.search(&query, tau, t).unwrap();
                    let gi: Vec<_> = got.iter().map(|h| h.column).collect();
                    let ei: Vec<_> = expected.iter().map(|h| h.column).collect();
                    assert_eq!(gi, ei, "seed={seed} tau={tau:?} t={t:?}");
                }
            }
        }
    }

    #[test]
    fn pivot_filter_reduces_exact_distances() {
        let (columns, query) = instance(3, 10, 40, 8);
        let ept = EptIndex::build(&columns, Euclidean, 5, 7).unwrap();
        let (_, stats) = ept
            .search(&query, Tau::Ratio(0.05), JoinThreshold::Ratio(0.9))
            .unwrap();
        let (_, naive_stats) = naive_search(
            &columns,
            &Euclidean,
            &query,
            Tau::Ratio(0.05),
            JoinThreshold::Ratio(0.9),
            false,
        )
        .unwrap();
        assert!(
            stats.distance_computations < naive_stats.distance_computations,
            "EPT {} vs naive {}",
            stats.distance_computations,
            naive_stats.distance_computations
        );
        assert!(stats.lemma1_filtered > 0);
    }

    #[test]
    fn empty_inputs_rejected() {
        let columns = ColumnSet::new(4);
        assert!(EptIndex::build(&columns, Euclidean, 3, 7).is_err());
        let (columns, _) = instance(4, 2, 5, 1);
        let ept = EptIndex::build(&columns, Euclidean, 2, 7).unwrap();
        let empty = VectorStore::new(10);
        assert!(ept
            .search(&empty, Tau::Ratio(0.1), JoinThreshold::Count(1))
            .is_err());
    }

    #[test]
    fn index_bytes_scales_with_pivots() {
        let (columns, _) = instance(5, 4, 10, 1);
        let e2 = EptIndex::build(&columns, Euclidean, 2, 7).unwrap();
        let e4 = EptIndex::build(&columns, Euclidean, 4, 7).unwrap();
        assert!(e4.index_bytes() > e2.index_bytes());
    }
}
