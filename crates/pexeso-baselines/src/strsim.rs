//! String similarity primitives used by the Table IV/V baselines.

/// Lowercased alphanumeric tokens (the same convention the embedding
//  substrate uses, re-implemented locally to keep this crate decoupled).
pub fn tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Levenshtein distance with an early-exit bound: returns `None` when the
/// distance provably exceeds `max`. Classic banded DP over chars.
pub fn edit_distance_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > max {
        return None;
    }
    if n == 0 {
        return (m <= max).then_some(m);
    }
    if m == 0 {
        return (n <= max).then_some(n);
    }
    // Band half-width `max` around the diagonal.
    let inf = usize::MAX / 2;
    let mut prev = vec![inf; m + 1];
    let mut cur = vec![inf; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(max.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(max).max(1);
        let hi = (i + max).min(m);
        cur[lo - 1] = if lo == 1 { i } else { inf };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let v = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            cur[j] = v;
            row_min = row_min.min(v);
        }
        if hi < m {
            cur[hi + 1..].iter_mut().for_each(|x| *x = inf);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[m] <= max).then_some(prev[m])
}

/// Normalised edit similarity in [0, 1]: `1 − dist / max(|a|, |b|)`.
/// Returns `None` (sim below `min_sim`) without computing the full DP when
/// the bound allows.
pub fn edit_similarity(a: &str, b: &str, min_sim: f64) -> Option<f64> {
    let la = a.chars().count();
    let lb = b.chars().count();
    let longest = la.max(lb);
    if longest == 0 {
        return Some(1.0);
    }
    let max_errors = ((1.0 - min_sim) * longest as f64).floor() as usize;
    edit_distance_bounded(a, b, max_errors).map(|d| 1.0 - d as f64 / longest as f64)
}

/// Jaccard similarity of the token sets of two strings.
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<String> = tokens(a).into_iter().collect();
    let sb: HashSet<String> = tokens(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance_bounded("kitten", "sitting", 5), Some(3));
        assert_eq!(edit_distance_bounded("abc", "abc", 0), Some(0));
        assert_eq!(edit_distance_bounded("", "abc", 5), Some(3));
        assert_eq!(edit_distance_bounded("abc", "", 2), None);
    }

    #[test]
    fn edit_distance_early_exit() {
        assert_eq!(edit_distance_bounded("kitten", "sitting", 2), None);
        assert_eq!(edit_distance_bounded("aaaa", "zzzz", 3), None);
    }

    #[test]
    fn edit_distance_unicode() {
        assert_eq!(edit_distance_bounded("café", "cafe", 1), Some(1));
    }

    #[test]
    fn edit_similarity_thresholding() {
        let s = edit_similarity("population", "popluation", 0.7).unwrap();
        assert!(s >= 0.8, "transposition = 2 edits over 10 chars: {s}");
        assert!(edit_similarity("population", "zebra", 0.7).is_none());
        assert_eq!(edit_similarity("", "", 0.5), Some(1.0));
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard_tokens("white", "White"), 1.0);
        assert_eq!(jaccard_tokens("a b", "b c"), 1.0 / 3.0);
        assert_eq!(jaccard_tokens("x", "y"), 0.0);
        assert_eq!(jaccard_tokens("", ""), 1.0);
    }

    #[test]
    fn banded_dp_agrees_with_full_dp() {
        // Reference full DP.
        fn full(a: &str, b: &str) -> usize {
            let a: Vec<char> = a.chars().collect();
            let b: Vec<char> = b.chars().collect();
            let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
            for (i, row) in dp.iter_mut().enumerate() {
                row[0] = i;
            }
            for (j, cell) in dp[0].iter_mut().enumerate() {
                *cell = j;
            }
            for i in 1..=a.len() {
                for j in 1..=b.len() {
                    let c = usize::from(a[i - 1] != b[j - 1]);
                    dp[i][j] = (dp[i - 1][j] + 1)
                        .min(dp[i][j - 1] + 1)
                        .min(dp[i - 1][j - 1] + c);
                }
            }
            dp[a.len()][b.len()]
        }
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let len_a = rng.gen_range(0..10);
            let len_b = rng.gen_range(0..10);
            let a: String = (0..len_a)
                .map(|_| (b'a' + rng.gen_range(0..4)) as char)
                .collect();
            let b: String = (0..len_b)
                .map(|_| (b'a' + rng.gen_range(0..4)) as char)
                .collect();
            let truth = full(&a, &b);
            for max in 0..10 {
                let got = edit_distance_bounded(&a, &b, max);
                if truth <= max {
                    assert_eq!(got, Some(truth), "a={a} b={b} max={max}");
                } else {
                    assert_eq!(got, None, "a={a} b={b} max={max} truth={truth}");
                }
            }
        }
    }
}
