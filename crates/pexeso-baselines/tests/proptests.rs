//! Property tests for the baselines: cover-tree range queries are exact,
//! PQ ADC error is bounded by construction, string matchers behave like
//! their mathematical definitions.

use proptest::prelude::*;

use pexeso_baselines::covertree::CoverTreeIndex;
use pexeso_baselines::strsim::{edit_distance_bounded, jaccard_tokens};
use pexeso_core::column::ColumnSet;
use pexeso_core::metric::{Euclidean, Metric};
use pexeso_core::stats::SearchStats;

fn unit_vec(dim: usize, seed: u64) -> Vec<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Cover-tree range queries return exactly the brute-force result for
    /// arbitrary data and radii.
    #[test]
    fn cover_tree_range_query_exact(seed in 0u64..5000, radius in 0.01f32..1.8) {
        let dim = 8;
        let mut columns = ColumnSet::new(dim);
        let vecs: Vec<Vec<f32>> = (0..60).map(|i| unit_vec(dim, seed * 101 + i)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns.add_column("t", "c", 0, refs).unwrap();
        let tree = CoverTreeIndex::build(&columns, Euclidean).unwrap();
        let q = unit_vec(dim, seed ^ 0xabcdef);
        let mut stats = SearchStats::new();
        let mut got = Vec::new();
        tree.range_query(&q, radius, &mut stats, &mut got);
        got.sort_unstable();
        let expected: Vec<u32> = (0..60u32)
            .filter(|&i| Euclidean.dist(&q, &vecs[i as usize]) <= radius)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Edit distance is a metric: symmetric, zero iff equal (on our
    /// bounded variant when within bounds), triangle inequality.
    #[test]
    fn edit_distance_metric_properties(
        a in "[a-c]{0,8}",
        b in "[a-c]{0,8}",
        c in "[a-c]{0,8}",
    ) {
        let d = |x: &str, y: &str| edit_distance_bounded(x, y, 32).unwrap();
        prop_assert_eq!(d(&a, &b), d(&b, &a));
        prop_assert_eq!(d(&a, &a), 0);
        if d(&a, &b) == 0 {
            prop_assert_eq!(&a, &b);
        }
        prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c), "triangle");
    }

    /// Bounded edit distance agrees with itself under tighter bounds.
    #[test]
    fn edit_distance_bound_consistency(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
        let full = edit_distance_bounded(&a, &b, 64).unwrap();
        for max in 0..12usize {
            match edit_distance_bounded(&a, &b, max) {
                Some(d) => {
                    prop_assert_eq!(d, full);
                    prop_assert!(full <= max);
                }
                None => prop_assert!(full > max),
            }
        }
    }

    /// Jaccard similarity lives in [0, 1], is symmetric, and equals 1 for
    /// identical token sets.
    #[test]
    fn jaccard_properties(a in "[a-c ]{0,16}", b in "[a-c ]{0,16}") {
        let j = jaccard_tokens(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - jaccard_tokens(&b, &a)).abs() < 1e-12);
        prop_assert!((jaccard_tokens(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// A query identical to a stored vector is always found at any radius.
    #[test]
    fn cover_tree_self_query(seed in 0u64..2000) {
        let dim = 6;
        let mut columns = ColumnSet::new(dim);
        let vecs: Vec<Vec<f32>> = (0..30).map(|i| unit_vec(dim, seed * 31 + i)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns.add_column("t", "c", 0, refs).unwrap();
        let tree = CoverTreeIndex::build(&columns, Euclidean).unwrap();
        let mut stats = SearchStats::new();
        let mut got = Vec::new();
        tree.range_query(&vecs[7], 1e-6, &mut stats, &mut got);
        prop_assert!(got.contains(&7));
    }
}
