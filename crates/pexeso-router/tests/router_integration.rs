//! The distributed-serving differential suite: a router over shard
//! daemons must answer **byte-identically** to a single-node
//! `PartitionedLake` over the un-split source — hits and outcome — for
//! every metric, both query modes, shard counts 1–4, and adversarial
//! cross-shard tie layouts; replica failure mid-suite must change no
//! answer bytes.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::Duration;

use pexeso_core::column::ColumnSet;
use pexeso_core::config::{IndexOptions, JoinThreshold, PivotSelection, Tau};
use pexeso_core::error::PexesoError;
use pexeso_core::metric::{Angular, Chebyshev, Euclidean, Manhattan};
use pexeso_core::outofcore::{GlobalHit, LakeManifest, PartitionedLake};
use pexeso_core::partition::{PartitionConfig, PartitionMethod};
use pexeso_core::query::{Query, QueryOutcome, Queryable};
use pexeso_core::trace::TraceLevel;
use pexeso_core::vector::VectorStore;
use pexeso_delta::{ingest_columns, IngestColumn};
use pexeso_router::daemon::{RouterServeConfig, RouterServer};
use pexeso_router::router::{Router, RouterConfig};
use pexeso_router::shardmap::{ShardMap, ShardSpec};
use pexeso_router::split::{plan_shards, shard_dir_name, split_lake, SHARD_MAP_FILE};
use pexeso_serve::protocol::WireHit;
use pexeso_serve::resilient::BackoffPolicy;
use pexeso_serve::{
    stat_value, validate_prometheus, ResilientConfig, ServeClient, ServeConfig, Server,
    ServerHandle,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 12;

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// A lake where the first columns contain exact copies of the query
/// vectors (guaranteed matches at any τ) and the rest are random.
fn workload(seed: u64, n_cols: usize, tag: &str) -> (ColumnSet, VectorStore) {
    let mut rng = StdRng::seed_from_u64(seed);
    let query_vecs: Vec<Vec<f32>> = (0..6).map(|_| unit(&mut rng)).collect();
    let mut columns = ColumnSet::new(DIM);
    for c in 0..n_cols {
        let mut vecs: Vec<Vec<f32>> = (0..15).map(|_| unit(&mut rng)).collect();
        if c < 3 {
            for (slot, q) in vecs.iter_mut().zip(&query_vecs) {
                slot.clone_from(q);
            }
        }
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column(&format!("{tag}_tab{c}"), "key", c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for q in &query_vecs {
        query.push(q).unwrap();
    }
    (columns, query)
}

/// An adversarial tie workload: every column holds an exact-copy count
/// from `counts`, so at a tight τ the match counts are known and heavily
/// tied — the top-k boundary lands inside a tie class whose members are
/// deliberately spread across the whole external-id range (and thus
/// across every shard of any contiguous cut).
fn tie_workload(seed: u64, counts: &[u32], tag: &str) -> (ColumnSet, VectorStore) {
    let mut rng = StdRng::seed_from_u64(seed);
    let query_vecs: Vec<Vec<f32>> = (0..6).map(|_| unit(&mut rng)).collect();
    let mut columns = ColumnSet::new(DIM);
    for (c, &count) in counts.iter().enumerate() {
        let mut vecs: Vec<Vec<f32>> = (0..15).map(|_| unit(&mut rng)).collect();
        for (slot, q) in vecs.iter_mut().zip(query_vecs.iter().take(count as usize)) {
            slot.clone_from(q);
        }
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column(&format!("{tag}_tab{c}"), "key", c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for q in &query_vecs {
        query.push(q).unwrap();
    }
    (columns, query)
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pexeso_router_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build + persist a deployment under `metric`, manifest included.
fn deploy(dir: &Path, columns: &ColumnSet, metric: &str) -> PartitionedLake {
    let config = PartitionConfig {
        k: 3,
        method: PartitionMethod::JsdKmeans,
        ..Default::default()
    };
    let options = IndexOptions {
        num_pivots: 3,
        levels: Some(3),
        pivot_selection: PivotSelection::Pca,
        seed: 7,
        ..Default::default()
    };
    let lake = match metric {
        "euclidean" => PartitionedLake::build(columns, Euclidean, &config, &options, dir),
        "manhattan" => PartitionedLake::build(columns, Manhattan, &config, &options, dir),
        "chebyshev" => PartitionedLake::build(columns, Chebyshev, &config, &options, dir),
        "angular" => PartitionedLake::build(columns, Angular, &config, &options, dir),
        other => panic!("unknown metric {other}"),
    }
    .unwrap();
    let mut manifest = LakeManifest::next_build(dir, "test", DIM).unwrap();
    manifest.metric = metric.to_string();
    manifest.write(dir).unwrap();
    lake
}

/// Failover tuning fast enough for tests: milliseconds, not seconds.
fn fast_client() -> ResilientConfig {
    ResilientConfig {
        backoff: BackoffPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            multiplier: 3,
            max_retries: 3,
        },
        failure_threshold: 2,
        open_for: Duration::from_millis(200),
        timeout: Some(Duration::from_secs(5)),
        ..ResilientConfig::default()
    }
}

/// Split `src` into `shards` deployments, start one daemon per shard,
/// and build the router over the live addresses.
fn start_cluster(src: &Path, shards: usize, name: &str) -> (Vec<ServerHandle>, Router) {
    let out = tempdir(&format!("{name}_shards"));
    let map = split_lake(src, shards, &out).unwrap();
    let mut daemons = Vec::new();
    let mut specs = Vec::new();
    for (i, spec) in map.shards().iter().enumerate() {
        let handle = Server::start(
            &out.join(shard_dir_name(i)),
            "127.0.0.1:0",
            ServeConfig::default(),
        )
        .unwrap();
        specs.push(ShardSpec {
            lo: spec.lo,
            hi: spec.hi,
            replicas: vec![handle.addr().to_string()],
        });
        daemons.push(handle);
    }
    let router = Router::new(
        ShardMap::new(specs).unwrap(),
        RouterConfig {
            client: fast_client(),
        },
    )
    .unwrap();
    (daemons, router)
}

fn wire(hits: &[GlobalHit]) -> Vec<WireHit> {
    hits.iter().map(WireHit::from).collect()
}

/// Assert routed ≡ direct for a grid of taus, thresholds, and ks —
/// byte-identical hits (via the wire encoding) and identical outcome.
fn assert_differential(direct: &dyn Queryable, routed: &dyn Queryable, query: &VectorStore) {
    for tau in [Tau::Ratio(0.05), Tau::Ratio(0.2)] {
        for t in [JoinThreshold::Ratio(0.5), JoinThreshold::Count(2)] {
            let q = Query::threshold(tau, t);
            let d = direct.execute(&q, query).unwrap();
            let r = routed.execute(&q, query).unwrap();
            assert_eq!(wire(&d.hits), wire(&r.hits), "threshold {tau:?} {t:?}");
            assert_eq!(d.outcome, r.outcome, "threshold outcome {tau:?} {t:?}");
        }
        for k in [1usize, 3, 7, 100] {
            let q = Query::topk(tau, k);
            let d = direct.execute(&q, query).unwrap();
            let r = routed.execute(&q, query).unwrap();
            assert_eq!(wire(&d.hits), wire(&r.hits), "topk {tau:?} k={k}");
            assert_eq!(d.outcome, r.outcome, "topk outcome {tau:?} k={k}");
        }
    }
}

#[test]
fn routed_matches_single_node_across_shard_counts() {
    let dir = tempdir("counts_src");
    let (columns, query) = workload(11, 10, "a");
    let lake = deploy(&dir, &columns, "euclidean");
    for shards in 1..=4usize {
        let (daemons, router) = start_cluster(&dir, shards, &format!("counts{shards}"));
        assert_differential(&lake, &router, &query);
        for d in daemons {
            d.shutdown();
        }
    }
}

#[test]
fn routed_matches_single_node_across_metrics() {
    for (i, metric) in ["euclidean", "manhattan", "chebyshev", "angular"]
        .iter()
        .enumerate()
    {
        let dir = tempdir(&format!("metric_{metric}_src"));
        let (columns, query) = workload(23 + i as u64, 9, metric);
        let lake = deploy(&dir, &columns, metric);
        let (daemons, router) = start_cluster(&dir, 3, &format!("metric_{metric}"));
        assert_differential(&lake, &router, &query);
        for d in daemons {
            d.shutdown();
        }
    }
}

#[test]
fn adversarial_cross_shard_ties_rank_identically() {
    // Tie classes spread across the id range: counts 2 and 3 recur on
    // ids that land on *different* shards of any contiguous cut, so the
    // k-th slot regularly falls inside a tie whose correct members (by
    // external-id ascending) interleave across shards.
    let counts = [2u32, 3, 2, 1, 3, 2, 0, 2, 3, 2, 1, 2, 3, 2, 0, 2];
    let dir = tempdir("ties_src");
    let (columns, query) = tie_workload(37, &counts, "tie");
    let lake = deploy(&dir, &columns, "euclidean");
    for shards in [2usize, 3, 4] {
        let (daemons, router) = start_cluster(&dir, shards, &format!("ties{shards}"));
        // Tight τ: planted copies match, random vectors don't — the
        // ranking is fully determined by the tie structure above.
        for k in 1..=counts.len() + 2 {
            let q = Query::topk(Tau::Ratio(0.01), k);
            let d = lake.execute(&q, &query).unwrap();
            let r = router.execute(&q, &query).unwrap();
            assert_eq!(wire(&d.hits), wire(&r.hits), "shards={shards} k={k}");
            assert_eq!(d.outcome, r.outcome);
        }
        for t in [JoinThreshold::Count(2), JoinThreshold::Count(3)] {
            let q = Query::threshold(Tau::Ratio(0.01), t);
            let d = lake.execute(&q, &query).unwrap();
            let r = router.execute(&q, &query).unwrap();
            assert_eq!(wire(&d.hits), wire(&r.hits), "shards={shards} {t:?}");
        }
        for d in daemons {
            d.shutdown();
        }
    }
}

#[test]
fn range_filter_and_reask_handle_superset_daemons() {
    // One daemon serves the FULL lake, but the map assigns it two
    // sub-ranges: every reply contains out-of-range columns the router
    // must filter, and a truncated top-k reply must trigger the over-ask
    // loop to recover crowded-out in-range columns.
    let dir = tempdir("superset_src");
    let (columns, query) = workload(51, 12, "s");
    let lake = deploy(&dir, &columns, "euclidean");
    let daemon = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = daemon.addr().to_string();
    let map = ShardMap::new(vec![
        ShardSpec {
            lo: 0,
            hi: 6,
            replicas: vec![addr.clone()],
        },
        ShardSpec {
            lo: 6,
            hi: u64::MAX,
            replicas: vec![addr],
        },
    ])
    .unwrap();
    let router = Router::new(
        map,
        RouterConfig {
            client: fast_client(),
        },
    )
    .unwrap();
    assert_differential(&lake, &router, &query);
    daemon.shutdown();
}

#[test]
fn replica_kill_and_drain_change_no_answer_bytes() {
    let dir = tempdir("failover_src");
    let (columns, query) = workload(67, 10, "f");
    let lake = deploy(&dir, &columns, "euclidean");
    let out = tempdir("failover_shards");
    let map = split_lake(&dir, 2, &out).unwrap();
    // Shard 0 runs two replicas over the same shard deployment.
    let r0a = Server::start(
        &out.join(shard_dir_name(0)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .unwrap();
    let r0b = Server::start(
        &out.join(shard_dir_name(0)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .unwrap();
    let r1 = Server::start(
        &out.join(shard_dir_name(1)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .unwrap();
    let survivor = r0b.addr().to_string();
    let specs = vec![
        ShardSpec {
            lo: map.shards()[0].lo,
            hi: map.shards()[0].hi,
            replicas: vec![r0a.addr().to_string(), survivor.clone()],
        },
        ShardSpec {
            lo: map.shards()[1].lo,
            hi: map.shards()[1].hi,
            replicas: vec![r1.addr().to_string()],
        },
    ];
    let router = Router::new(
        ShardMap::new(specs).unwrap(),
        RouterConfig {
            client: fast_client(),
        },
    )
    .unwrap();
    let q = Query::topk(Tau::Ratio(0.1), 5);
    let before = router.execute(&q, &query).unwrap();
    assert_eq!(
        wire(&before.hits),
        wire(&lake.execute(&q, &query).unwrap().hits)
    );

    // Administrative drain steers traffic off a replica without error.
    assert_eq!(router.set_drained(&survivor, true), 1);
    assert!(router.shard_statuses()[0]
        .replicas
        .iter()
        .any(|r| r.addr == survivor && r.drained));
    let drained = router.execute(&q, &query).unwrap();
    assert_eq!(wire(&before.hits), wire(&drained.hits));
    assert_eq!(router.set_drained(&survivor, false), 1);

    // Kill replica A outright: failover to B, answers byte-identical.
    r0a.shutdown();
    let after = router.execute(&q, &query).unwrap();
    assert_eq!(wire(&before.hits), wire(&after.hits));
    assert_eq!(before.outcome, after.outcome);
    assert_differential(&lake, &router, &query);

    r0b.shutdown();
    r1.shutdown();
}

#[test]
fn unreachable_shard_is_a_typed_refusal_never_partial() {
    // Bind-then-drop guarantees a dead port.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let router = Router::new(
        ShardMap::new(vec![ShardSpec {
            lo: 0,
            hi: u64::MAX,
            replicas: vec![dead],
        }])
        .unwrap(),
        RouterConfig {
            client: fast_client(),
        },
    )
    .unwrap();
    let (_, query) = workload(5, 4, "u");
    let err = router
        .execute(&Query::topk(Tau::Ratio(0.1), 3), &query)
        .unwrap_err();
    match err {
        PexesoError::Remote(msg) => assert!(msg.contains("shard 0"), "names the shard: {msg}"),
        other => panic!("expected typed Remote refusal, got {other:?}"),
    }
}

#[test]
fn budget_trips_stay_typed_through_the_router() {
    let dir = tempdir("budget_src");
    let (columns, query) = workload(83, 10, "b");
    deploy(&dir, &columns, "euclidean");
    let (daemons, router) = start_cluster(&dir, 2, "budget");
    let q = Query::threshold(Tau::Ratio(0.2), JoinThreshold::Ratio(0.5)).with_budget(
        pexeso_core::query::QueryBudget {
            max_distance_computations: Some(1),
            deadline: None,
        },
    );
    let resp = router.execute(&q, &query).unwrap();
    assert_ne!(
        resp.outcome,
        QueryOutcome::Exact,
        "a spent distance budget must surface as a typed partial outcome"
    );
    for d in daemons {
        d.shutdown();
    }
}

#[test]
fn routed_apply_bumps_only_the_owning_shard() {
    let dir = tempdir("apply_src");
    let (columns, query) = workload(91, 8, "g");
    deploy(&dir, &columns, "euclidean");
    let out = tempdir("apply_shards");
    split_lake(&dir, 2, &out).unwrap();
    let shard1_dir = out.join(shard_dir_name(1));
    // Ingest a guaranteed-match column into the LAST shard's delta log:
    // fresh external ids allocate above the watermark, which the last
    // shard's unbounded range owns.
    let planted: Vec<f32> = (0..query.len())
        .flat_map(|i| query.get(pexeso_core::vector::VectorId(i as u32)).to_vec())
        .collect();
    ingest_columns(
        &shard1_dir,
        &[IngestColumn {
            table_name: "ingested".into(),
            column_name: "key".into(),
            vectors: planted,
        }],
    )
    .unwrap();
    let d0 = Server::start(
        &out.join(shard_dir_name(0)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .unwrap();
    let d1 = Server::start(&shard1_dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let map = split_lake(&dir, 2, &tempdir("apply_ranges")).unwrap();
    let specs = vec![
        ShardSpec {
            lo: map.shards()[0].lo,
            hi: map.shards()[0].hi,
            replicas: vec![d0.addr().to_string()],
        },
        ShardSpec {
            lo: map.shards()[1].lo,
            hi: map.shards()[1].hi,
            replicas: vec![d1.addr().to_string()],
        },
    ];
    let router = Router::new(
        ShardMap::new(specs).unwrap(),
        RouterConfig {
            client: fast_client(),
        },
    )
    .unwrap();
    let q = Query::threshold(Tau::Ratio(0.05), JoinThreshold::Ratio(0.9));
    router.execute(&q, &query).unwrap();
    assert_eq!(router.generations(), vec![1, 1], "both shards at gen 1");

    let (total, delta_columns, _) = router.apply_delta(1).unwrap();
    assert_eq!(delta_columns, 1);
    assert_eq!(total, 3, "router generation is the per-shard sum");
    assert_eq!(
        router.generations(),
        vec![1, 2],
        "APPLY bumps only the owning shard"
    );
    // The published overlay column is now part of routed answers.
    let resp = router.execute(&q, &query).unwrap();
    assert!(
        resp.hits.iter().any(|h| h.table_name == "ingested"),
        "routed answers include the applied delta column: {:?}",
        resp.hits
    );
    // Out-of-range APPLY targets are refused, not guessed.
    assert!(router.apply_delta(7).is_err());

    d0.shutdown();
    d1.shutdown();
}

#[test]
fn router_daemon_speaks_the_serve_protocol() {
    let dir = tempdir("daemon_src");
    let (columns, query) = workload(103, 10, "d");
    let lake = deploy(&dir, &columns, "euclidean");
    let out = tempdir("daemon_shards");
    let map = split_lake(&dir, 2, &out).unwrap();
    let mut daemons = Vec::new();
    let mut specs = Vec::new();
    for (i, spec) in map.shards().iter().enumerate() {
        let h = Server::start(
            &out.join(shard_dir_name(i)),
            "127.0.0.1:0",
            ServeConfig::default(),
        )
        .unwrap();
        specs.push(ShardSpec {
            lo: spec.lo,
            hi: spec.hi,
            replicas: vec![h.addr().to_string()],
        });
        daemons.push(h);
    }
    let map_path = out.join(SHARD_MAP_FILE);
    ShardMap::new(specs).unwrap().write(&map_path).unwrap();
    let handle = RouterServer::start(
        &map_path,
        "127.0.0.1:0",
        RouterServeConfig {
            client: fast_client(),
            ..RouterServeConfig::default()
        },
    )
    .unwrap();
    let client = ServeClient::connect(handle.addr()).unwrap();

    // INFO aggregates the shard deployments.
    let info = client.info().unwrap();
    assert_eq!(info.dim as usize, DIM);
    assert_eq!(info.generation, 2, "sum of two gen-1 shards");

    // Routed queries through the ordinary client are byte-identical to
    // the single-node lake, traced queries carry shard spans.
    for k in [1usize, 4, 20] {
        let q = Query::topk(Tau::Ratio(0.1), k);
        let (resp, meta) = client.execute_detailed(&q, &query).unwrap();
        let direct = lake.execute(&q, &query).unwrap();
        assert_eq!(wire(&direct.hits), wire(&resp.hits), "k={k}");
        assert_eq!(direct.outcome, resp.outcome);
        assert_eq!(meta.generation, 2);
    }
    let traced = client
        .execute_detailed(
            &Query::topk(Tau::Ratio(0.1), 3).with_trace(TraceLevel::Phases),
            &query,
        )
        .unwrap()
        .0;
    let rendered = traced.trace.expect("requested trace travels back").render();
    assert!(rendered.contains("router"), "root span: {rendered}");
    assert!(rendered.contains("shard/0"), "per-shard spans: {rendered}");
    assert!(rendered.contains("shard/1"), "per-shard spans: {rendered}");

    // STATS plane: router-level and per-shard gauges.
    let stats = client.stats_text().unwrap();
    assert_eq!(stat_value(&stats, "shards"), Some(2.0));
    assert!(stats.contains("shard0.range="), "per-shard gauges: {stats}");

    // METRICS plane: well-formed Prometheus exposition.
    let metrics = client.metrics_text().unwrap();
    validate_prometheus(&metrics).expect("router metrics must be valid Prometheus text");
    assert!(metrics.contains("pexeso_router_shards 2"));
    assert!(metrics.contains("pexeso_router_query_latency_microseconds_bucket"));

    // SLOW plane: the traced query above fed the log.
    assert!(client.slow_log_text().unwrap().contains("topk"));

    // RELOAD re-reads the shard map.
    let (_, partitions) = client.reload(None).unwrap();
    assert_eq!(partitions, 2, "router reload reports shard count");

    // Bare APPLY (no shard tail) is refused at the router.
    assert!(client.apply_delta().is_err());

    client.shutdown().unwrap();
    handle.join();
    for d in daemons {
        d.shutdown();
    }
}

#[test]
fn explain_through_the_router_changes_nothing_and_merges() {
    let dir = tempdir("explain_src");
    let (columns, query) = workload(113, 10, "e");
    let lake = deploy(&dir, &columns, "euclidean");
    let (daemons, router) = start_cluster(&dir, 3, "explain");
    for q in [
        Query::threshold(Tau::Ratio(0.2), JoinThreshold::Count(2)),
        Query::topk(Tau::Ratio(0.2), 5),
    ] {
        let direct = lake.execute(&q, &query).unwrap();
        let off = router.execute(&q, &query).unwrap();
        assert!(off.explain.is_none(), "no report unless asked");
        let on = router
            .execute(&q.clone().with_explain(true), &query)
            .unwrap();
        assert_eq!(
            wire(&off.hits),
            wire(&on.hits),
            "explain changed the answer"
        );
        assert_eq!(wire(&direct.hits), wire(&on.hits), "routed ≠ single-node");
        assert_eq!(off.outcome, on.outcome);
        let report = on.explain.expect("requested report travels back merged");
        assert!(report.consistent(), "merged funnel must balance");
        assert!(
            report.topk.is_none(),
            "per-shard top-k trajectories must not compose"
        );
        // The merged funnel keeps the canonical stage order.
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["block", "verify", "columns"]);
    }
    for d in daemons {
        d.shutdown();
    }
}

#[test]
fn routed_meta_carries_request_id_and_slowest_shard() {
    let dir = tempdir("meta_src");
    let (columns, query) = workload(127, 8, "m");
    deploy(&dir, &columns, "euclidean");
    let (daemons, router) = start_cluster(&dir, 2, "meta");
    // A plain query with logging disabled mints nothing: correlation is
    // strictly opt-in, so untraced traffic pays no id bookkeeping.
    let plain = Query::topk(Tau::Ratio(0.1), 3);
    let (_, meta) = router.execute_routed(&plain, &query).unwrap();
    assert_eq!(meta.request_id, None);
    // An explained query makes the router the outermost hop: it mints an
    // id and reports which shard dominated the latency.
    let (_, meta) = router
        .execute_routed(&plain.clone().with_explain(true), &query)
        .unwrap();
    assert!(
        meta.request_id.is_some(),
        "router must mint a correlation id"
    );
    assert!(meta.slowest_shard.is_some_and(|s| s < 2));
    // A caller-supplied id is used verbatim, never re-minted.
    let (_, meta) = router
        .execute_routed(
            &plain.clone().with_explain(true).with_request_id(0xBEEF),
            &query,
        )
        .unwrap();
    assert_eq!(meta.request_id, Some(0xBEEF));
    for d in daemons {
        d.shutdown();
    }
}

#[test]
fn health_rollup_tracks_drain_state() {
    let dir = tempdir("health_src");
    let (columns, _) = workload(131, 8, "h");
    deploy(&dir, &columns, "euclidean");
    let out = tempdir("health_shards");
    let map = split_lake(&dir, 2, &out).unwrap();
    // Shard 0 gets two replicas so a drain degrades instead of downing.
    let r0a = Server::start(
        &out.join(shard_dir_name(0)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .unwrap();
    let r0b = Server::start(
        &out.join(shard_dir_name(0)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .unwrap();
    let r1 = Server::start(
        &out.join(shard_dir_name(1)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .unwrap();
    let drained_addr = r0a.addr().to_string();
    let specs = vec![
        ShardSpec {
            lo: map.shards()[0].lo,
            hi: map.shards()[0].hi,
            replicas: vec![drained_addr.clone(), r0b.addr().to_string()],
        },
        ShardSpec {
            lo: map.shards()[1].lo,
            hi: map.shards()[1].hi,
            replicas: vec![r1.addr().to_string()],
        },
    ];
    let router = Router::new(
        ShardMap::new(specs).unwrap(),
        RouterConfig {
            client: fast_client(),
        },
    )
    .unwrap();
    let healthy = router.health_text(false);
    assert!(healthy.starts_with("status=ready\nshards=2\n"), "{healthy}");
    assert!(healthy.contains("shard0.replicas=2"), "{healthy}");
    assert!(healthy.contains("shard0.available=2"), "{healthy}");

    assert_eq!(router.set_drained(&drained_addr, true), 1);
    let degraded = router.health_text(false);
    assert!(degraded.starts_with("status=degraded"), "{degraded}");
    assert!(degraded.contains("shard0.status=degraded"), "{degraded}");
    assert!(degraded.contains("shard0.available=1"), "{degraded}");
    assert!(degraded.contains("shard1.status=ready"), "{degraded}");

    // Draining the fleet overrides everything; undraining the replica
    // restores ready.
    assert!(router.health_text(true).starts_with("status=draining"));
    assert_eq!(router.set_drained(&drained_addr, false), 1);
    assert!(router.health_text(false).starts_with("status=ready"));

    r0a.shutdown();
    r0b.shutdown();
    r1.shutdown();
}

#[test]
fn router_daemon_observability_verbs_end_to_end() {
    let dir = tempdir("obsd_src");
    let (columns, query) = workload(139, 10, "o");
    deploy(&dir, &columns, "euclidean");
    let out = tempdir("obsd_shards");
    let map = split_lake(&dir, 2, &out).unwrap();
    let mut daemons = Vec::new();
    let mut specs = Vec::new();
    for (i, spec) in map.shards().iter().enumerate() {
        let h = Server::start(
            &out.join(shard_dir_name(i)),
            "127.0.0.1:0",
            ServeConfig::default(),
        )
        .unwrap();
        specs.push(ShardSpec {
            lo: spec.lo,
            hi: spec.hi,
            replicas: vec![h.addr().to_string()],
        });
        daemons.push(h);
    }
    let shard0_addr = specs[0].replicas[0].clone();
    let map_path = out.join(SHARD_MAP_FILE);
    ShardMap::new(specs).unwrap().write(&map_path).unwrap();
    let handle = RouterServer::start(
        &map_path,
        "127.0.0.1:0",
        RouterServeConfig {
            client: fast_client(),
            ..RouterServeConfig::default()
        },
    )
    .unwrap();
    let client = ServeClient::connect(handle.addr()).unwrap();

    // HEALTH: a fully-replicated fleet is ready; draining one replica of
    // a single-replica shard downs that shard and degrades nothing else.
    let health = client.health_text().unwrap();
    assert!(health.starts_with("status=ready\nshards=2\n"), "{health}");
    let ack = client.drain(&shard0_addr, true).unwrap();
    assert!(ack.contains("drained=1"), "{ack}");
    let health = client.health_text().unwrap();
    assert!(health.contains("shard0.status=down"), "{health}");
    assert!(health.contains("shard1.status=ready"), "{health}");
    let ack = client.drain(&shard0_addr, false).unwrap();
    assert!(ack.contains("drained=0"), "{ack}");
    assert!(client.health_text().unwrap().starts_with("status=ready"));
    // Draining an unknown address is a typed refusal.
    assert!(client.drain("10.255.0.1:9", true).is_err());

    // INSPECT: shard-prefixed structural statistics from every shard.
    let inspect = client.inspect_text().unwrap();
    assert!(inspect.contains("shard0.partitions="), "{inspect}");
    assert!(inspect.contains("shard1.vectors="), "{inspect}");
    assert!(!inspect.contains(".error="), "healthy fleet: {inspect}");

    // SLOW: a traced + correlated query lands with its id and the
    // owning-shard attribution.
    let q = Query::topk(Tau::Ratio(0.1), 4)
        .with_trace(TraceLevel::Phases)
        .with_request_id(0xC0FFEE);
    let (resp, _) = client.execute_detailed(&q, &query).unwrap();
    assert!(resp.trace.is_some());
    let slow = client.slow_log_text().unwrap();
    assert!(slow.contains("rid=0000000000c0ffee"), "{slow}");
    assert!(slow.contains("shard="), "{slow}");

    client.shutdown().unwrap();
    handle.join();
    for d in daemons {
        d.shutdown();
    }
}

#[test]
fn shard_plan_is_deterministic_and_matches_split() {
    let dir = tempdir("plan_src");
    let (columns, _) = workload(7, 12, "p");
    deploy(&dir, &columns, "euclidean");
    let plan = plan_shards(&dir, 3).unwrap();
    assert_eq!(plan, plan_shards(&dir, 3).unwrap(), "planning is pure");
    let out = tempdir("plan_out");
    let split = split_lake(&dir, 3, &out).unwrap();
    for (p, s) in plan.shards().iter().zip(split.shards()) {
        assert_eq!((p.lo, p.hi), (s.lo, s.hi), "split executes the plan");
    }
    assert_eq!(
        ShardMap::read(&out.join(SHARD_MAP_FILE)).unwrap(),
        split,
        "written map round-trips"
    );
    // Union exactness: every source column appears in exactly one shard.
    let mut seen = Vec::new();
    for i in 0..3 {
        let shard = PartitionedLake::open(&out.join(shard_dir_name(i))).unwrap();
        for p in 0..shard.num_partitions() {
            let idx = shard.load_partition(p, Euclidean).unwrap();
            for meta in idx.columns().columns() {
                assert!(
                    split.shards()[i].owns(meta.external_id),
                    "shard {i} holds foreign id {}",
                    meta.external_id
                );
                seen.push(meta.external_id);
            }
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..12).collect::<Vec<u64>>(), "exact in union");
}
