//! Offline shard tooling: cut a built lake into per-shard deployment
//! directories by external-id range.
//!
//! `shard-plan` ([`plan_shards`]) computes balanced ranges without
//! writing anything; `shard-split` ([`split_lake`]) materialises one
//! complete deployment per shard — each a normal lake directory any
//! `pexeso serve` daemon can load unchanged. The split is **exact in
//! union**: every column of the source appears in exactly one shard
//! (ranges are disjoint and cover `[0, u64::MAX)`), with its external
//! id, names, and vectors byte-preserved — so a router over the shards
//! answers byte-identically to the source lake (see the exactness
//! argument in [`crate::router`]).
//!
//! Shards are *re-partitioned and re-indexed* from their column subsets
//! rather than carved out of the source's partition files: a shard's
//! columns are a different distribution than the whole lake's, so the
//! k-means partitioning and pivot mappings are rebuilt per shard. This
//! does not perturb answers — match counts are partition-structure
//! independent (the delta suite pins the same property for compaction
//! rebuilds) — and it keeps every shard a first-class deployment
//! instead of a franken-directory of foreign partitions.
//!
//! Splitting refuses a lake with a **live delta log**: unapplied delta
//! columns and tombstones live outside the partition files, and a split
//! that silently dropped them would be exact against the wrong corpus.
//! Compact first (`pexeso compact`), then split.

use std::path::Path;

use pexeso_core::column::ColumnSet;
use pexeso_core::error::{PexesoError, Result};
use pexeso_core::metric::{Angular, Chebyshev, Euclidean, Manhattan, Metric};
use pexeso_core::outofcore::{LakeManifest, PartitionedLake};
use pexeso_core::partition::PartitionConfig;
use pexeso_delta::DeltaLake;

use crate::shardmap::{ShardMap, ShardSpec};

/// File name of the map a split writes next to its shard directories.
pub const SHARD_MAP_FILE: &str = "shardmap.txt";

/// One column lifted out of the source lake, vectors and all.
struct ExtractedColumn {
    table_name: String,
    column_name: String,
    external_id: u64,
    /// Row-major vectors (each `dim` long).
    rows: Vec<Vec<f32>>,
}

/// What a split needs to know about the source deployment.
struct Source {
    manifest: LakeManifest,
    /// Live (non-tombstoned) columns, sorted by external id.
    columns: Vec<ExtractedColumn>,
    /// Partition count of the source (sizes per-shard partitioning).
    partitions: usize,
    /// Index options the source was built with (persisted per partition);
    /// shards inherit them so re-indexing preserves build knobs.
    options: pexeso_core::config::IndexOptions,
}

/// Directory name of shard `i` under the split output directory.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard_{i:02}")
}

/// Compute a balanced `shards`-way plan for the lake at `dir` without
/// writing anything: ranges hold equal column counts (±1), cover all of
/// `[0, u64::MAX)` (so future ids land somewhere), and carry the `-`
/// unassigned-replica placeholder for the operator to fill in.
pub fn plan_shards(dir: &Path, shards: usize) -> Result<ShardMap> {
    let source = read_source(dir)?;
    plan_from_ids(
        &source
            .columns
            .iter()
            .map(|c| c.external_id)
            .collect::<Vec<_>>(),
        shards,
    )
}

/// Split the lake at `dir` into `shards` deployment directories under
/// `out` (`out/shard_00`, `out/shard_01`, …), write the shard map to
/// `out/shardmap.txt`, and return it. Refuses a live delta log.
pub fn split_lake(dir: &Path, shards: usize, out: &Path) -> Result<ShardMap> {
    let source = read_source(dir)?;
    let map = plan_from_ids(
        &source
            .columns
            .iter()
            .map(|c| c.external_id)
            .collect::<Vec<_>>(),
        shards,
    )?;
    std::fs::create_dir_all(out)?;
    let mut taken = 0usize;
    for (i, spec) in map.shards().iter().enumerate() {
        let shard_cols: Vec<&ExtractedColumn> = source
            .columns
            .iter()
            .filter(|c| spec.owns(c.external_id))
            .collect();
        taken += shard_cols.len();
        build_shard(&source, &shard_cols, &out.join(shard_dir_name(i)))?;
    }
    debug_assert_eq!(
        taken,
        source.columns.len(),
        "disjoint covering ranges must take every column exactly once"
    );
    map.write(&out.join(SHARD_MAP_FILE))?;
    Ok(map)
}

/// Cut sorted ids into `shards` contiguous chunks of equal size (±1) and
/// turn the chunk starts into range boundaries.
fn plan_from_ids(sorted_ids: &[u64], shards: usize) -> Result<ShardMap> {
    if shards == 0 {
        return Err(PexesoError::InvalidParameter(
            "cannot split into zero shards".into(),
        ));
    }
    if sorted_ids.len() < shards {
        return Err(PexesoError::InvalidParameter(format!(
            "cannot cut {} columns into {shards} shards: every shard needs at least one column",
            sorted_ids.len()
        )));
    }
    let n = sorted_ids.len();
    let (base, extra) = (n / shards, n % shards);
    let mut specs = Vec::with_capacity(shards);
    let mut pos = 0usize;
    for s in 0..shards {
        // The first `extra` shards absorb the remainder.
        let take = base + usize::from(s < extra);
        let lo = if s == 0 { 0 } else { sorted_ids[pos] };
        pos += take;
        let hi = if s == shards - 1 {
            u64::MAX
        } else {
            sorted_ids[pos]
        };
        specs.push(ShardSpec {
            lo,
            hi,
            replicas: Vec::new(),
        });
    }
    ShardMap::new(specs)
}

/// Load the manifest and lift every live column out of the source lake.
fn read_source(dir: &Path) -> Result<Source> {
    let manifest = LakeManifest::read(dir)?;
    let delta = DeltaLake::open(dir)?;
    let pending = delta.overlay().n_records();
    if pending > 0 {
        return Err(PexesoError::InvalidParameter(format!(
            "{}: delta log has {pending} unapplied record(s); a split would drop them — \
             compact the lake first",
            dir.display()
        )));
    }
    drop(delta);
    let lake = PartitionedLake::open(dir)?;
    let partitions = lake.num_partitions();
    let (mut columns, options) = match manifest.metric.as_str() {
        "euclidean" => extract_columns(&lake, Euclidean),
        "manhattan" => extract_columns(&lake, Manhattan),
        "chebyshev" => extract_columns(&lake, Chebyshev),
        "angular" => extract_columns(&lake, Angular),
        other => Err(PexesoError::InvalidParameter(format!(
            "unsupported metric '{other}'"
        ))),
    }?;
    columns.sort_by_key(|c| c.external_id);
    if columns
        .windows(2)
        .any(|w| w[0].external_id == w[1].external_id)
    {
        return Err(PexesoError::Corrupt(format!(
            "{}: duplicate external ids across partitions — \
             range ownership would be ambiguous",
            dir.display()
        )));
    }
    Ok(Source {
        manifest,
        columns,
        partitions,
        options,
    })
}

/// Partition files only yield columns through a typed index, so loading
/// dispatches on the manifest metric even though extraction itself is
/// metric-blind. Also returns the build options persisted in the first
/// partition, which shards inherit.
fn extract_columns<M: Metric>(
    lake: &PartitionedLake,
    metric: M,
) -> Result<(Vec<ExtractedColumn>, pexeso_core::config::IndexOptions)> {
    let mut out = Vec::new();
    let mut options = None;
    for i in 0..lake.num_partitions() {
        let index = lake.load_partition(i, metric.clone())?;
        options.get_or_insert_with(|| index.options().clone());
        let set = index.columns();
        for (c, meta) in set.columns().iter().enumerate() {
            // Tombstoned columns are semantically gone; resurrecting one
            // in a shard would change answers.
            if index.is_deleted(pexeso_core::column::ColumnId(c as u32)) {
                continue;
            }
            out.push(ExtractedColumn {
                table_name: meta.table_name.clone(),
                column_name: meta.column_name.clone(),
                external_id: meta.external_id,
                rows: meta
                    .vector_range()
                    .map(|v| set.vector(pexeso_core::vector::VectorId(v)).to_vec())
                    .collect(),
            });
        }
    }
    Ok((out, options.unwrap_or_default()))
}

/// Build one shard's deployment directory: re-partition and re-index its
/// column subset, then write a manifest inheriting the source's
/// `index_version` and `next_external_id` (new ids must stay globally
/// unique *across* shards, so every shard allocates from the same
/// watermark).
fn build_shard(source: &Source, columns: &[&ExtractedColumn], dir: &Path) -> Result<()> {
    let mut set = ColumnSet::new(source.manifest.dim);
    for c in columns {
        set.add_column(
            &c.table_name,
            &c.column_name,
            c.external_id,
            c.rows.iter().map(Vec::as_slice),
        )?;
    }
    // A shard holds a fraction of the corpus: keep the source's partition
    // granularity where possible, but never more partitions than columns.
    let config = PartitionConfig {
        k: source.partitions.min(columns.len()).max(1),
        ..PartitionConfig::default()
    };
    let options = source.options.clone();
    match source.manifest.metric.as_str() {
        "euclidean" => PartitionedLake::build(&set, Euclidean, &config, &options, dir)?,
        "manhattan" => PartitionedLake::build(&set, Manhattan, &config, &options, dir)?,
        "chebyshev" => PartitionedLake::build(&set, Chebyshev, &config, &options, dir)?,
        "angular" => PartitionedLake::build(&set, Angular, &config, &options, dir)?,
        other => {
            return Err(PexesoError::InvalidParameter(format!(
                "unsupported metric '{other}'"
            )))
        }
    };
    let manifest = LakeManifest {
        format_version: source.manifest.format_version,
        embedder: source.manifest.embedder.clone(),
        dim: source.manifest.dim,
        metric: source.manifest.metric.clone(),
        index_version: source.manifest.index_version,
        next_external_id: source.manifest.next_external_id,
    };
    manifest.write(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_balances_and_covers_everything() {
        let ids: Vec<u64> = (0..10).map(|i| i * 7 + 3).collect();
        let map = plan_from_ids(&ids, 3).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map.shards()[0].lo, 0);
        assert_eq!(map.shards()[2].hi, u64::MAX);
        // Chunks of 4/3/3: boundaries at the 4th and 7th ids.
        assert_eq!(map.shards()[0].hi, ids[4]);
        assert_eq!(map.shards()[1].lo, ids[4]);
        assert_eq!(map.shards()[1].hi, ids[7]);
        // Every id owned exactly once, future ids owned somewhere.
        for id in 0..200 {
            assert_eq!(
                map.shards().iter().filter(|s| s.owns(id)).count(),
                1,
                "id {id}"
            );
        }
        let counts: Vec<usize> = map
            .shards()
            .iter()
            .map(|s| ids.iter().filter(|&&i| s.owns(i)).count())
            .collect();
        assert_eq!(counts, vec![4, 3, 3]);
    }

    #[test]
    fn plan_refuses_degenerate_cuts() {
        assert!(plan_from_ids(&[1, 2, 3], 0).is_err());
        assert!(
            plan_from_ids(&[1, 2], 3).is_err(),
            "more shards than columns"
        );
        assert!(plan_from_ids(&[1, 2, 3], 3).is_ok());
    }
}
