//! [`Router`]: the scatter-gather [`Queryable`] over shard daemons.
//!
//! This is [`pexeso_core::outofcore::execute_partitioned`] lifted over
//! the wire: each shard of the map answers the query through its own
//! failover-capable [`ResilientClient`], replies are filtered to the
//! shard's assigned external-id range, and the per-shard results merge
//! with the same deterministic ranking every local backend uses
//! ([`sort_threshold_hits`] / [`rank_topk_hits`]). Because shard ranges
//! are disjoint and external ids are globally unique, the global
//! ordering restricted to one shard *is* that shard's local ordering —
//! so a shard's exact local answer is exactly its contribution to the
//! global answer, and the merge is exact without any cross-shard
//! coordination.
//!
//! ## Range filtering and the top-k over-ask loop
//!
//! The router never trusts a daemon to serve exactly its assigned
//! range: a replica may hold a superset (a full-lake node assigned a
//! sub-range during migration, or a shard directory that has ingested
//! columns beyond its cut). Every reply is filtered to `[lo, hi)`
//! before merging — for threshold queries that is the whole story, but
//! a *top-k* reply that lost entries to the filter may have been
//! truncated below `k` in-range columns. The router then re-asks that
//! shard with a larger `k`, growing by the observed number of
//! out-of-range entries — the same adaptive over-ask the delta
//! overlay's `k + |tombstones|` slack uses (`pexeso-delta`'s
//! `run_base_filtered`), generalized to "whatever the filter removed".
//! When daemons serve exactly their range (the common case) the filter
//! removes nothing and no re-ask ever happens: ask = k, one round trip
//! per shard.
//!
//! ## Failure semantics
//!
//! A shard whose every replica is unreachable is a **typed refusal**
//! ([`PexesoError::Remote`]), never a silently partial answer: exactness
//! over availability — a missing shard's columns are unknowable, and
//! "the top-k of the shards that happened to be up" is a wrong answer
//! wearing an exact one's clothes. Budget trips, by contrast, degrade
//! typed *inside* the response ([`QueryOutcome::Exceeded`]), exactly as
//! local backends report them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pexeso_core::error::{PexesoError, Result};
use pexeso_core::explain::ExplainReport;
use pexeso_core::hist::{AtomicHistogram, HistSnapshot};
use pexeso_core::log::{self as plog, LogLevel, Value};
use pexeso_core::outofcore::GlobalHit;
use pexeso_core::query::{
    fold_outcome, rank_topk_hits, sort_threshold_hits, Query, QueryMode, QueryOutcome,
    QueryResponse, Queryable,
};
use pexeso_core::stats::SearchStats;
use pexeso_core::trace::{QueryTrace, TraceSpan};
use pexeso_core::vector::VectorStore;
use pexeso_serve::protocol::InfoReply;
use pexeso_serve::resilient::ReplicaStatus;
use pexeso_serve::{ResilientClient, ResilientConfig, RetryStats, ServeClient};

use crate::shardmap::{ShardMap, ShardSpec};

/// Router tuning.
#[derive(Debug, Clone, Default)]
pub struct RouterConfig {
    /// Retry/failover/breaker tuning for every per-shard client.
    pub client: ResilientConfig,
}

/// One shard as the router drives it.
struct Shard {
    spec: ShardSpec,
    client: ResilientClient,
    /// Highest generation observed from this shard (queries and APPLYs).
    generation: AtomicU64,
}

/// Everything one shard contributed to one routed query.
struct ShardAnswer {
    hits: Vec<GlobalHit>,
    stats: SearchStats,
    outcome: QueryOutcome,
    trace: Option<QueryTrace>,
    explain: Option<ExplainReport>,
    /// Offset of this shard's first attempt on the router clock (µs).
    start_us: u64,
    duration_us: u64,
    /// Extra round trips the over-ask loop needed (0 = single ask).
    reasks: u64,
    /// Replies dropped by the range filter across all asks.
    filtered: u64,
}

/// Aggregated deployment facts across every shard (the router's INFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterInfo {
    pub dim: u32,
    /// Sum of per-shard snapshot generations — bumps whenever any shard
    /// republishes, so cache-keying on it stays conservative.
    pub generation: u64,
    /// Highest `index_version` across shards (they share one source
    /// build, so this is normally uniform).
    pub index_version: u64,
    /// Total partitions across shards.
    pub partitions: u32,
    /// Total index bytes on disk across shards.
    pub disk_bytes: u64,
    pub shards: u32,
}

/// Per-shard health as the STATS plane reports it.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    pub lo: u64,
    pub hi: u64,
    pub generation: u64,
    pub retry: RetryStats,
    pub replicas: Vec<ReplicaStatus>,
}

/// The scatter-gather backend over a shard map. See the module docs.
pub struct Router {
    shards: Vec<Shard>,
    /// End-to-end latency of every routed query (scatter + merge).
    query_latency: AtomicHistogram,
}

impl Router {
    /// Build the per-shard clients. Every shard must have at least one
    /// replica address (a plan-placeholder map is not routable); no
    /// connection is attempted yet, so daemons may come up later.
    pub fn new(map: ShardMap, config: RouterConfig) -> Result<Self> {
        let shards = map
            .shards()
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                if spec.replicas.is_empty() {
                    return Err(PexesoError::InvalidParameter(format!(
                        "shard {i} [{}, {}) has no replica addresses",
                        spec.lo, spec.hi
                    )));
                }
                Ok(Shard {
                    client: ResilientClient::new(&spec.replicas, config.client.clone())?,
                    spec: spec.clone(),
                    generation: AtomicU64::new(0),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            query_latency: AtomicHistogram::new(),
        })
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The map this router was built from.
    pub fn map(&self) -> ShardMap {
        ShardMap::new(self.shards.iter().map(|s| s.spec.clone()).collect())
            .expect("a constructed router always holds a valid map")
    }

    /// Highest generation observed per shard, in map order (0 = never
    /// heard from).
    pub fn generations(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.generation.load(Ordering::Relaxed))
            .collect()
    }

    /// The router-level generation: the sum over shards, so any shard
    /// republishing bumps it.
    pub fn generation(&self) -> u64 {
        self.generations().iter().sum()
    }

    /// Snapshot of the end-to-end routed-query latency histogram.
    pub fn query_latency(&self) -> HistSnapshot {
        self.query_latency.snapshot()
    }

    /// Per-shard health gauges for the STATS/METRICS plane.
    pub fn shard_statuses(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .map(|s| ShardStatus {
                lo: s.spec.lo,
                hi: s.spec.hi,
                generation: s.generation.load(Ordering::Relaxed),
                retry: s.client.stats(),
                replicas: s.client.replica_status(),
            })
            .collect()
    }

    /// Administratively drain (or undrain) one replica address on
    /// whichever shards list it. Returns how many shard clients matched.
    pub fn set_drained(&self, addr: &str, drained: bool) -> usize {
        self.shards
            .iter()
            .filter(|s| s.client.set_drained(addr, drained))
            .count()
    }

    /// Aggregate INFO across shards (first healthy replica each). All
    /// shards must agree on the dimension — disagreement means the map
    /// points at deployments of different lakes, which is fatal, not a
    /// gauge.
    pub fn info(&self) -> Result<RouterInfo> {
        let mut dim: Option<u32> = None;
        let mut generation = 0u64;
        let mut index_version = 0u64;
        let mut partitions = 0u32;
        let mut disk_bytes = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let info = shard_info(&shard.spec)?;
            if let Some(d) = dim {
                if d != info.dim {
                    return Err(PexesoError::InvalidParameter(format!(
                        "shard {i} serves dimension {} but shard 0 serves {d}: \
                         the map mixes deployments of different lakes",
                        info.dim
                    )));
                }
            } else {
                dim = Some(info.dim);
            }
            shard
                .generation
                .fetch_max(info.generation, Ordering::Relaxed);
            generation += info.generation;
            index_version = index_version.max(info.index_version);
            partitions += info.partitions;
            disk_bytes += info.disk_bytes;
        }
        Ok(RouterInfo {
            dim: dim.unwrap_or(0),
            generation,
            index_version,
            partitions,
            disk_bytes,
            shards: self.shards.len() as u32,
        })
    }

    /// Routed live ingest: tell every replica of shard `shard` to replay
    /// its delta log and publish a new generation. Only the owning
    /// shard's generation moves; every other shard is untouched. Returns
    /// (new router-level generation, delta columns, tombstones) from the
    /// freshest replica.
    ///
    /// Replicas apply independently (each owns its copy of the delta
    /// log), so a replica failing mid-fan-out leaves the others already
    /// applied — the error names the lagging replica and a retry
    /// converges (APPLY is idempotent over the same log).
    pub fn apply_delta(&self, shard: usize) -> Result<(u64, u64, u64)> {
        let s = self.shards.get(shard).ok_or_else(|| {
            PexesoError::InvalidParameter(format!(
                "no shard {shard} in a {}-shard map",
                self.shards.len()
            ))
        })?;
        let mut best: Option<(u64, u64, u64)> = None;
        for addr in &s.spec.replicas {
            let client = ServeClient::connect(addr.as_str())
                .map_err(|e| PexesoError::Remote(format!("shard {shard} replica {addr}: {e}")))?;
            let (generation, delta_columns, tombstones) = client
                .apply_delta()
                .map_err(|e| PexesoError::Remote(format!("shard {shard} replica {addr}: {e}")))?;
            if best.is_none_or(|(g, _, _)| generation > g) {
                best = Some((generation, delta_columns, tombstones));
            }
        }
        let (generation, delta_columns, tombstones) =
            best.expect("a routable shard always has at least one replica");
        s.generation.fetch_max(generation, Ordering::Relaxed);
        Ok((self.generation(), delta_columns, tombstones))
    }

    /// One shard's (filtered) answer, including the top-k over-ask loop.
    /// `started` is the router clock the trace offsets are measured on.
    fn query_shard(
        &self,
        idx: usize,
        query: &Query,
        vectors: &VectorStore,
        started: Instant,
    ) -> Result<ShardAnswer> {
        let shard = &self.shards[idx];
        let start_us = started.elapsed().as_micros() as u64;
        let mut stats = SearchStats::new();
        let mut outcome = QueryOutcome::Exact;
        let mut reasks = 0u64;
        let mut filtered = 0u64;
        let k = match query.mode {
            QueryMode::Topk(k) => k,
            QueryMode::Threshold(_) => 0,
        };
        let mut ask = k;
        let (hits, trace, explain) = loop {
            let mut attempt = query.clone();
            if let QueryMode::Topk(_) = query.mode {
                attempt.mode = QueryMode::Topk(ask);
            }
            let mut resp = shard
                .client
                .execute(&attempt, vectors)
                .map_err(|e| shard_error(idx, &shard.spec, &e))?;
            let raw_len = resp.hits.len();
            let hits: Vec<GlobalHit> = resp
                .hits
                .into_iter()
                .filter(|h| shard.spec.owns(h.external_id))
                .collect();
            let removed = raw_len - hits.len();
            filtered += removed as u64;
            stats.merge(&resp.stats);
            fold_outcome(
                &mut outcome,
                match resp.outcome {
                    QueryOutcome::Exact => None,
                    QueryOutcome::Exceeded(e) => Some(e),
                },
            );
            // Threshold replies are complete by construction; a top-k
            // reply is done unless it was *truncated at the ask* and the
            // filter ate more than the over-ask slack — then in-range
            // columns may have been crowded out, and only a bigger ask
            // can prove they weren't. Budget-tripped replies stop here
            // either way: the partial outcome is already typed.
            let truncated = raw_len == ask;
            let done = matches!(query.mode, QueryMode::Threshold(_))
                || !truncated
                || removed <= ask - k
                || outcome != QueryOutcome::Exact;
            if done {
                break (hits, resp.trace.take(), resp.explain.take());
            }
            ask = k + removed;
            reasks += 1;
        };
        shard
            .generation
            .fetch_max(shard.client.last_generation(), Ordering::Relaxed);
        Ok(ShardAnswer {
            hits,
            stats,
            outcome,
            trace,
            explain,
            start_us,
            duration_us: started.elapsed().as_micros() as u64 - start_us,
            reasks,
            filtered,
        })
    }

    /// Parallel scatter over all shards; any shard error aborts the
    /// query with a typed refusal.
    fn execute_scatter(
        &self,
        query: &Query,
        vectors: &VectorStore,
        started: Instant,
    ) -> Result<Vec<ShardAnswer>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|i| scope.spawn(move || self.query_shard(i, query, vectors, started)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(PexesoError::InvalidParameter(
                            "shard query worker panicked".into(),
                        ))
                    })
                })
                .collect()
        })
    }

    /// Sequential sweep for distance-computation budgets: the cap is a
    /// *global* allowance, so shards are visited in map order, each
    /// shipped only what the previous shards left over — mirroring
    /// `execute_partitioned`'s budgeted partition sweep. The sweep stops
    /// at the first typed trip (a shard given a spent budget trips
    /// immediately server-side, keeping the outcome honest).
    fn execute_budgeted(
        &self,
        query: &Query,
        vectors: &VectorStore,
        cap: u64,
        started: Instant,
    ) -> Result<Vec<ShardAnswer>> {
        let mut remaining = cap;
        let mut answers = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let mut attempt = query.clone();
            attempt.budget.max_distance_computations = Some(remaining);
            let answer = self.query_shard(i, &attempt, vectors, started)?;
            remaining = remaining.saturating_sub(answer.stats.distance_computations);
            let tripped = answer.outcome != QueryOutcome::Exact;
            answers.push(answer);
            if tripped {
                break;
            }
        }
        Ok(answers)
    }

    /// Merge per-shard answers exactly like `execute_partitioned` merges
    /// partitions: stats fold in shard order, outcomes fold typed, and
    /// the final ranking is the unified one. Returns the merged response
    /// plus the index of the slowest scatter leg, so the daemon's SLOW
    /// log can name the shard that set the latency floor.
    fn merge(
        &self,
        query: &Query,
        answers: Vec<ShardAnswer>,
        started: Instant,
    ) -> (QueryResponse, Option<u32>) {
        let merge_start = query.trace.enabled().then(Instant::now);
        let mut stats = SearchStats::new();
        let mut hits = Vec::new();
        let mut outcome = QueryOutcome::Exact;
        let mut shard_spans = Vec::new();
        let mut explain: Option<ExplainReport> = None;
        let mut slowest: Option<(u32, u64)> = None;
        for (i, mut answer) in answers.into_iter().enumerate() {
            if slowest.is_none_or(|(_, d)| answer.duration_us > d) {
                slowest = Some((i as u32, answer.duration_us));
            }
            if let Some(shard_explain) = answer.explain.take() {
                match &mut explain {
                    Some(acc) => acc.merge(&shard_explain),
                    None => explain = Some(shard_explain),
                }
            }
            if query.trace.enabled() {
                let mut span =
                    TraceSpan::new(format!("shard/{i}"), answer.start_us, answer.duration_us)
                        .counter("hits", answer.hits.len() as u64)
                        .counter("filtered", answer.filtered)
                        .counter("reasks", answer.reasks);
                if let Some(t) = answer.trace {
                    // The shard's client trace (attempts, backoff, and
                    // the server's own phase tree) nests under its
                    // shard span, shifted onto the router clock.
                    span.children.push(t.nested_under(answer.start_us));
                }
                shard_spans.push(span);
            }
            stats.merge(&answer.stats);
            hits.extend(answer.hits);
            fold_outcome(
                &mut outcome,
                match answer.outcome {
                    QueryOutcome::Exact => None,
                    QueryOutcome::Exceeded(e) => Some(e),
                },
            );
        }
        let hits = match query.mode {
            QueryMode::Threshold(_) => {
                sort_threshold_hits(&mut hits);
                hits
            }
            QueryMode::Topk(k) => rank_topk_hits(hits, k),
        };
        stats.total_time = started.elapsed();
        let trace = merge_start.map(|m| {
            let mut root = TraceSpan::new("router", 0, stats.total_time.as_micros() as u64)
                .counter("shards", self.shards.len() as u64)
                .counter("merge_us", m.elapsed().as_micros() as u64);
            root.children = shard_spans;
            QueryTrace::new(root)
        });
        let resp = QueryResponse {
            hits,
            stats,
            outcome,
            trace,
            explain,
        };
        (resp, slowest.map(|(i, _)| i))
    }

    /// Execute a query and also return its routing metadata — the
    /// request id the query actually ran under and the slowest scatter
    /// leg. The router daemon uses this for SLOW-log shard attribution
    /// and request-correlated structured logs; library callers that only
    /// want the answer use [`Queryable::execute`].
    pub fn execute_routed(
        &self,
        query: &Query,
        vectors: &VectorStore,
    ) -> Result<(QueryResponse, RoutedMeta)> {
        let started = Instant::now();
        // Topk(0) answers empty without touching a shard, exactly like
        // every local backend (including the zero-funnel explain).
        if let QueryMode::Topk(0) = query.mode {
            let stats = SearchStats::new();
            let explain = query
                .explain
                .then(|| ExplainReport::from_stats(query, &stats, 0, QueryOutcome::Exact, None));
            let resp = QueryResponse {
                hits: Vec::new(),
                stats,
                outcome: QueryOutcome::Exact,
                trace: None,
                explain,
            };
            let meta = RoutedMeta {
                request_id: query.request_id,
                slowest_shard: None,
            };
            return Ok((resp, meta));
        }
        // The router is the outermost hop: when observability is on
        // (trace, explain, or info-level logging) and the caller didn't
        // supply a correlation id, mint one here so the router log, every
        // shard log, and the SLOW entry all share the same handle.
        let minted;
        let query = if query.request_id.is_none()
            && (query.trace.enabled() || query.explain || plog::enabled(LogLevel::Info))
        {
            minted = query.clone().with_request_id(plog::mint_request_id());
            &minted
        } else {
            query
        };
        let answers = match query.budget.max_distance_computations {
            Some(cap) => self.execute_budgeted(query, vectors, cap, started)?,
            None => self.execute_scatter(query, vectors, started)?,
        };
        let (resp, slowest_shard) = self.merge(query, answers, started);
        self.query_latency.record_duration(started.elapsed());
        if plog::enabled(LogLevel::Info) {
            let mut fields: Vec<(&str, Value)> = Vec::with_capacity(5);
            if let Some(rid) = query.request_id {
                fields.push(("rid", Value::Rid(rid)));
            }
            fields.push(("shards", Value::U64(self.shards.len() as u64)));
            fields.push(("hits", Value::U64(resp.hits.len() as u64)));
            fields.push((
                "latency_us",
                Value::U64(resp.stats.total_time.as_micros() as u64),
            ));
            fields.push(("exact", Value::Bool(resp.exact())));
            plog::log(LogLevel::Info, "router", "query_routed", &fields);
        }
        let meta = RoutedMeta {
            request_id: query.request_id,
            slowest_shard,
        };
        Ok((resp, meta))
    }

    /// Scatter INSPECT across the shards (first reachable replica of
    /// each) and gather the answers with every line prefixed
    /// `shard<N>.`. A shard that cannot answer contributes a
    /// `shard<N>.error=` line instead of failing the whole verb —
    /// inspection is diagnostics, and a partial picture beats none.
    pub fn inspect_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, shard) in self.shards.iter().enumerate() {
            match shard_inspect(&shard.spec) {
                Ok(text) => {
                    for line in text.lines() {
                        let _ = writeln!(out, "shard{i}.{line}");
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "shard{i}.error={e}");
                }
            }
        }
        out
    }

    /// Roll per-shard replica state into one fleet health answer. A
    /// shard with every replica available (neither drained nor
    /// circuit-open) is `ready`; with some but not all available it is
    /// `degraded`; with none it is `down`. The fleet reports the worst
    /// shard's state, and `draining` overrides everything when the
    /// daemon is shutting down.
    pub fn health_text(&self, draining: bool) -> String {
        use std::fmt::Write as _;
        fn rank(status: &str) -> u8 {
            match status {
                "ready" => 0,
                "degraded" => 1,
                _ => 2,
            }
        }
        let statuses = self.shard_statuses();
        let mut fleet = "ready";
        let mut body = String::new();
        for (i, s) in statuses.iter().enumerate() {
            let total = s.replicas.len();
            let available = s
                .replicas
                .iter()
                .filter(|r| !r.drained && !r.circuit_open)
                .count();
            let status = if available == 0 {
                "down"
            } else if available < total {
                "degraded"
            } else {
                "ready"
            };
            if rank(status) > rank(fleet) {
                fleet = status;
            }
            let _ = writeln!(body, "shard{i}.status={status}");
            let _ = writeln!(body, "shard{i}.replicas={total}");
            let _ = writeln!(body, "shard{i}.available={available}");
        }
        if draining {
            fleet = "draining";
        }
        format!("status={fleet}\nshards={}\n{body}", statuses.len())
    }
}

/// Metadata about one routed execution, surfaced alongside the response
/// by [`Router::execute_routed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutedMeta {
    /// The correlation id the query actually ran under: the caller's, or
    /// one minted by the router when observability wanted a handle.
    pub request_id: Option<u64>,
    /// Index of the scatter leg that took longest, when any leg ran.
    pub slowest_shard: Option<u32>,
}

/// INFO from the first reachable replica of a shard.
fn shard_info(spec: &ShardSpec) -> Result<InfoReply> {
    let mut last_err = None;
    for addr in &spec.replicas {
        match ServeClient::connect(addr.as_str()).map_err(|e| e.to_string()) {
            Ok(client) => match client.info() {
                Ok(info) => return Ok(info),
                Err(e) => last_err = Some(format!("{addr}: {e}")),
            },
            Err(e) => last_err = Some(format!("{addr}: {e}")),
        }
    }
    Err(PexesoError::Remote(format!(
        "no replica of shard [{}, {}) answered INFO: {}",
        spec.lo,
        spec.hi,
        last_err.unwrap_or_else(|| "no replicas".into())
    )))
}

/// INSPECT from the first reachable replica of a shard.
fn shard_inspect(spec: &ShardSpec) -> Result<String> {
    let mut last_err = None;
    for addr in &spec.replicas {
        match ServeClient::connect(addr.as_str()).map_err(|e| e.to_string()) {
            Ok(client) => match client.inspect_text() {
                Ok(text) => return Ok(text),
                Err(e) => last_err = Some(format!("{addr}: {e}")),
            },
            Err(e) => last_err = Some(format!("{addr}: {e}")),
        }
    }
    Err(PexesoError::Remote(format!(
        "no replica of shard [{}, {}) answered INSPECT: {}",
        spec.lo,
        spec.hi,
        last_err.unwrap_or_else(|| "no replicas".into())
    )))
}

/// A shard that could not answer is a typed refusal naming the shard —
/// never a silent partial result.
fn shard_error(idx: usize, spec: &ShardSpec, e: &PexesoError) -> PexesoError {
    PexesoError::Remote(format!(
        "shard {idx} [{}, {}) via {:?} failed: {e}",
        spec.lo, spec.hi, spec.replicas
    ))
}

impl Queryable for Router {
    fn execute(&self, query: &Query, vectors: &VectorStore) -> Result<QueryResponse> {
        self.execute_routed(query, vectors).map(|(resp, _)| resp)
    }
}
