//! The router daemon: the [`Router`] behind the same wire protocol the
//! shard daemons speak.
//!
//! A client cannot tell a router from a single `pexeso serve` daemon —
//! same frames, same verbs, same reply shapes — which is the point: the
//! existing [`pexeso_serve::ServeClient`] / `pexeso query` tooling works
//! against either, and promoting a deployment from one node to N shards
//! changes an address, not a client. The threading model mirrors
//! `pexeso-serve`'s server: one acceptor feeding a bounded connection
//! queue, a fixed worker pool, explicit one-frame `BUSY` backpressure
//! when the queue is full.
//!
//! Differences from a shard daemon, all deliberate:
//!
//! * **No result cache.** Each shard daemon already memoises exact
//!   results keyed on its own snapshot generation; a router cache would
//!   duplicate those bytes and add a second invalidation domain that
//!   must observe N independent generation bumps. Routed cache hits
//!   still happen — inside the shards, where the generations live.
//! * **`RELOAD` re-reads the shard map**, not an index directory: the
//!   router serves topology, and a map edit (add a replica, move a
//!   boundary after a re-split) hot-swaps the routing table without
//!   dropping queries in flight (they finish on the old table).
//! * **`APPLY` requires the V5 shard tail** ([`Request::ApplyDelta`]
//!   with `shard: Some(_)`): a router fans ingest to the owning shard's
//!   replicas, and "apply... something, somewhere" is an error, not a
//!   guess.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use pexeso_core::error::Result;
use pexeso_core::log::{self as plog, LogLevel, Value};
use pexeso_core::query::{Query, QueryBudget, QueryMode};
use pexeso_core::vector::VectorStore;
use pexeso_serve::metrics::{write_histogram_series, EndpointMetrics, SlowQueryLog};
use pexeso_serve::protocol::{
    decode_request, encode_reply, read_frame, write_frame, BatchMode, HitsExt, HitsReply,
    InfoReply, QueryBatch, QueryPayload, Reply, Request,
};
use pexeso_serve::server::clamp_policy;
use pexeso_serve::ResilientConfig;

use crate::router::{Router, RouterConfig};
use crate::shardmap::ShardMap;

/// Router daemon tuning. The subset of `ServeConfig` that applies to a
/// tier that holds no index: no cache knobs, no sampling (every routed
/// query already carries per-shard spans when traced).
#[derive(Debug, Clone)]
pub struct RouterServeConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Accepted connections waiting for a worker before BUSY kicks in.
    pub queue_capacity: usize,
    /// Per-connection read timeout.
    pub read_timeout: Option<Duration>,
    /// Ceiling on the per-request `ExecPolicy` thread count forwarded to
    /// the shards.
    pub max_request_threads: usize,
    /// Write timeout for the one-frame BUSY rejection.
    pub reject_write_timeout: Duration,
    /// Slowest-N capacity of the traced-query log behind `SLOW`.
    pub slow_log_capacity: usize,
    /// Retry/failover tuning for the per-shard clients.
    pub client: ResilientConfig,
}

impl Default for RouterServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            read_timeout: Some(Duration::from_secs(30)),
            max_request_threads: 16,
            reject_write_timeout: Duration::from_millis(100),
            slow_log_capacity: 8,
            client: ResilientConfig::default(),
        }
    }
}

/// Router-tier request counters (the shard daemons keep their own).
#[derive(Default)]
struct RouterMetrics {
    search: EndpointMetrics,
    topk: EndpointMetrics,
    /// INFO/STATS/METRICS/SLOW/RELOAD.
    admin: EndpointMetrics,
    apply: EndpointMetrics,
    busy_rejections: AtomicU64,
}

impl RouterMetrics {
    fn endpoints(&self) -> [(&'static str, &EndpointMetrics); 4] {
        [
            ("search", &self.search),
            ("topk", &self.topk),
            ("admin", &self.admin),
            ("apply", &self.apply),
        ]
    }
}

struct QueuedConn {
    stream: TcpStream,
    accepted_at: Instant,
}

struct Shared {
    /// Hot-swapped on RELOAD; queries pin an `Arc` for their lifetime.
    router: RwLock<Arc<Router>>,
    map_path: PathBuf,
    config: RouterServeConfig,
    metrics: RouterMetrics,
    slow_log: SlowQueryLog,
    started: Instant,
    queue: Mutex<VecDeque<QueuedConn>>,
    queue_cv: Condvar,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    /// Worker-owned connections, closed directly on shutdown so idle
    /// keep-alive peers don't hold workers for a full `read_timeout`.
    live_conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicU64,
}

/// The router daemon entry point.
pub struct RouterServer;

impl RouterServer {
    /// Read the shard map at `map_path`, build the router, bind `addr`
    /// (port 0 for an ephemeral test port), and spawn the acceptor +
    /// worker threads.
    pub fn start(
        map_path: &Path,
        addr: impl ToSocketAddrs,
        config: RouterServeConfig,
    ) -> Result<RouterServerHandle> {
        let map = ShardMap::read(map_path)?;
        let router = Router::new(
            map,
            RouterConfig {
                client: config.client.clone(),
            },
        )?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            router: RwLock::new(Arc::new(router)),
            map_path: map_path.to_path_buf(),
            metrics: RouterMetrics::default(),
            slow_log: SlowQueryLog::new(config.slow_log_capacity),
            started: Instant::now(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            addr: local_addr,
            live_conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
            config,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || accept_loop(listener, &shared)));
        }
        for _ in 0..workers {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        Ok(RouterServerHandle {
            addr: local_addr,
            threads,
            shared,
        })
    }
}

/// A running router daemon.
pub struct RouterServerHandle {
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl RouterServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The currently-routing [`Router`] (tests reach through this for
    /// generations and drain control).
    pub fn router(&self) -> Arc<Router> {
        self.shared
            .router
            .read()
            .expect("router lock poisoned")
            .clone()
    }

    /// Initiate shutdown (idempotent) and join every thread.
    pub fn shutdown(mut self) {
        initiate_shutdown(&self.shared);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until a protocol `SHUTDOWN` stops the daemon.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue_cv.notify_all();
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
    for conn in shared
        .live_conns
        .lock()
        .expect("conn registry poisoned")
        .values()
    {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
}

/// RAII registration in the shutdown registry (mirrors the shard
/// daemon): deregisters on every exit path out of `handle_connection`.
struct ConnRegistration<'a> {
    shared: &'a Shared,
    id: u64,
}

impl Drop for ConnRegistration<'_> {
    fn drop(&mut self) {
        if let Ok(mut conns) = self.shared.live_conns.lock() {
            conns.remove(&self.id);
        }
    }
}

fn register_conn<'a>(shared: &'a Shared, stream: &TcpStream) -> Option<ConnRegistration<'a>> {
    let clone = stream.try_clone().ok()?;
    let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    shared
        .live_conns
        .lock()
        .expect("conn registry poisoned")
        .insert(id, clone);
    Some(ConnRegistration { shared, id })
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let accepted_at = Instant::now();
        let mut queue = shared.queue.lock().expect("connection queue poisoned");
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            // One BUSY frame, then hang up — the router sheds load at its
            // own door instead of amplifying a spike N-fold onto the
            // shards (which run their own soft-watermark shedding).
            shared
                .metrics
                .busy_rejections
                .fetch_add(1, Ordering::Relaxed);
            plog::log(
                LogLevel::Warn,
                "router",
                "busy_rejected",
                &[(
                    "queue_capacity",
                    Value::U64(shared.config.queue_capacity as u64),
                )],
            );
            let _ = stream.set_write_timeout(Some(shared.config.reject_write_timeout));
            let _ = write_frame(&mut stream, &encode_reply(&Reply::Busy));
        } else {
            queue.push_back(QueuedConn {
                stream,
                accepted_at,
            });
            drop(queue);
            shared.queue_cv.notify_one();
        }
    }
    shared.queue_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("connection queue poisoned");
            loop {
                if let Some(c) = queue.pop_front() {
                    break Some(c);
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .expect("connection queue poisoned");
            }
        };
        match conn {
            Some(conn) => handle_connection(shared, conn),
            None => break,
        }
    }
}

fn handle_connection(shared: &Shared, conn: QueuedConn) {
    let QueuedConn {
        mut stream,
        accepted_at,
    } = conn;
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_nodelay(true);
    let _registration = register_conn(shared, &stream);
    // Only the first request on a connection waited in the accept queue.
    let mut queue_wait = Some(accepted_at.elapsed());
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        match decode_request(&payload) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let reply = dispatch(shared, req, queue_wait.take());
                if write_frame(&mut stream, &encode_reply(&reply)).is_err() {
                    return;
                }
                if is_shutdown {
                    initiate_shutdown(shared);
                    return;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) => {
                let reply = Reply::Err {
                    message: format!("bad request: {e}"),
                };
                let _ = write_frame(&mut stream, &encode_reply(&reply));
                return;
            }
        }
    }
}

/// Pin the routing table for one request.
fn current_router(shared: &Shared) -> Arc<Router> {
    shared.router.read().expect("router lock poisoned").clone()
}

fn dispatch(shared: &Shared, req: Request, queue_wait: Option<Duration>) -> Reply {
    let started = Instant::now();
    match req {
        Request::Info => {
            let reply = match current_router(shared).info() {
                Ok(info) => Reply::Info(InfoReply {
                    dim: info.dim,
                    generation: info.generation,
                    index_version: info.index_version,
                    partitions: info.partitions,
                    disk_bytes: info.disk_bytes,
                }),
                Err(e) => error_reply(&shared.metrics.admin, e.to_string()),
            };
            shared.metrics.admin.record(started.elapsed());
            reply
        }
        Request::Stats => {
            let text = render_stats(shared, &current_router(shared));
            shared.metrics.admin.record(started.elapsed());
            Reply::Stats { text }
        }
        Request::Metrics => {
            let text = render_prometheus(shared, &current_router(shared));
            shared.metrics.admin.record(started.elapsed());
            Reply::Stats { text }
        }
        Request::SlowLog => {
            let text = shared.slow_log.render();
            shared.metrics.admin.record(started.elapsed());
            Reply::Stats { text }
        }
        Request::Reload { dir } => {
            // Re-read the shard map (an explicit payload names an
            // alternative map file) and hot-swap the routing table.
            let path = dir
                .map(PathBuf::from)
                .unwrap_or_else(|| shared.map_path.clone());
            let reply = match ShardMap::read(&path).and_then(|map| {
                Router::new(
                    map,
                    RouterConfig {
                        client: shared.config.client.clone(),
                    },
                )
            }) {
                Ok(fresh) => {
                    let shards = fresh.shard_count() as u32;
                    let generation = fresh.generation();
                    *shared.router.write().expect("router lock poisoned") = Arc::new(fresh);
                    plog::log(
                        LogLevel::Info,
                        "router",
                        "map_reloaded",
                        &[
                            ("generation", Value::U64(generation)),
                            ("shards", Value::U64(shards as u64)),
                        ],
                    );
                    // `partitions` reports shard count at this tier: the
                    // router's units of spread are shards, not partition
                    // files it cannot see.
                    Reply::Reloaded {
                        generation,
                        partitions: shards,
                    }
                }
                // A failed reload keeps routing on the old table.
                Err(e) => {
                    let message = e.to_string();
                    plog::log(
                        LogLevel::Error,
                        "router",
                        "map_reload_failed",
                        &[("error", Value::Str(&message))],
                    );
                    error_reply(&shared.metrics.admin, message)
                }
            };
            shared.metrics.admin.record(started.elapsed());
            reply
        }
        Request::ApplyDelta { shard } => {
            let reply = match shard {
                Some(s) => match current_router(shared).apply_delta(s as usize) {
                    Ok((generation, delta_columns, tombstones)) => Reply::Applied {
                        generation,
                        delta_columns,
                        tombstones,
                    },
                    Err(e) => error_reply(&shared.metrics.apply, e.to_string()),
                },
                // A bare V3 APPLY is addressed at "the deployment"; a
                // router has N of them and refuses to pick one silently.
                None => error_reply(
                    &shared.metrics.apply,
                    "router APPLY requires the V5 shard tail (use --shard N)".into(),
                ),
            };
            shared.metrics.apply.record(started.elapsed());
            reply
        }
        Request::Inspect => {
            let text = current_router(shared).inspect_text();
            shared.metrics.admin.record(started.elapsed());
            Reply::Stats { text }
        }
        Request::Health => {
            let draining = shared.shutting_down.load(Ordering::SeqCst);
            let text = current_router(shared).health_text(draining);
            shared.metrics.admin.record(started.elapsed());
            Reply::Stats { text }
        }
        Request::Drain { addr, drained } => {
            let matched = current_router(shared).set_drained(&addr, drained);
            let reply = if matched == 0 {
                error_reply(
                    &shared.metrics.admin,
                    format!("no replica with address {addr} in the shard map"),
                )
            } else {
                plog::log(
                    LogLevel::Info,
                    "router",
                    "replica_drained",
                    &[
                        ("addr", Value::Str(&addr)),
                        ("drained", Value::Bool(drained)),
                        ("replicas", Value::U64(matched as u64)),
                    ],
                );
                Reply::Stats {
                    text: format!(
                        "drained={} addr={addr} replicas={matched}\n",
                        if drained { 1 } else { 0 }
                    ),
                }
            };
            shared.metrics.admin.record(started.elapsed());
            reply
        }
        Request::Shutdown => {
            plog::log(LogLevel::Info, "router", "shutdown_requested", &[]);
            Reply::ShuttingDown
        }
        Request::Search { .. } | Request::Topk { .. } => {
            handle_query(shared, req, started, queue_wait)
        }
        Request::Batch(batch) => handle_batch(shared, batch, started, queue_wait),
    }
}

fn error_reply(endpoint: &EndpointMetrics, message: String) -> Reply {
    endpoint.record_error();
    Reply::Err { message }
}

/// The deadline a query request carried, if any.
fn payload_deadline(payload: &QueryPayload) -> Option<Duration> {
    payload
        .ext
        .as_ref()
        .and_then(|ext| ext.deadline_ms)
        .map(Duration::from_millis)
}

fn handle_query(
    shared: &Shared,
    req: Request,
    started: Instant,
    queue_wait: Option<Duration>,
) -> Reply {
    let (payload, mode) = match &req {
        Request::Search { query, t } => (query, QueryMode::Threshold(*t)),
        Request::Topk { query, k } => (query, QueryMode::Topk(*k as usize)),
        _ => unreachable!("handle_query only sees query verbs"),
    };
    let endpoint = match mode {
        QueryMode::Threshold(_) => &shared.metrics.search,
        QueryMode::Topk(_) => &shared.metrics.topk,
    };
    // Queue wait counts against the deadline, exactly as on a shard
    // daemon: an answer computed after its deadline is overload evidence,
    // not a result.
    if let (Some(wait), Some(deadline)) = (queue_wait, payload_deadline(payload)) {
        if wait >= deadline {
            log_deadline_expired(payload.request_id, wait);
            endpoint.record(started.elapsed());
            return Reply::DeadlineExpired {
                waited_ms: wait.as_millis() as u64,
            };
        }
    }
    let reply = match run_query(shared, payload, mode, queue_wait) {
        Ok(hits) => Reply::Hits(hits),
        Err(message) => error_reply(endpoint, message),
    };
    endpoint.record(started.elapsed());
    reply
}

/// Reassemble the unified query and scatter it. The router does not know
/// the deployment dimension (the shards do), so dimension mismatches
/// surface as typed per-shard errors rather than a local precheck.
fn run_query(
    shared: &Shared,
    payload: &QueryPayload,
    mode: QueryMode,
    queue_wait: Option<Duration>,
) -> std::result::Result<HitsReply, String> {
    let router = current_router(shared);
    let store = VectorStore::from_raw(payload.dim as usize, payload.vectors.clone())
        .map_err(|e| e.to_string())?;
    let mut query = match mode {
        QueryMode::Threshold(t) => Query::threshold(payload.tau, t),
        QueryMode::Topk(k) => Query::topk(payload.tau, k),
    }
    .with_policy(clamp_policy(
        payload.policy,
        shared.config.max_request_threads,
    ));
    if !payload.metric.is_empty() {
        query = query.expect_metric(&payload.metric);
    }
    query = query
        .with_trace(payload.trace)
        .with_explain(payload.explain);
    if let Some(rid) = payload.request_id {
        query = query.with_request_id(rid);
    }
    if let Some(ext) = &payload.ext {
        query.options.flags = ext.flags;
        query.options.quick_browse = ext.quick_browse;
        query.budget = QueryBudget {
            max_distance_computations: ext.max_distance_computations,
            deadline: ext.deadline_ms.map(|ms| {
                let full = Duration::from_millis(ms);
                queue_wait.map_or(full, |w| full.saturating_sub(w))
            }),
        };
    }
    let (resp, meta) = router
        .execute_routed(&query, &store)
        .map_err(|e| e.to_string())?;
    if payload.trace.enabled() {
        let verb = match mode {
            QueryMode::Threshold(_) => "search",
            QueryMode::Topk(_) => "topk",
        };
        let rendered = resp.trace.as_ref().map(|t| t.render()).unwrap_or_default();
        shared.slow_log.offer_correlated(
            verb,
            resp.stats.total_time,
            rendered,
            meta.request_id,
            meta.slowest_shard,
        );
    }
    let v2 = payload.ext.is_some();
    Ok(HitsReply {
        generation: router.generation(),
        cached: false,
        hits: resp.hits.iter().map(Into::into).collect(),
        ext: v2.then_some(HitsExt {
            outcome: resp.outcome,
            distance_computations: resp.stats.distance_computations,
        }),
        trace: payload.trace.enabled().then_some(resp.trace).flatten(),
        explain: resp.explain.map(Box::new),
    })
}

/// Warn (with the correlation id, when the frame carried one) that a
/// request's deadline expired while it sat in the accept queue.
fn log_deadline_expired(request_id: Option<u64>, wait: Duration) {
    if !plog::enabled(LogLevel::Warn) {
        return;
    }
    let mut fields: Vec<(&str, Value)> = Vec::with_capacity(2);
    if let Some(rid) = request_id {
        fields.push(("rid", Value::Rid(rid)));
    }
    fields.push(("waited_ms", Value::U64(wait.as_millis() as u64)));
    plog::log(
        LogLevel::Warn,
        "router",
        "deadline_expired_in_queue",
        &fields,
    );
}

/// Answer a V4 batch frame: one pinned routing table, per-column answers
/// identical to the equivalent solo frames.
fn handle_batch(
    shared: &Shared,
    batch: QueryBatch,
    started: Instant,
    queue_wait: Option<Duration>,
) -> Reply {
    let (endpoint, mode) = match batch.mode {
        BatchMode::Search(t) => (&shared.metrics.search, QueryMode::Threshold(t)),
        BatchMode::Topk(k) => (&shared.metrics.topk, QueryMode::Topk(k as usize)),
    };
    let deadline = batch
        .ext
        .as_ref()
        .and_then(|ext| ext.deadline_ms)
        .map(Duration::from_millis);
    if let (Some(wait), Some(deadline)) = (queue_wait, deadline) {
        if wait >= deadline {
            log_deadline_expired(batch.request_id, wait);
            endpoint.record(started.elapsed());
            return Reply::DeadlineExpired {
                waited_ms: wait.as_millis() as u64,
            };
        }
    }
    let mut replies = Vec::with_capacity(batch.columns.len());
    for vectors in &batch.columns {
        let solo = QueryPayload {
            metric: batch.metric.clone(),
            tau: batch.tau,
            policy: batch.policy,
            dim: batch.dim,
            vectors: vectors.clone(),
            ext: batch.ext,
            trace: batch.trace,
            request_id: batch.request_id,
            explain: false,
        };
        match run_query(shared, &solo, mode, queue_wait) {
            Ok(hits) => replies.push(hits),
            Err(message) => {
                endpoint.record(started.elapsed());
                return error_reply(endpoint, message);
            }
        }
    }
    endpoint.record(started.elapsed());
    Reply::HitsBatch(replies)
}

/// The `STATS` text plane: router-level counters plus per-shard and
/// per-replica gauges (`shard<N>.…` keys, parseable with
/// [`pexeso_serve::stat_value`]).
fn render_stats(shared: &Shared, router: &Router) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(2048);
    let _ = writeln!(out, "uptime_seconds={}", shared.started.elapsed().as_secs());
    let _ = writeln!(out, "shards={}", router.shard_count());
    let _ = writeln!(out, "generation={}", router.generation());
    let _ = writeln!(
        out,
        "busy_rejections={}",
        shared.metrics.busy_rejections.load(Ordering::Relaxed)
    );
    for (name, ep) in shared.metrics.endpoints() {
        let (p50, p99) = ep.latency_quantiles_us();
        let _ = writeln!(
            out,
            "{name}.requests={} {name}.errors={} {name}.p50_us={p50} {name}.p99_us={p99}",
            ep.requests.load(Ordering::Relaxed),
            ep.errors.load(Ordering::Relaxed),
        );
    }
    let q = router.query_latency();
    let _ = writeln!(
        out,
        "query.p50_us={} query.p99_us={} query.count={}",
        q.quantile(0.50),
        q.quantile(0.99),
        q.count
    );
    for (i, s) in router.shard_statuses().iter().enumerate() {
        let hi = if s.hi == u64::MAX {
            "*".to_string()
        } else {
            s.hi.to_string()
        };
        let _ = writeln!(
            out,
            "shard{i}.range=[{},{hi}) shard{i}.generation={} shard{i}.retries={} shard{i}.failovers={}",
            s.lo, s.generation, s.retry.retries, s.retry.failovers,
        );
        for r in &s.replicas {
            let _ = writeln!(
                out,
                "shard{i}.replica.{}.drained={} shard{i}.replica.{}.circuit_open={} shard{i}.replica.{}.failures={}",
                r.addr, r.drained as u8, r.addr, r.circuit_open as u8, r.addr, r.consecutive_failures,
            );
        }
    }
    out
}

/// The `METRICS` Prometheus plane. Validated against
/// [`pexeso_serve::validate_prometheus`] by the integration tests.
fn render_prometheus(shared: &Shared, router: &Router) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    let gauge = |out: &mut String, name: &str, help: &str, v: f64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    };
    gauge(
        &mut out,
        "pexeso_router_uptime_seconds",
        "Seconds since the router started.",
        shared.started.elapsed().as_secs_f64(),
    );
    gauge(
        &mut out,
        "pexeso_router_shards",
        "Shards in the routing table.",
        router.shard_count() as f64,
    );
    gauge(
        &mut out,
        "pexeso_router_generation",
        "Sum of per-shard snapshot generations.",
        router.generation() as f64,
    );
    let statuses = router.shard_statuses();
    let _ = writeln!(
        out,
        "# HELP pexeso_router_shard_generation Highest generation observed per shard."
    );
    let _ = writeln!(out, "# TYPE pexeso_router_shard_generation gauge");
    for (i, s) in statuses.iter().enumerate() {
        let _ = writeln!(
            out,
            "pexeso_router_shard_generation{{shard=\"{i}\"}} {}",
            s.generation
        );
    }
    let _ = writeln!(
        out,
        "# HELP pexeso_router_shard_retries_total Retries per shard client."
    );
    let _ = writeln!(out, "# TYPE pexeso_router_shard_retries_total counter");
    for (i, s) in statuses.iter().enumerate() {
        let _ = writeln!(
            out,
            "pexeso_router_shard_retries_total{{shard=\"{i}\"}} {}",
            s.retry.retries
        );
    }
    let _ = writeln!(
        out,
        "# HELP pexeso_router_replica_open Replica circuit state (1 = open) per shard replica."
    );
    let _ = writeln!(out, "# TYPE pexeso_router_replica_open gauge");
    for (i, s) in statuses.iter().enumerate() {
        for r in &s.replicas {
            let _ = writeln!(
                out,
                "pexeso_router_replica_open{{shard=\"{i}\",replica=\"{}\"}} {}",
                r.addr, r.circuit_open as u8
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP pexeso_router_replica_drained Replica administrative drain state per shard replica."
    );
    let _ = writeln!(out, "# TYPE pexeso_router_replica_drained gauge");
    for (i, s) in statuses.iter().enumerate() {
        for r in &s.replicas {
            let _ = writeln!(
                out,
                "pexeso_router_replica_drained{{shard=\"{i}\",replica=\"{}\"}} {}",
                r.addr, r.drained as u8
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP pexeso_router_requests_total Requests served, per endpoint."
    );
    let _ = writeln!(out, "# TYPE pexeso_router_requests_total counter");
    for (name, ep) in shared.metrics.endpoints() {
        let _ = writeln!(
            out,
            "pexeso_router_requests_total{{endpoint=\"{name}\"}} {}",
            ep.requests.load(Ordering::Relaxed)
        );
    }
    let _ = writeln!(
        out,
        "# HELP pexeso_router_errors_total Request errors, per endpoint."
    );
    let _ = writeln!(out, "# TYPE pexeso_router_errors_total counter");
    for (name, ep) in shared.metrics.endpoints() {
        let _ = writeln!(
            out,
            "pexeso_router_errors_total{{endpoint=\"{name}\"}} {}",
            ep.errors.load(Ordering::Relaxed)
        );
    }
    let _ = writeln!(
        out,
        "# HELP pexeso_router_rejected_total Connections rejected with BUSY."
    );
    let _ = writeln!(out, "# TYPE pexeso_router_rejected_total counter");
    let _ = writeln!(
        out,
        "pexeso_router_rejected_total {}",
        shared.metrics.busy_rejections.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "# HELP pexeso_router_query_latency_microseconds End-to-end routed query latency (scatter + merge)."
    );
    let _ = writeln!(
        out,
        "# TYPE pexeso_router_query_latency_microseconds histogram"
    );
    write_histogram_series(
        &mut out,
        "pexeso_router_query_latency_microseconds",
        "",
        &router.query_latency(),
    );
    out
}
