//! The shard map: which external-id range each shard owns and which
//! replica daemons serve it.
//!
//! The map is a line-oriented text file (comments with `#`), one line
//! per shard:
//!
//! ```text
//! # pexeso shard map
//! shard 0 1000 127.0.0.1:7001,127.0.0.1:7002
//! shard 1000 2000 127.0.0.1:7003
//! shard 2000 * -
//! ```
//!
//! `shard <lo> <hi> <replicas>`: the shard owns external ids in
//! `[lo, hi)`; `*` spells an unbounded upper end (`u64::MAX`, itself
//! never allocated as an id); replicas are comma-separated addresses, or
//! `-` for "not yet assigned" (what `shard-plan`/`shard-split` emit —
//! the router refuses to start until every shard has at least one).
//!
//! Ranges must be disjoint and sorted ascending. Gaps are allowed (a
//! gap's ids are simply served by nobody), overlap is not: with
//! overlapping ownership one column would be answered twice and the
//! merged counts would be wrong — disjointness is what makes the
//! cross-shard merge exact (see [`crate::router`]).

use std::fmt::Write as _;
use std::path::Path;

use pexeso_core::error::{PexesoError, Result};

/// One shard: an external-id range and the replica daemons serving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// First owned external id (inclusive).
    pub lo: u64,
    /// One past the last owned external id (exclusive; `u64::MAX` =
    /// unbounded).
    pub hi: u64,
    /// Replica daemon addresses; empty = unassigned (plan placeholder).
    pub replicas: Vec<String>,
}

impl ShardSpec {
    /// Whether this shard owns external id `id`.
    pub fn owns(&self, id: u64) -> bool {
        self.lo <= id && id < self.hi
    }
}

/// A validated set of disjoint, ascending shard ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: Vec<ShardSpec>,
}

impl ShardMap {
    /// Validate and wrap: at least one shard, every range non-empty,
    /// ranges sorted ascending and pairwise disjoint.
    pub fn new(shards: Vec<ShardSpec>) -> Result<Self> {
        if shards.is_empty() {
            return Err(PexesoError::InvalidParameter(
                "shard map needs at least one shard".into(),
            ));
        }
        for (i, s) in shards.iter().enumerate() {
            if s.lo >= s.hi {
                return Err(PexesoError::InvalidParameter(format!(
                    "shard {i} range [{}, {}) is empty",
                    s.lo, s.hi
                )));
            }
            if let Some(prev) = i.checked_sub(1).map(|p| &shards[p]) {
                if s.lo < prev.hi {
                    return Err(PexesoError::InvalidParameter(format!(
                        "shard {i} range [{}, {}) overlaps or precedes shard {} range [{}, {})",
                        s.lo,
                        s.hi,
                        i - 1,
                        prev.lo,
                        prev.hi
                    )));
                }
            }
        }
        Ok(Self { shards })
    }

    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The index of the shard owning `id`, if any (gaps own nothing).
    pub fn owner_of(&self, id: u64) -> Option<usize> {
        // Ranges are sorted: binary-search the candidate, then confirm.
        let i = self.shards.partition_point(|s| s.hi <= id);
        (i < self.shards.len() && self.shards[i].owns(id)).then_some(i)
    }

    /// Parse the text format described in the module docs.
    pub fn parse(text: &str) -> Result<Self> {
        let mut shards = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = n + 1;
            let mut fields = line.split_whitespace();
            let bad = |what: &str| {
                PexesoError::InvalidParameter(format!(
                    "shard map line {lineno}: {what} (want `shard <lo> <hi> <addr,addr|->`)"
                ))
            };
            if fields.next() != Some("shard") {
                return Err(bad("unknown directive"));
            }
            let lo: u64 = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| bad("unparseable lower bound"))?;
            let hi: u64 = match fields.next() {
                Some("*") => u64::MAX,
                Some(f) => f.parse().map_err(|_| bad("unparseable upper bound"))?,
                None => return Err(bad("missing upper bound")),
            };
            let replicas = match fields.next() {
                Some("-") => Vec::new(),
                Some(f) => f.split(',').map(str::to_string).collect(),
                None => return Err(bad("missing replica list")),
            };
            if fields.next().is_some() {
                return Err(bad("trailing fields"));
            }
            shards.push(ShardSpec { lo, hi, replicas });
        }
        Self::new(shards)
    }

    /// Read and parse a shard-map file.
    pub fn read(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
            .map_err(|e| PexesoError::InvalidParameter(format!("{}: {e}", path.display())))
    }

    /// Render back to the text format (parse ∘ render is identity).
    pub fn render(&self) -> String {
        let mut out = String::from("# pexeso shard map\n");
        for s in &self.shards {
            let _ = write!(out, "shard {} ", s.lo);
            if s.hi == u64::MAX {
                out.push('*');
            } else {
                let _ = write!(out, "{}", s.hi);
            }
            out.push(' ');
            if s.replicas.is_empty() {
                out.push('-');
            } else {
                out.push_str(&s.replicas.join(","));
            }
            out.push('\n');
        }
        out
    }

    /// Write the rendered map to `path`.
    pub fn write(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.render())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(lo: u64, hi: u64, replicas: &[&str]) -> ShardSpec {
        ShardSpec {
            lo,
            hi,
            replicas: replicas.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn parse_render_roundtrip() {
        let text =
            "# pexeso shard map\nshard 0 1000 a:1,b:2\nshard 1000 2000 c:3\nshard 5000 * -\n";
        let map = ShardMap::parse(text).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map.shards()[0], spec(0, 1000, &["a:1", "b:2"]));
        assert_eq!(map.shards()[2], spec(5000, u64::MAX, &[]));
        assert_eq!(ShardMap::parse(&map.render()).unwrap(), map);
    }

    #[test]
    fn owner_respects_ranges_and_gaps() {
        let map = ShardMap::new(vec![
            spec(0, 10, &["a:1"]),
            spec(10, 20, &["b:1"]),
            spec(30, u64::MAX, &["c:1"]),
        ])
        .unwrap();
        assert_eq!(map.owner_of(0), Some(0));
        assert_eq!(map.owner_of(9), Some(0));
        assert_eq!(map.owner_of(10), Some(1));
        assert_eq!(map.owner_of(19), Some(1));
        assert_eq!(map.owner_of(25), None, "gap ids are owned by nobody");
        assert_eq!(map.owner_of(30), Some(2));
        assert_eq!(map.owner_of(u64::MAX - 1), Some(2));
    }

    #[test]
    fn overlap_and_disorder_are_rejected() {
        assert!(ShardMap::new(vec![]).is_err());
        assert!(
            ShardMap::new(vec![spec(5, 5, &["a:1"])]).is_err(),
            "empty range"
        );
        assert!(
            ShardMap::new(vec![spec(0, 10, &["a:1"]), spec(9, 20, &["b:1"])]).is_err(),
            "overlap"
        );
        assert!(
            ShardMap::new(vec![spec(10, 20, &["a:1"]), spec(0, 10, &["b:1"])]).is_err(),
            "out of order"
        );
        assert!(ShardMap::parse("shard 0 ten a:1").is_err());
        assert!(ShardMap::parse("split 0 10 a:1").is_err());
        assert!(ShardMap::parse("shard 0 10 a:1 extra").is_err());
    }
}
