//! # pexeso-router — sharded distributed serving for PEXESO
//!
//! One `pexeso serve` daemon tops out at one machine's cores and disk.
//! This crate scales the serving tier *out* without giving up the
//! repo-wide exactness contract: a lake is cut into shards by
//! external-id range, each shard is a complete, independently-servable
//! deployment run by one or more replica daemons, and a **router**
//! daemon scatters every query across the shards and merges the replies
//! — byte-identical to what a single-node deployment of the whole lake
//! would answer.
//!
//! * [`shardmap`] — the routing table: disjoint external-id ranges,
//!   each with its replica addresses; a line-oriented text file.
//! * [`split`] — offline tooling (`pexeso shard-plan` /
//!   `pexeso shard-split`): cut a built lake into N shard deployments,
//!   exact in union.
//! * [`router`] — the scatter-gather [`pexeso_core::query::Queryable`]:
//!   per-shard [`pexeso_serve::ResilientClient`]s with replica failover
//!   and circuit breakers, range-filtered replies, tie-inclusive exact
//!   merge (threshold and top-k with adaptive over-ask), typed refusal
//!   when a shard is unreachable, correlated `shard/N` trace spans.
//! * [`daemon`] — the router behind the same wire protocol shard
//!   daemons speak, so every existing client works unchanged; its own
//!   STATS/METRICS/SLOW observability plane with per-shard gauges.
//!
//! The exactness argument is spelled out in [`router`]; the short
//! version: blocking-complete matching makes a column's match count a
//! semantic fact independent of partition structure, shard ranges are
//! disjoint, and external ids are globally unique — so per-shard exact
//! answers concatenate and re-rank into the exact global answer.

pub mod daemon;
pub mod router;
pub mod shardmap;
pub mod split;

pub use daemon::{RouterServeConfig, RouterServer, RouterServerHandle};
pub use router::{Router, RouterConfig, RouterInfo, ShardStatus};
pub use shardmap::{ShardMap, ShardSpec};
pub use split::{plan_shards, shard_dir_name, split_lake, SHARD_MAP_FILE};
