//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of the criterion API its benches use: `Criterion` with
//! `bench_function` / `benchmark_group` / `bench_with_input`,
//! `criterion_group!`/`criterion_main!` (both forms), `BenchmarkId`, and
//! `black_box`.
//!
//! Measurements are real: each benchmark warms up for `warm_up_time`, then
//! runs timed batches until `measurement_time` elapses and reports the
//! mean, median and min per-iteration wall time. When the `BENCH_JSON`
//! environment variable names a file, one JSON line per benchmark
//! (`{"name", "mean_ns", "median_ns", "min_ns", "samples"}`) is appended
//! to it so snapshots can be recorded. `BENCH_FILTER` restricts a run to
//! benchmarks whose name contains the given substring — handy for
//! re-recording a single noisy row without re-running the whole suite.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported from std).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Measure one closure. Runs `sample_size` samples (or as many as fit
    /// in `measurement_time`), each averaging over an adaptive batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            iters += 1;
        }
        let approx = warm_start.elapsed().as_secs_f64() / iters.max(1) as f64;
        // Batch size targeting ~1ms per sample, at least 1 iteration.
        let batch = ((1e-3 / approx.max(1e-9)).round() as u64).max(1);

        let bench_start = Instant::now();
        while self.samples.len() < self.sample_size
            && (self.samples.len() < 2 || bench_start.elapsed() < self.measurement_time)
        {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Report {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
}

fn report(samples: &mut [f64]) -> Report {
    samples.sort_by(f64::total_cmp);
    let n = samples.len().max(1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
    let min = samples.first().copied().unwrap_or(0.0);
    Report {
        mean_ns: mean * 1e9,
        median_ns: median * 1e9,
        min_ns: min * 1e9,
        samples: samples.len(),
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Identifier combining a function name and a parameter, rendered
/// `name/param` like upstream.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        let mut full = String::new();
        let _ = write!(full, "{name}/{param}");
        Self { full }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            full: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { full: s }
    }
}

/// The harness. Builder methods mirror upstream's.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Ok(filter) = std::env::var("BENCH_FILTER") {
            if !filter.is_empty() && !name.contains(&filter) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        let r = report(&mut b.samples);
        println!(
            "{name:<48} time: [{} {} {}]  ({} samples)",
            human(r.min_ns),
            human(r.median_ns),
            human(r.mean_ns),
            r.samples
        );
        emit_json(name, r);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            group: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.group, id.into().full);
        self.parent.bench_function(&full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.group, id.full);
        self.parent.bench_function(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn emit_json(name: &str, r: Report) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("BENCH_JSON: cannot open {path}");
        return;
    };
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let _ = writeln!(
        file,
        "{{\"name\":\"{escaped}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{}}}",
        r.mean_ns, r.median_ns, r.min_ns, r.samples
    );
}

/// Both upstream forms: positional and `name/config/targets`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).full, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").full, "x");
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("g");
        g.bench_function("a", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("b", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
