//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *subset* of the proptest API the test suites use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, range and string-regex
//! strategies, `collection::vec`, and the `prop_assert*` family.
//!
//! Semantics differ from upstream in two deliberate ways: case inputs are
//! drawn from a deterministic RNG keyed on (test name, case index) so runs
//! are reproducible without a persistence file, and failing cases are
//! reported without shrinking (the failing inputs are printed instead).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies. Deterministic per (test, case).
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32 | 0x5bd1_e995),
        ))
    }

    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Accepted for API compatibility; rejections are simply skipped.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// Tuples of strategies generate tuples of values, like upstream.
macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// A constant strategy (`Just` in upstream proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String literals act as regex strategies, like upstream.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

pub mod string {
    //! Regex-subset string strategies: sequences of literal characters and
    //! character classes `[...]` (with ranges and `\n`/`\t`/`\\`/`\"`
    //! escapes), each optionally followed by `{n}`, `{m,n}`, `?`, `*` or
    //! `+` (the unbounded quantifiers cap at 8 repetitions).

    use super::{Strategy, TestRng};
    use rand::Rng;

    #[derive(Debug, Clone)]
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy over strings matching the (subset) regex.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.rng().gen_range(atom.min..=atom.max);
                for _ in 0..n {
                    let i = rng.rng().gen_range(0..atom.chars.len());
                    out.push(atom.chars[i]);
                }
            }
            out
        }
    }

    /// Parse a subset regex into a strategy. Mirrors
    /// `proptest::string::string_regex`'s signature.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        let mut atoms = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = match c {
                '[' => parse_class(&mut it)?,
                '\\' => vec![unescape(it.next().ok_or("dangling escape")?)],
                '.' => (' '..='~').collect(),
                '(' | ')' | '|' => {
                    return Err(format!("unsupported regex construct {c:?} in {pattern:?}"))
                }
                other => vec![other],
            };
            if chars.is_empty() {
                return Err(format!("empty character class in {pattern:?}"));
            }
            let (min, max) = parse_quantifier(&mut it)?;
            atoms.push(Atom { chars, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(it: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, String> {
        let mut chars = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = it.next().ok_or("unterminated character class")?;
            match c {
                ']' => break,
                '\\' => {
                    let e = unescape(it.next().ok_or("dangling escape in class")?);
                    chars.push(e);
                    prev = Some(e);
                }
                '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                    let hi = it.next().expect("peeked");
                    let hi = if hi == '\\' {
                        unescape(it.next().ok_or("dangling escape in class")?)
                    } else {
                        hi
                    };
                    let lo = prev.take().expect("checked");
                    if lo > hi {
                        return Err(format!("inverted range {lo:?}-{hi:?}"));
                    }
                    // `lo` is already in `chars`; add the rest of the range.
                    let mut v = lo;
                    while v < hi {
                        v = char::from_u32(v as u32 + 1).ok_or("range crosses surrogates")?;
                        chars.push(v);
                    }
                }
                other => {
                    chars.push(other);
                    prev = Some(other);
                }
            }
        }
        Ok(chars)
    }

    fn parse_quantifier(
        it: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<(usize, usize), String> {
        match it.peek() {
            Some('{') => {
                it.next();
                let mut body = String::new();
                for c in it.by_ref() {
                    if c == '}' {
                        let (min, max) = match body.split_once(',') {
                            Some((a, b)) => (
                                a.trim().parse().map_err(|e| format!("bad bound: {e}"))?,
                                b.trim().parse().map_err(|e| format!("bad bound: {e}"))?,
                            ),
                            None => {
                                let n =
                                    body.trim().parse().map_err(|e| format!("bad bound: {e}"))?;
                                (n, n)
                            }
                        };
                        if min > max {
                            return Err(format!("inverted quantifier {{{body}}}"));
                        }
                        return Ok((min, max));
                    }
                    body.push(c);
                }
                Err("unterminated quantifier".into())
            }
            Some('?') => {
                it.next();
                Ok((0, 1))
            }
            Some('*') => {
                it.next();
                Ok((0, 8))
            }
            Some('+') => {
                it.next();
                Ok((1, 8))
            }
            _ => Ok((1, 1)),
        }
    }
}

pub mod collection {
    //! `vec(strategy, size)` with sizes given as a count or a range.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Accepted size specifications.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declare property tests. Supports the subset of upstream syntax used in
/// this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u8..=255, 1..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (@fns ($config:expr)) => {};
    (
        @fns ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Render the inputs before the body runs: the body may
                // consume them by value.
                let rendered_inputs =
                    [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+].join(", ");
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} failed: {}\n  inputs: {}",
                            case, msg, rendered_inputs,
                        );
                    }
                }
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    // No-config form; must stay last so it cannot shadow the arms above.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a proptest body; failure aborts only the current case
/// report (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} != {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} != {} ({:?} vs {:?}): {}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0u8..=255, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn fixed_size_vec(v in collection::vec(0.0f64..1.0, 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn regex_strings_match_class(s in "[a-c]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn regex_with_ranges_and_escapes() {
        let s = crate::string::string_regex("[ -~\n\"]{0,24}").unwrap();
        let mut rng = crate::TestRng::for_case("regex", 1);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v.len() <= 24);
            assert!(v.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|i| crate::Strategy::generate(&strat, &mut crate::TestRng::for_case("d", i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| crate::Strategy::generate(&strat, &mut crate::TestRng::for_case("d", i)))
            .collect();
        assert_eq!(a, b);
    }
}
