//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *subset* of the `rand` 0.8 API the repo actually uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed across platforms and releases, which is all the tests
//! and pivot-selection code rely on (they never assume the upstream
//! `rand` byte streams).

/// Low-level word source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A type whose values can be drawn uniformly between two bounds. The
/// blanket [`SampleRange`] impls below stay generic over `T`, which is
/// what lets integer-literal ranges (`0..4`) unify with the surrounding
/// expression's type instead of falling back to `i32`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let word = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + word) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        // 24 uniform mantissa bits in [0, 1); scaled into [lo, hi).
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = lo + unit * (hi - lo);
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + unit * (hi - lo);
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

/// A range expression that can be sampled to yield a `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty_range(&self) -> bool;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
    #[inline]
    fn is_empty_range(&self) -> bool {
        self.start.partial_cmp(&self.end) != Some(core::cmp::Ordering::Less)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
    #[inline]
    fn is_empty_range(&self) -> bool {
        matches!(
            self.start().partial_cmp(self.end()),
            None | Some(core::cmp::Ordering::Greater)
        )
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        assert!(!range.is_empty_range(), "cannot sample empty range");
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (public-domain construction by Blackman & Vigna),
    /// seeded via SplitMix64. Deterministic and fast; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let r = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choosing (Fisher–Yates).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Everything most callers import.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let k = rng.gen_range(0u8..=255);
            let _ = k;
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
