//! Property tests for the delta log and the overlay's exactness.
//!
//! * Replaying the log is idempotent: reading and replaying twice gives
//!   the same state, and two `DeltaLake` opens answer identically.
//! * Arbitrary add/drop interleavings produce the same answers as a
//!   fresh build over the final live table set (the rebuild oracle) —
//!   threshold and top-k, both execution policies.
//! * Truncated or bit-flipped log tails fail with a typed
//!   [`PexesoError::Corrupt`], never a panic, and never read back
//!   cleanly.

use std::path::PathBuf;

use pexeso_core::column::ColumnSet;
use pexeso_core::config::{ExecPolicy, IndexOptions, JoinThreshold, PivotSelection, Tau};
use pexeso_core::error::PexesoError;
use pexeso_core::metric::Euclidean;
use pexeso_core::outofcore::{LakeManifest, PartitionedLake};
use pexeso_core::partition::PartitionConfig;
use pexeso_core::query::{Query, Queryable};
use pexeso_core::vector::VectorStore;
use pexeso_delta::{
    delta_log_path, drop_tables, ingest_columns, read_log, DeltaLake, DeltaState, IngestColumn,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 6;

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

fn column_floats(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).flat_map(|_| unit(rng)).collect()
}

fn index_options() -> IndexOptions {
    IndexOptions {
        num_pivots: 3,
        levels: Some(3),
        pivot_selection: PivotSelection::Pca,
        seed: 7,
        ..Default::default()
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pexeso_delta_props_{tag}_{}_{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deploy a base lake of `n_base` one-column tables named `b<i>` with
/// external ids `0..n_base`, writing the manifest the pipeline would.
fn deploy_base(dir: &std::path::Path, n_base: usize, seed: u64) -> ColumnSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns = ColumnSet::new(DIM);
    for c in 0..n_base {
        let floats = column_floats(&mut rng, 8);
        columns
            .add_column(&format!("b{c}"), "key", c as u64, floats.chunks_exact(DIM))
            .unwrap();
    }
    PartitionedLake::build(
        &columns,
        Euclidean,
        &PartitionConfig {
            k: 2,
            ..Default::default()
        },
        &index_options(),
        dir,
    )
    .unwrap();
    let mut manifest = LakeManifest::new("hash", DIM);
    manifest.next_external_id = n_base as u64;
    manifest.write(dir).unwrap();
    columns
}

fn query_store(seed: u64, n: usize) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = VectorStore::new(DIM);
    for _ in 0..n {
        q.push(&unit(&mut rng)).unwrap();
    }
    q
}

/// Compare two backends across threshold and top-k queries under both
/// policies; hit lists must be byte-identical.
fn assert_same_answers(a: &dyn Queryable, b: &dyn Queryable, q: &VectorStore, tag: &str) {
    for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel { threads: 3 }] {
        for (tau, t) in [
            (Tau::Ratio(0.15), JoinThreshold::Count(1)),
            (Tau::Ratio(0.3), JoinThreshold::Ratio(0.3)),
        ] {
            let query = Query::threshold(tau, t).with_policy(policy);
            let ra = a.execute(&query, q).unwrap();
            let rb = b.execute(&query, q).unwrap();
            assert_eq!(
                ra.hits, rb.hits,
                "{tag}: threshold {tau:?}/{t:?}/{policy:?}"
            );
        }
        for k in [1usize, 2, 5, 100] {
            let query = Query::topk(Tau::Ratio(0.3), k).with_policy(policy);
            let ra = a.execute(&query, q).unwrap();
            let rb = b.execute(&query, q).unwrap();
            assert_eq!(ra.hits, rb.hits, "{tag}: topk k={k}/{policy:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The central exactness property: after an arbitrary interleaving of
    /// ingests and drops, the `DeltaLake` answers exactly like a fresh
    /// deployment built over the final live table set — and replaying the
    /// log twice (two opens) is idempotent.
    #[test]
    fn interleavings_match_final_state_rebuild(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec((0u8..10, 0usize..8, 2usize..6), 1..10),
    ) {
        let dir = tempdir("mix");
        let base_columns = deploy_base(&dir, 4, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        // Names span base tables (b0..b3) and delta tables (d0..d3) so
        // drops can hit the base, earlier ingests, or nothing at all.
        let name = |i: usize| if i < 4 { format!("b{i}") } else { format!("d{}", i - 4) };
        for (op, target, len) in ops {
            if op < 6 {
                // Ingest one column under the chosen table name (re-adds
                // of dropped tables included).
                let col = IngestColumn {
                    table_name: name(target),
                    column_name: "key".into(),
                    vectors: column_floats(&mut rng, len),
                };
                ingest_columns(&dir, &[col]).unwrap();
            } else {
                drop_tables(&dir, &[name(target)]).unwrap();
            }
        }

        // Rebuild oracle: the final live set, same external ids, fresh
        // deployment in a second directory.
        let log = read_log(&dir).unwrap().unwrap();
        let state = DeltaState::replay(&log.records);
        let mut live: Vec<(u64, String, String, Vec<f32>)> = Vec::new();
        for meta in base_columns.columns() {
            if state.dropped_tables.contains(&meta.table_name) {
                continue;
            }
            let mut floats = Vec::new();
            for v in meta.vector_range() {
                floats.extend_from_slice(base_columns.store().get_raw(v as usize));
            }
            live.push((meta.external_id, meta.table_name.clone(), meta.column_name.clone(), floats));
        }
        for col in &state.live {
            live.push((col.external_id, col.table_name.clone(), col.column_name.clone(), col.vectors.clone()));
        }
        live.sort_by_key(|(id, ..)| *id);
        prop_assume!(!live.is_empty()); // everything dropped: nothing to compare

        let rebuild_dir = tempdir("rebuild");
        let mut columns = ColumnSet::new(DIM);
        for (id, table, column, floats) in &live {
            columns.add_column(table, column, *id, floats.chunks_exact(DIM)).unwrap();
        }
        let rebuilt = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig { k: 2, ..Default::default() },
            &index_options(),
            &rebuild_dir,
        ).unwrap();

        let delta_lake = DeltaLake::open(&dir).unwrap();
        let q = query_store(seed ^ 0xbeef, 5);
        assert_same_answers(&delta_lake, &rebuilt, &q, "delta vs rebuild");

        // Idempotent replay: a second open answers identically.
        let again = DeltaLake::open(&dir).unwrap();
        assert_same_answers(&delta_lake, &again, &q, "open twice");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&rebuild_dir).ok();
    }

    /// Damage anywhere in the log tail — truncation or a bit flip at a
    /// random position — must surface as a typed `Corrupt` error from the
    /// strict reader, never a panic and never a clean read.
    #[test]
    fn damaged_tails_fail_typed(
        seed in 0u64..1_000_000,
        n_records in 1usize..6,
        cut in 1usize..200,
        flip_pos in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let dir = tempdir("damage");
        deploy_base(&dir, 2, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n_records {
            if i % 3 == 2 {
                drop_tables(&dir, &[format!("b{}", i % 2)]).unwrap();
            } else {
                ingest_columns(&dir, &[IngestColumn {
                    table_name: format!("d{i}"),
                    column_name: "key".into(),
                    vectors: column_floats(&mut rng, 3),
                }]).unwrap();
            }
        }
        let clean = std::fs::read(delta_log_path(&dir)).unwrap();
        prop_assert!(read_log(&dir).unwrap().is_some());

        // Truncation.
        let keep = clean.len().saturating_sub(cut % clean.len()).max(1);
        if keep < clean.len() {
            std::fs::write(delta_log_path(&dir), &clean[..keep]).unwrap();
            match read_log(&dir) {
                Err(PexesoError::Corrupt(_)) => {}
                other => panic!("truncated at {keep}/{}: {other:?}", clean.len()),
            }
            // The damaged log also refuses to open as a lake (typed).
            match DeltaLake::open(&dir) {
                Err(PexesoError::Corrupt(_)) => {}
                other => panic!("DeltaLake::open on truncated log: {:?}", other.map(|_| ())),
            }
        }

        // Bit flip.
        let pos = flip_pos % clean.len();
        let mut flipped = clean.clone();
        flipped[pos] ^= 1 << flip_bit;
        std::fs::write(delta_log_path(&dir), &flipped).unwrap();
        match read_log(&dir) {
            Err(PexesoError::Corrupt(_)) => {}
            Err(other) => panic!("flip at {pos}: untyped error {other:?}"),
            Ok(_) => panic!("flip at {pos}: corrupted log read back cleanly"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
