//! Crash-recovery chaos suite: kill the maintenance operations at
//! **every fault point they cross** and prove recovery is never silently
//! wrong.
//!
//! Method, per operation (ingest into a fresh log, ingest into an
//! existing log, drop, compact):
//!
//! 1. *Trace*: run the operation once in fault-trace mode to enumerate
//!    every `(fault point, hit count)` pair it crosses — the sweep is
//!    exhaustive by construction, not by a hand-maintained list.
//! 2. *Replay*: for every `(point, ordinal)` and every crash shape
//!    (clean I/O error, torn write), copy the pristine pre-state
//!    directory, arm exactly one one-shot fault, run the operation
//!    (which must fail), disarm, and re-open the lake like a restarted
//!    process would.
//! 3. *Judge*: the re-opened lake must answer the query battery
//!    byte-identically to the **pre-state** (the crash lost the
//!    operation), the **post-state** (the crash happened after the
//!    durability point), or a **committed prefix** of the batch (WAL
//!    atomicity is per *record*, not per batch: a crash mid-append may
//!    leave the first k records complete and checksummed — the same
//!    state a power loss leaves — while the operation reports failure) —
//!    or the open must fail with a **typed** error (`Corrupt`/`Io`).
//!    Anything else — an answer set matching no rebuild of surviving
//!    records, an untyped failure — is the silent corruption this suite
//!    exists to catch.
//!
//! The pre/post reference answers are themselves pinned byte-identical
//! to full rebuilds by `tests/delta_differential.rs`, so "pre or post"
//! here really means "some rebuild of the surviving records".

use std::path::{Path, PathBuf};

use pexeso_core::fault::{self, FaultAction, FaultRule};
use pexeso_core::prelude::*;
use pexeso_delta::{compact_lake, drop_tables, ingest_columns, DeltaLake, IngestColumn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 8;

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

fn column_floats(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).flat_map(|_| unit(rng)).collect()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pexeso_chaos_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copy a deployment directory (flat: partitions, manifest, delta log).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

/// A small deployment: four base columns, manifest written.
fn deploy(dir: &Path, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns = ColumnSet::new(DIM);
    for c in 0..4u64 {
        let floats = column_floats(&mut rng, 8);
        columns
            .add_column(&format!("b{c}"), "key", c, floats.chunks_exact(DIM))
            .unwrap();
    }
    PartitionedLake::build(
        &columns,
        Euclidean,
        &PartitionConfig {
            k: 2,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            pivot_selection: PivotSelection::Pca,
            seed: 7,
            ..Default::default()
        },
        dir,
    )
    .unwrap();
    let mut manifest = LakeManifest::new("hash", DIM);
    manifest.next_external_id = 4;
    manifest.write(dir).unwrap();
}

fn ingest_batch(seed: u64, tables: &[&str]) -> Vec<IngestColumn> {
    let mut rng = StdRng::seed_from_u64(seed);
    tables
        .iter()
        .map(|t| IngestColumn {
            table_name: t.to_string(),
            column_name: "key".into(),
            vectors: column_floats(&mut rng, 5),
        })
        .collect()
}

fn query_store(seed: u64, n: usize) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = VectorStore::new(DIM);
    for _ in 0..n {
        q.push(&unit(&mut rng)).unwrap();
    }
    q
}

/// The query battery: every judged state answers these. (Cross-policy
/// equivalence is delta_differential's job; one policy suffices here.)
fn answers(dir: &Path, q: &VectorStore) -> Result<Vec<Vec<GlobalHit>>> {
    let lake = DeltaLake::open(dir)?;
    let mut out = Vec::new();
    for query in [
        Query::threshold(Tau::Ratio(0.25), JoinThreshold::Count(1)),
        Query::threshold(Tau::Ratio(0.4), JoinThreshold::Ratio(0.3)),
        Query::topk(Tau::Ratio(0.25), 3),
        Query::topk(Tau::Ratio(0.4), 100),
    ] {
        out.push(lake.execute(&query, q)?.hits);
    }
    Ok(out)
}

/// A maintenance operation (or a prefix of one) run against a directory.
type OpFn<'a> = &'a dyn Fn(&Path) -> Result<()>;

/// One maintenance operation under sweep.
struct Op<'a> {
    name: &'a str,
    /// Fault points this op is expected to cross (sanity check that the
    /// hooks did not silently fall out of the code paths).
    must_cross: &'a [&'a str],
    run: OpFn<'a>,
    /// Proper prefixes of the operation that a mid-batch crash may leave
    /// committed (per-record WAL atomicity). Empty for single-publish
    /// operations like compaction.
    partial_runs: &'a [OpFn<'a>],
}

/// Sweep one operation: trace its fault points, then crash it at every
/// (point, ordinal, shape) and judge the recovered state.
fn sweep(op: &Op, pre: &Path, scratch_tag: &str) {
    let q = query_store(0x9e37, 5);
    fault::disarm_all();

    // Reference answer sets a recovered lake may legitimately serve:
    // the pre-state, every committed prefix, and the full post-state.
    let mut references = vec![answers(pre, &q).expect("pre-state must open cleanly")];
    let post = tempdir(&format!("{scratch_tag}_post"));
    for partial in op.partial_runs {
        copy_dir(pre, &post);
        partial(&post).expect("partial run must succeed");
        references.push(answers(&post, &q).expect("partial state must open cleanly"));
    }
    copy_dir(pre, &post);
    (op.run)(&post).expect("clean run must succeed");
    references.push(answers(&post, &q).expect("post-state must open cleanly"));

    // Trace: enumerate every fault point the op crosses.
    let trace = tempdir(&format!("{scratch_tag}_trace"));
    copy_dir(pre, &trace);
    fault::begin_trace();
    (op.run)(&trace).expect("trace run must succeed");
    let points = fault::traced_points();
    fault::disarm_all();
    for expected in op.must_cross {
        assert!(
            points.iter().any(|(p, _)| p == expected),
            "{}: expected fault point '{expected}' not crossed; traced: {points:?}",
            op.name
        );
    }

    // Replay: crash at every (point, ordinal) with every crash shape.
    let work = tempdir(&format!("{scratch_tag}_work"));
    for (point, hit_count) in &points {
        for ordinal in 0..*hit_count {
            for action in [FaultAction::Error, FaultAction::Tear { keep: 5 }] {
                let tag = format!("{}: {point}#{ordinal} {action:?}", op.name);
                copy_dir(pre, &work);
                fault::arm(point, FaultRule::nth(ordinal, action));
                let crashed = (op.run)(&work);
                fault::disarm_all();
                assert!(crashed.is_err(), "{tag}: armed op must fail");

                // Re-open like a restarted process and judge.
                match answers(&work, &q) {
                    Ok(got) => assert!(
                        references.contains(&got),
                        "{tag}: recovered answers match no rebuild of \
                         surviving records — silent corruption"
                    ),
                    Err(PexesoError::Corrupt(_)) | Err(PexesoError::Io(_)) => {
                        // Typed refusal to serve: honest, allowed.
                    }
                    Err(other) => panic!("{tag}: untyped recovery failure: {other:?}"),
                }
            }
        }
    }
    for d in [&post, &trace, &work] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn crash_sweep_ingest_into_fresh_log() {
    let _guard = fault::test_lock();
    fault::disarm_all();
    let pre = tempdir("ingest_fresh_pre");
    deploy(&pre, 21);
    sweep(
        &Op {
            name: "ingest(fresh log)",
            must_cross: &["wal.append.header", "wal.append.record", "wal.append.fsync"],
            run: &|dir| ingest_columns(dir, &ingest_batch(31, &["d0", "d1"])).map(|_| ()),
            partial_runs: &[&|dir: &Path| {
                ingest_columns(dir, &ingest_batch(31, &["d0", "d1"])[..1]).map(|_| ())
            }],
        },
        &pre,
        "ingest_fresh",
    );
    std::fs::remove_dir_all(&pre).ok();
}

#[test]
fn crash_sweep_ingest_into_existing_log() {
    let _guard = fault::test_lock();
    fault::disarm_all();
    let pre = tempdir("ingest_existing_pre");
    deploy(&pre, 22);
    ingest_columns(&pre, &ingest_batch(32, &["d0"])).unwrap();
    sweep(
        &Op {
            name: "ingest(existing log)",
            // The header already exists: appends must not rewrite it.
            must_cross: &["wal.read.open", "wal.append.record", "wal.append.fsync"],
            run: &|dir| ingest_columns(dir, &ingest_batch(33, &["d1", "d2"])).map(|_| ()),
            partial_runs: &[&|dir: &Path| {
                ingest_columns(dir, &ingest_batch(33, &["d1", "d2"])[..1]).map(|_| ())
            }],
        },
        &pre,
        "ingest_existing",
    );
    std::fs::remove_dir_all(&pre).ok();
}

#[test]
fn crash_sweep_drop_tables() {
    let _guard = fault::test_lock();
    fault::disarm_all();
    let pre = tempdir("drop_pre");
    deploy(&pre, 23);
    ingest_columns(&pre, &ingest_batch(34, &["d0", "d1"])).unwrap();
    sweep(
        &Op {
            name: "drop",
            must_cross: &["wal.append.record", "wal.append.fsync"],
            run: &|dir| drop_tables(dir, &["b1".into(), "d0".into()]).map(|_| ()),
            partial_runs: &[&|dir: &Path| drop_tables(dir, &["b1".into()]).map(|_| ())],
        },
        &pre,
        "drop",
    );
    std::fs::remove_dir_all(&pre).ok();
}

#[test]
fn crash_sweep_compaction() {
    let _guard = fault::test_lock();
    fault::disarm_all();
    let pre = tempdir("compact_pre");
    deploy(&pre, 24);
    ingest_columns(&pre, &ingest_batch(35, &["d0", "d1"])).unwrap();
    drop_tables(&pre, &["b2".into()]).unwrap();
    sweep(
        &Op {
            name: "compact",
            must_cross: &[
                "lake.compact.marker",
                "lake.compact.build",
                "lake.compact.manifest",
                "manifest.write.tmp",
                "manifest.rename",
                "lake.compact.clear_marker",
                "lake.compact.remove_log",
            ],
            run: &|dir| compact_lake(dir, None, ExecPolicy::Sequential).map(|_| ()),
            // Compaction publishes atomically: no committed prefix exists.
            partial_runs: &[],
        },
        &pre,
        "compact",
    );
    std::fs::remove_dir_all(&pre).ok();
}
