//! [`DeltaLake`]: a deployed lake plus its delta log, queryable as one
//! backend — and the lifecycle operations around it (ingest, drop,
//! compact).

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use pexeso_core::column::ColumnSet;
use pexeso_core::config::{ExecPolicy, IndexOptions};
use pexeso_core::error::{PexesoError, Result};
use pexeso_core::fault;
use pexeso_core::metric::{Angular, Chebyshev, Euclidean, Manhattan, Metric};
use pexeso_core::outofcore::{execute_on_index, LakeManifest, PartitionedLake};
use pexeso_core::partition::{PartitionConfig, PartitionMethod};
use pexeso_core::persist::load_index;
use pexeso_core::query::{Query, QueryResponse, Queryable};
use pexeso_core::vector::VectorStore;

use crate::overlay::{AnyOverlay, DeltaOverlay};
use crate::wal::{
    append_records, check_header, read_log, remove_log, DeltaRecord, DeltaState, LogStatus,
};

/// A deployment directory overlaid with its delta log: the base
/// [`PartitionedLake`] partitions stay untouched on disk while adds and
/// drops live in the replayed in-memory overlay. Answers are
/// byte-identical to a full rebuild over the final table set (same
/// tie-break contract as the base backends; tombstones are filtered
/// before the merge).
#[derive(Debug)]
pub struct DeltaLake {
    base: PartitionedLake,
    manifest: LakeManifest,
    overlay: AnyOverlay,
    dir: PathBuf,
}

impl DeltaLake {
    /// Open `dir`: base partitions + manifest + replayed delta log. A log
    /// left behind by a compaction that crashed between the manifest bump
    /// and the log deletion (header names an older `index_version`) has
    /// already been folded into the base — it is ignored, not replayed
    /// (and not deleted either: opening is a read path and must work on
    /// read-only mounts; the next *write* operation cleans the stale log
    /// up). A damaged log is a typed error: serving a silently partial
    /// delta would break the exactness contract.
    pub fn open(dir: &Path) -> Result<Self> {
        let manifest = LakeManifest::read(dir)?;
        verify_no_crashed_compaction(dir, &manifest)?;
        let base = PartitionedLake::open(dir)?;
        let state = match read_log(dir)? {
            Some(contents) => match check_header(&contents.header, &manifest)? {
                LogStatus::Current => DeltaState::replay(&contents.records),
                LogStatus::Stale => DeltaState::default(),
            },
            None => DeltaState::default(),
        };
        let overlay = AnyOverlay::from_state(&state, &manifest.metric, manifest.dim)?;
        Ok(Self {
            base,
            manifest,
            overlay,
            dir: dir.to_path_buf(),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn base(&self) -> &PartitionedLake {
        &self.base
    }

    pub fn manifest(&self) -> &LakeManifest {
        &self.manifest
    }

    pub fn overlay(&self) -> &AnyOverlay {
        &self.overlay
    }

    /// Typed execution: base partitions loaded from disk per query (the
    /// out-of-core contract) plus the in-memory delta unit.
    fn execute_typed<M: Metric>(
        &self,
        metric: M,
        overlay: &DeltaOverlay<M>,
        query: &Query,
        vectors: &VectorStore,
    ) -> Result<QueryResponse> {
        let files = self.base.partition_files();
        overlay.execute_with_base(files.len(), query, vectors, |i, inner, guard| {
            let index = load_index(&files[i], metric.clone())?;
            execute_on_index(&index, inner, vectors, guard)
        })
    }
}

/// A [`DeltaLake`] answers the unified [`Query`] like every other
/// backend; the metric is fixed by the manifest, and an explicit
/// [`Query::metric`] expectation is verified against it.
impl Queryable for DeltaLake {
    fn execute(&self, query: &Query, vectors: &VectorStore) -> Result<QueryResponse> {
        if let Some(expected) = query.metric.as_deref() {
            if expected != self.manifest.metric {
                return Err(PexesoError::InvalidParameter(format!(
                    "deployment manifest names metric '{}'; query expects '{expected}'",
                    self.manifest.metric
                )));
            }
        }
        match &self.overlay {
            AnyOverlay::Euclidean(o) => self.execute_typed(Euclidean, o, query, vectors),
            AnyOverlay::Manhattan(o) => self.execute_typed(Manhattan, o, query, vectors),
            AnyOverlay::Chebyshev(o) => self.execute_typed(Chebyshev, o, query, vectors),
            AnyOverlay::Angular(o) => self.execute_typed(Angular, o, query, vectors),
        }
    }
}

// ---------------------------------------------------------------------------
// Maintenance lock
// ---------------------------------------------------------------------------

/// Serializes the deployment's *write* operations (ingest, drop,
/// compact) across processes via an exclusively-created
/// `maintenance.lock` file. Without it, a compact racing a concurrent
/// ingest could fold a snapshot of the log, bump the manifest, and
/// delete records appended (and acknowledged!) after its snapshot — and
/// two concurrent ingests could allocate the same external ids. Read
/// paths (`DeltaLake::open`, queries, serve `APPLY`) never take it.
///
/// The lock is advisory and crash-coarse: a process killed while holding
/// it leaves the file behind, and the next writer fails with a typed
/// error naming the file so an operator can remove it after confirming
/// no maintenance is actually running. That honesty is deliberate —
/// guessing at staleness (PID probing, TTLs) risks breaking a genuinely
/// running compaction's invariants.
struct MaintenanceLock {
    path: PathBuf,
}

impl MaintenanceLock {
    fn acquire(dir: &Path) -> Result<Self> {
        use std::io::Write as _;
        let path = dir.join("maintenance.lock");
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                let _ = writeln!(f, "pid={}", std::process::id());
                Ok(Self { path })
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(PexesoError::InvalidParameter(format!(
                    "another maintenance operation holds {}; if no ingest or \
                     compact is running, remove the file and retry",
                    path.display()
                )))
            }
            Err(e) => Err(PexesoError::Io(e)),
        }
    }
}

impl Drop for MaintenanceLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

// ---------------------------------------------------------------------------
// Compaction-in-progress marker
// ---------------------------------------------------------------------------

/// Name of the marker file that makes a mid-rebuild compaction crash
/// detectable. Compaction rebuilds the base partitions *in place*:
/// between the first rewritten partition byte and the manifest bump the
/// directory transiently mixes folded partitions with the
/// pre-compaction manifest and a still-current delta log. Opening that
/// state naively would replay the log over a base that already contains
/// it — double-applied records, silently wrong answers. The marker is
/// created (and fsynced) before the rebuild starts, stamped with the
/// manifest version being folded, and removed only after the manifest
/// bump publishes the new build.
pub const COMPACT_MARKER_FILE: &str = "compact.inprogress";

fn compact_marker_path(dir: &Path) -> PathBuf {
    dir.join(COMPACT_MARKER_FILE)
}

fn write_compact_marker(dir: &Path, folding_version: u64) -> Result<()> {
    let path = compact_marker_path(dir);
    let mut file = std::fs::File::create(&path).map_err(PexesoError::Io)?;
    let body = format!("folding_version={folding_version}\n");
    fault::write_all(&mut file, body.as_bytes(), "lake.compact.marker").map_err(PexesoError::Io)?;
    file.sync_all().map_err(PexesoError::Io)?;
    Ok(())
}

fn read_compact_marker(dir: &Path) -> Result<Option<u64>> {
    let path = compact_marker_path(dir);
    let body = match std::fs::read_to_string(&path) {
        Ok(body) => body,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PexesoError::Io(e)),
    };
    body.lines()
        .find_map(|line| line.strip_prefix("folding_version="))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Some)
        .ok_or_else(|| {
            PexesoError::Corrupt(format!(
                "unreadable compaction marker {}: expected 'folding_version=<u64>'",
                path.display()
            ))
        })
}

/// Fail typed if `dir` holds the debris of a compaction that crashed
/// *mid-rebuild* — after the marker (and possibly some partition bytes)
/// were written but before the manifest bump published the new build.
/// In that state the partitions may mix the old and new builds under the
/// old manifest, and the delta log still reads as current: replaying it
/// would double-apply every record. There is no safe way to serve, so
/// every open path (including `pexeso-serve`'s resident snapshots, which
/// bypass [`DeltaLake::open`]) must call this before trusting the
/// directory.
///
/// A marker stamped with a version *older* than the manifest is stale:
/// the compaction reached its point of no return (the manifest bump) and
/// crashed before cleanup, so the directory is the fully-published new
/// build. Read paths ignore it (read-only mounts must keep working);
/// write paths clean it up (`clear_stale_compact_marker`).
pub fn verify_no_crashed_compaction(dir: &Path, manifest: &LakeManifest) -> Result<()> {
    match read_compact_marker(dir)? {
        None => Ok(()),
        Some(v) if v < manifest.index_version => Ok(()), // stale: bump published
        Some(v) => Err(PexesoError::Corrupt(format!(
            "a compaction of build version {v} crashed mid-rebuild in {}: the \
             partition files may mix the old and new builds; restore the \
             deployment from its source or rebuild it, then remove {}",
            dir.display(),
            compact_marker_path(dir).display()
        ))),
    }
}

/// Remove a stale compaction marker (one whose recorded version the
/// manifest has already moved past). Called by write operations after
/// [`verify_no_crashed_compaction`] has vouched for the directory.
fn clear_stale_compact_marker(dir: &Path) -> Result<()> {
    match std::fs::remove_file(compact_marker_path(dir)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(PexesoError::Io(e)),
    }
}

// ---------------------------------------------------------------------------
// Ingest / drop
// ---------------------------------------------------------------------------

/// One embedded column handed to [`ingest_columns`]. Vectors are
/// row-major `f32`s of the deployment's dimensionality, already
/// normalized exactly like the offline build normalizes (the WAL stores
/// them verbatim, so ingest ≡ rebuild bit-for-bit).
#[derive(Debug, Clone)]
pub struct IngestColumn {
    pub table_name: String,
    pub column_name: String,
    pub vectors: Vec<f32>,
}

/// What an ingest did, for operator output and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    pub columns_added: usize,
    pub vectors_added: usize,
    /// External ids assigned: `first_external_id..next_external_id`.
    pub first_external_id: u64,
    pub next_external_id: u64,
    /// Total records now in the log (including this ingest).
    pub log_records: usize,
}

/// The id-allocation high-water mark for the next ingest: the manifest's
/// `next_external_id` advanced past every id the current log ever used.
/// Legacy manifests (no recorded `next_external_id`) fall back to
/// scanning the base partitions once — slow but safe, and compaction
/// upgrades the manifest.
fn allocation_floor(dir: &Path, manifest: &LakeManifest, records: &[DeltaRecord]) -> Result<u64> {
    let base_next = if manifest.next_external_id > 0 {
        manifest.next_external_id
    } else {
        let base = PartitionedLake::open(dir)?;
        let mut max_id = None::<u64>;
        for i in 0..base.num_partitions() {
            // External ids are metric-independent; load under the
            // manifest metric to satisfy the persisted metric check.
            let metas = match manifest.metric.as_str() {
                "euclidean" => base
                    .load_partition(i, Euclidean)?
                    .columns()
                    .columns()
                    .to_vec(),
                "manhattan" => base
                    .load_partition(i, Manhattan)?
                    .columns()
                    .columns()
                    .to_vec(),
                "chebyshev" => base
                    .load_partition(i, Chebyshev)?
                    .columns()
                    .columns()
                    .to_vec(),
                "angular" => base
                    .load_partition(i, Angular)?
                    .columns()
                    .columns()
                    .to_vec(),
                other => {
                    return Err(PexesoError::Corrupt(format!(
                        "manifest names unsupported metric '{other}'"
                    )))
                }
            };
            max_id = metas.iter().map(|m| m.external_id).chain(max_id).max();
        }
        max_id.map_or(0, |m| m + 1)
    };
    Ok(DeltaState::next_external_id_after(records, base_next))
}

/// Read the current (non-stale) log records of `dir`, cleaning up a
/// stale one the same way [`DeltaLake::open`] does.
fn current_records(dir: &Path, manifest: &LakeManifest) -> Result<Vec<DeltaRecord>> {
    match read_log(dir)? {
        Some(contents) => match check_header(&contents.header, manifest)? {
            LogStatus::Current => Ok(contents.records),
            LogStatus::Stale => {
                remove_log(dir)?;
                Ok(Vec::new())
            }
        },
        None => Ok(Vec::new()),
    }
}

/// Append new columns to `dir`'s delta log, assigning fresh external ids
/// above everything the deployment has ever used. This is the cheap half
/// of incremental maintenance: no re-embed, no re-partition — one
/// checksummed, fsynced append.
pub fn ingest_columns(dir: &Path, columns: &[IngestColumn]) -> Result<IngestReport> {
    if columns.is_empty() {
        return Err(PexesoError::EmptyInput("no columns to ingest"));
    }
    let _lock = MaintenanceLock::acquire(dir)?;
    let manifest = LakeManifest::read(dir)?;
    verify_no_crashed_compaction(dir, &manifest)?;
    clear_stale_compact_marker(dir)?;
    for col in columns {
        if col.vectors.is_empty() || col.vectors.len() % manifest.dim != 0 {
            return Err(PexesoError::InvalidParameter(format!(
                "column '{}.{}' holds {} floats, not a positive multiple of dim {}",
                col.table_name,
                col.column_name,
                col.vectors.len(),
                manifest.dim
            )));
        }
    }
    let existing = current_records(dir, &manifest)?;
    let first = allocation_floor(dir, &manifest, &existing)?;
    let mut next = first;
    let records: Vec<DeltaRecord> = columns
        .iter()
        .map(|col| {
            let rec = DeltaRecord::AddColumn {
                table_name: col.table_name.clone(),
                column_name: col.column_name.clone(),
                external_id: next,
                vectors: col.vectors.clone(),
            };
            next += 1;
            rec
        })
        .collect();
    append_records(dir, &manifest, &records)?;
    Ok(IngestReport {
        columns_added: columns.len(),
        vectors_added: columns.iter().map(|c| c.vectors.len() / manifest.dim).sum(),
        first_external_id: first,
        next_external_id: next,
        log_records: existing.len() + records.len(),
    })
}

/// Tombstone tables by name: their columns (base and previously-ingested
/// alike) disappear from every subsequent query. Space is reclaimed at
/// the next compaction.
pub fn drop_tables(dir: &Path, table_names: &[String]) -> Result<usize> {
    if table_names.is_empty() {
        return Err(PexesoError::EmptyInput("no tables to drop"));
    }
    let _lock = MaintenanceLock::acquire(dir)?;
    let manifest = LakeManifest::read(dir)?;
    verify_no_crashed_compaction(dir, &manifest)?;
    clear_stale_compact_marker(dir)?;
    current_records(dir, &manifest)?; // validates / cleans a stale log
    let records: Vec<DeltaRecord> = table_names
        .iter()
        .map(|t| DeltaRecord::DropTable {
            table_name: t.clone(),
        })
        .collect();
    append_records(dir, &manifest, &records)?;
    Ok(records.len())
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

/// What a compaction did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactReport {
    /// Live columns in the compacted base (base survivors + delta).
    pub n_columns: usize,
    pub n_vectors: usize,
    pub n_partitions: usize,
    /// Manifest version after the bump.
    pub index_version: u64,
    /// Records folded in from the delta log.
    pub records_folded: usize,
    /// Base columns dropped by tombstones.
    pub columns_dropped: usize,
}

/// Fold `dir`'s delta log into fresh base partitions: gather every live
/// column (base columns not tombstoned, plus the replayed delta), rebuild
/// the partitioning, bump the manifest version atomically, and delete the
/// log. External ids are preserved — queries answer identically before
/// and after (`DeltaLake` overlay ≡ compacted base), only faster.
///
/// Crash safety: the manifest bump is an atomic rename and happens
/// *before* the log deletion, so a crash in between leaves a log whose
/// header names the old build — which every reader recognises as already
/// folded and ignores. The rebuild itself happens *in place*, so a crash
/// mid-rebuild leaves partitions that may mix the old and new builds
/// under the old manifest; the [`COMPACT_MARKER_FILE`] written before
/// the first partition byte makes that state a typed
/// [`PexesoError::Corrupt`] on every open path instead of a silent
/// double-apply of the delta log. (Serving daemons are unaffected either
/// way — they answer from resident memory.)
pub fn compact_lake(
    dir: &Path,
    partitions: Option<usize>,
    policy: ExecPolicy,
) -> Result<CompactReport> {
    let _lock = MaintenanceLock::acquire(dir)?;
    let manifest = LakeManifest::read(dir)?;
    verify_no_crashed_compaction(dir, &manifest)?;
    clear_stale_compact_marker(dir)?;
    let base = PartitionedLake::open(dir)?;
    let records = current_records(dir, &manifest)?;
    let state = DeltaState::replay(&records);
    let next_external_id = allocation_floor(dir, &manifest, &records)?;

    // Gather live columns: (external_id, table, column, vectors).
    let mut live: Vec<(u64, String, String, Vec<f32>)> = Vec::new();
    let mut columns_dropped = 0usize;
    let dim = manifest.dim;
    let mut collect = |cs: &ColumnSet, dropped: &HashSet<String>| {
        for meta in cs.columns() {
            if dropped.contains(&meta.table_name) {
                columns_dropped += 1;
                continue;
            }
            let mut vectors = Vec::with_capacity(meta.len as usize * dim);
            for v in meta.vector_range() {
                vectors.extend_from_slice(cs.store().get_raw(v as usize));
            }
            live.push((
                meta.external_id,
                meta.table_name.clone(),
                meta.column_name.clone(),
                vectors,
            ));
        }
    };
    for i in 0..base.num_partitions() {
        match manifest.metric.as_str() {
            "euclidean" => collect(
                base.load_partition(i, Euclidean)?.columns(),
                &state.dropped_tables,
            ),
            "manhattan" => collect(
                base.load_partition(i, Manhattan)?.columns(),
                &state.dropped_tables,
            ),
            "chebyshev" => collect(
                base.load_partition(i, Chebyshev)?.columns(),
                &state.dropped_tables,
            ),
            "angular" => collect(
                base.load_partition(i, Angular)?.columns(),
                &state.dropped_tables,
            ),
            other => {
                return Err(PexesoError::Corrupt(format!(
                    "manifest names unsupported metric '{other}'"
                )))
            }
        }
    }
    #[allow(dropping_copy_types, clippy::drop_non_drop)]
    drop(collect); // end the closure's mutable borrow of `live`
    for col in &state.live {
        live.push((
            col.external_id,
            col.table_name.clone(),
            col.column_name.clone(),
            col.vectors.clone(),
        ));
    }
    if live.is_empty() {
        return Err(PexesoError::EmptyInput(
            "compaction would leave no live column",
        ));
    }
    // Canonical order — ascending external id — matches what a
    // from-scratch build over the same table set produces, keeping the
    // (seeded, deterministic) partitioning and all downstream answers
    // byte-identical to a full rebuild.
    live.sort_by_key(|(id, ..)| *id);
    let mut columns = ColumnSet::new(dim);
    for (id, table, column, vectors) in &live {
        columns.add_column(table, column, *id, vectors.chunks_exact(dim))?;
    }
    let n_columns = columns.n_columns();
    let n_vectors = columns.n_vectors();

    let partition_config = PartitionConfig {
        k: partitions.unwrap_or_else(|| base.num_partitions()),
        method: PartitionMethod::JsdKmeans,
        ..Default::default()
    };
    let index_options = IndexOptions {
        exec: policy,
        ..Default::default()
    };
    // From here on the directory is transiently inconsistent (new
    // partition bytes under the old manifest). The marker makes a crash
    // in that window detectable instead of silently double-applying.
    write_compact_marker(dir, manifest.index_version)?;
    fault::check("lake.compact.build")?;
    let rebuilt = build_typed(
        &manifest.metric,
        &columns,
        &partition_config,
        &index_options,
        dir,
    )?;
    let new_manifest = LakeManifest {
        index_version: manifest.index_version + 1,
        next_external_id,
        ..manifest
    };
    fault::check("lake.compact.manifest")?;
    new_manifest.write(dir)?; // atomic: the point of no return
    fault::check("lake.compact.clear_marker")?;
    clear_stale_compact_marker(dir)?; // marker's version is behind the manifest now
    fault::check("lake.compact.remove_log")?;
    remove_log(dir)?; // stale now even if this line never runs
    Ok(CompactReport {
        n_columns,
        n_vectors,
        n_partitions: rebuilt.num_partitions(),
        index_version: new_manifest.index_version,
        records_folded: records.len(),
        columns_dropped,
    })
}

fn build_typed(
    metric_name: &str,
    columns: &ColumnSet,
    partition_config: &PartitionConfig,
    index_options: &IndexOptions,
    dir: &Path,
) -> Result<PartitionedLake> {
    match metric_name {
        "euclidean" => {
            PartitionedLake::build(columns, Euclidean, partition_config, index_options, dir)
        }
        "manhattan" => {
            PartitionedLake::build(columns, Manhattan, partition_config, index_options, dir)
        }
        "chebyshev" => {
            PartitionedLake::build(columns, Chebyshev, partition_config, index_options, dir)
        }
        "angular" => PartitionedLake::build(columns, Angular, partition_config, index_options, dir),
        other => Err(PexesoError::Corrupt(format!(
            "manifest names unsupported metric '{other}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{delta_log_path, read_log};
    use pexeso_core::config::PivotSelection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DIM: usize = 6;

    fn unit(rng: &mut StdRng) -> Vec<f32> {
        let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n.max(1e-9));
        v
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pexeso_lake_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn deploy_small(dir: &Path) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut columns = ColumnSet::new(DIM);
        for c in 0..3u64 {
            let floats: Vec<f32> = (0..6).flat_map(|_| unit(&mut rng)).collect();
            columns
                .add_column(&format!("b{c}"), "key", c, floats.chunks_exact(DIM))
                .unwrap();
        }
        PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 2,
                ..Default::default()
            },
            &IndexOptions {
                num_pivots: 3,
                levels: Some(3),
                pivot_selection: PivotSelection::Pca,
                seed: 7,
                ..Default::default()
            },
            dir,
        )
        .unwrap();
        let mut manifest = LakeManifest::new("hash", DIM);
        manifest.next_external_id = 3;
        manifest.write(dir).unwrap();
    }

    fn one_column(seed: u64, table: &str) -> IngestColumn {
        let mut rng = StdRng::seed_from_u64(seed);
        IngestColumn {
            table_name: table.to_string(),
            column_name: "key".into(),
            vectors: (0..4).flat_map(|_| unit(&mut rng)).collect(),
        }
    }

    #[test]
    fn maintenance_lock_serializes_writers_and_releases() {
        let dir = tempdir("lock");
        deploy_small(&dir);
        // A held lock makes every write operation fail typed...
        let held = MaintenanceLock::acquire(&dir).unwrap();
        for result in [
            ingest_columns(&dir, &[one_column(1, "d0")]).map(|_| ()),
            drop_tables(&dir, &["b0".into()]).map(|_| ()),
            compact_lake(&dir, None, ExecPolicy::Sequential).map(|_| ()),
        ] {
            match result {
                Err(PexesoError::InvalidParameter(msg)) => {
                    assert!(msg.contains("maintenance"), "{msg}")
                }
                other => panic!("expected lock conflict, got {other:?}"),
            }
        }
        // ...and none of them touched the log.
        assert!(read_log(&dir).unwrap().is_none());
        // Releasing (drop) unblocks the next writer; each operation
        // releases its own lock on return, so a sequence just works.
        drop(held);
        ingest_columns(&dir, &[one_column(1, "d0")]).unwrap();
        drop_tables(&dir, &["b0".into()]).unwrap();
        compact_lake(&dir, None, ExecPolicy::Sequential).unwrap();
        assert!(!dir.join("maintenance.lock").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashed_compaction_marker_fails_typed_until_stale() {
        let dir = tempdir("marker");
        deploy_small(&dir);
        ingest_columns(&dir, &[one_column(9, "d0")]).unwrap();
        let manifest = LakeManifest::read(&dir).unwrap();
        // A marker naming the *current* build version means a compaction
        // crashed mid-rebuild: every path must fail typed, not replay.
        write_compact_marker(&dir, manifest.index_version).unwrap();
        for result in [
            DeltaLake::open(&dir).map(|_| ()),
            ingest_columns(&dir, &[one_column(10, "d1")]).map(|_| ()),
            drop_tables(&dir, &["b0".into()]).map(|_| ()),
            compact_lake(&dir, None, ExecPolicy::Sequential).map(|_| ()),
        ] {
            match result {
                Err(PexesoError::Corrupt(msg)) => {
                    assert!(msg.contains("compaction"), "{msg}")
                }
                other => panic!("expected crashed-compaction error, got {other:?}"),
            }
        }
        // A marker *behind* the manifest is stale (crash after the bump):
        // reads ignore it, the next write cleans it up.
        write_compact_marker(&dir, manifest.index_version - 1).unwrap();
        DeltaLake::open(&dir).unwrap();
        assert!(
            dir.join(COMPACT_MARKER_FILE).exists(),
            "open must not delete"
        );
        ingest_columns(&dir, &[one_column(11, "d1")]).unwrap();
        assert!(!dir.join(COMPACT_MARKER_FILE).exists());
        // A successful compaction leaves no marker behind.
        compact_lake(&dir, None, ExecPolicy::Sequential).unwrap();
        assert!(!dir.join(COMPACT_MARKER_FILE).exists());
        DeltaLake::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_ignores_stale_log_without_deleting_it() {
        let dir = tempdir("stale_ro");
        deploy_small(&dir);
        ingest_columns(&dir, &[one_column(2, "d0")]).unwrap();
        // Simulate the compaction crash window: manifest bumped, log
        // still on disk.
        let mut manifest = LakeManifest::read(&dir).unwrap();
        manifest.index_version += 1;
        manifest.write(&dir).unwrap();
        // Opening (a read path) serves the base only and leaves the
        // stale log alone — it must work on read-only mounts.
        let lake = DeltaLake::open(&dir).unwrap();
        assert!(lake.overlay().is_empty());
        assert!(delta_log_path(&dir).exists(), "open must not delete");
        // The next write operation cleans it up and starts fresh.
        ingest_columns(&dir, &[one_column(3, "d1")]).unwrap();
        let log = read_log(&dir).unwrap().unwrap();
        assert_eq!(log.header.base_index_version, manifest.index_version);
        assert_eq!(log.records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
