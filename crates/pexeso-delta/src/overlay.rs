//! Exact query execution over base partitions + a delta overlay.
//!
//! A [`DeltaOverlay`] is the in-memory half of incremental maintenance:
//! a small [`PexesoIndex`] over the live delta columns plus the set of
//! tombstoned table names. [`DeltaOverlay::execute_with_base`] merges it
//! with *any* base — disk partitions loaded per query or a shared
//! resident snapshot — and answers the unified [`Query`] byte-identically
//! to a full rebuild over the final table set.
//!
//! ## Why the merge is exact
//!
//! Threshold mode is easy: match counts are per-column and independent,
//! so dropping tombstoned hits from each base partition's result leaves
//! exactly the hit set a rebuild (where those columns simply don't exist)
//! would produce, and the unified external-id sort is shared.
//!
//! Top-k needs care. Each unit answers its *local* top-k tie-inclusively
//! and the global ranking merges those lists; a tombstoned column sitting
//! in a local top-k could push a live column off the list, which a
//! post-merge filter could then never recover. The overlay therefore
//! **over-asks**: a base unit is queried for the top `k + d` (d = dropped
//! tables) and re-queried with a larger ask in the rare case more than
//! `d` hits were actually filtered from a truncated list. The surviving
//! list provably contains the unit's live tie-inclusive top-k: the live
//! k-th column ranks at worst `k + removed ≤ ask` in the unfiltered
//! order, so it (and, via the tie-inclusive boundary closure, every
//! column tied with it) is present before filtering. Tombstones are
//! filtered **before** the merge, so the global `rank_topk_hits` sees
//! exactly the candidate lists a rebuild would have produced.
//!
//! The filter never needs to touch delta hits: replay already drops
//! delta columns killed by a later tombstone, so the delta index only
//! ever contains live columns (a re-added table lives in the delta even
//! though its base namesake is tombstoned).

use std::collections::HashSet;

use pexeso_core::config::IndexOptions;
use pexeso_core::error::{PexesoError, Result};
use pexeso_core::metric::{Angular, Chebyshev, Euclidean, Manhattan, Metric};
use pexeso_core::outofcore::{execute_on_index, execute_partitioned, GlobalHit};
use pexeso_core::query::{BudgetGuard, Exceeded, Query, QueryMode, QueryResponse};
use pexeso_core::search::PexesoIndex;
use pexeso_core::stats::SearchStats;
use pexeso_core::vector::VectorStore;

use crate::wal::DeltaState;

/// The result triple every per-unit engine call produces.
pub type UnitResult = Result<(Vec<GlobalHit>, SearchStats, Option<Exceeded>)>;

/// The in-memory overlay for one metric: live delta columns indexed for
/// search, plus the base tombstones.
#[derive(Debug)]
pub struct DeltaOverlay<M: Metric> {
    /// Index over the live delta columns; `None` when the log holds no
    /// live column (tombstones only, or empty).
    index: Option<PexesoIndex<M>>,
    /// Base tables whose columns are dead.
    dropped_tables: HashSet<String>,
    n_delta_columns: usize,
    n_delta_vectors: usize,
    n_records: usize,
}

impl<M: Metric> DeltaOverlay<M> {
    /// Build the overlay from a replayed log state. The delta index is a
    /// normal PEXESO build over the delta columns — small by
    /// construction, so this is the "seconds, not minutes" half of
    /// ingest.
    pub fn from_state(state: &DeltaState, metric: M, dim: usize) -> Result<Self> {
        let (index, n_delta_vectors) = match state.to_column_set(dim)? {
            Some(columns) => {
                let n = columns.n_vectors();
                (
                    Some(PexesoIndex::build(
                        columns,
                        metric,
                        IndexOptions::default(),
                    )?),
                    n,
                )
            }
            None => (None, 0),
        };
        Ok(Self {
            index,
            dropped_tables: state.dropped_tables.clone(),
            n_delta_columns: state.live.len(),
            n_delta_vectors,
            n_records: state.n_records,
        })
    }

    /// An empty overlay (no delta log): queries pass straight through to
    /// the base.
    pub fn empty() -> Self {
        Self {
            index: None,
            dropped_tables: HashSet::new(),
            n_delta_columns: 0,
            n_delta_vectors: 0,
            n_records: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_none() && self.dropped_tables.is_empty()
    }

    pub fn n_delta_columns(&self) -> usize {
        self.n_delta_columns
    }

    pub fn n_delta_vectors(&self) -> usize {
        self.n_delta_vectors
    }

    pub fn n_tombstones(&self) -> usize {
        self.dropped_tables.len()
    }

    pub fn n_records(&self) -> usize {
        self.n_records
    }

    pub fn dropped_tables(&self) -> &HashSet<String> {
        &self.dropped_tables
    }

    /// Execute `query` over `n_base` base units plus this overlay.
    /// `run_base(i, inner, guard)` must run the (possibly k-boosted)
    /// `inner` query against base unit `i` with the shared engine
    /// ([`execute_on_index`]) — the overlay drives tombstone filtering
    /// and the top-k over-ask around it. Fan-out, budget semantics,
    /// outcome folding, and the final ranking all come from the core
    /// partition loop, so the response obeys the exact same contract as
    /// every built-in backend.
    pub fn execute_with_base<F>(
        &self,
        n_base: usize,
        query: &Query,
        vectors: &VectorStore,
        run_base: F,
    ) -> Result<QueryResponse>
    where
        F: Fn(usize, &Query, &mut Option<BudgetGuard>) -> UnitResult + Sync,
    {
        let n_units = n_base + usize::from(self.index.is_some());
        execute_partitioned(n_units, query, |i, inner, guard| {
            if i < n_base {
                self.run_base_filtered(inner, guard, |q, g| run_base(i, q, g))
            } else {
                let index = self
                    .index
                    .as_ref()
                    .expect("delta unit only exists with an index");
                execute_on_index(index, inner, vectors, guard)
            }
        })
    }

    /// Run one base unit with tombstone filtering applied *before* the
    /// merge. Threshold mode filters and returns; top-k over-asks and
    /// re-asks until the surviving list provably contains the unit's live
    /// tie-inclusive top-k (see the module docs for the proof).
    fn run_base_filtered<G>(
        &self,
        inner: &Query,
        guard: &mut Option<BudgetGuard>,
        run: G,
    ) -> UnitResult
    where
        G: Fn(&Query, &mut Option<BudgetGuard>) -> UnitResult,
    {
        let dropped = &self.dropped_tables;
        if dropped.is_empty() {
            return run(inner, guard);
        }
        match inner.mode {
            QueryMode::Threshold(_) => {
                let (mut hits, stats, exceeded) = run(inner, guard)?;
                hits.retain(|h| !dropped.contains(&h.table_name));
                Ok((hits, stats, exceeded))
            }
            QueryMode::Topk(k) => {
                // One dropped *table* usually means one dropped column,
                // so the first ask almost always suffices; the loop only
                // grows the ask when a unit actually lost more hits than
                // the slack covered off a truncated list.
                let mut ask = k.saturating_add(dropped.len());
                let mut total = SearchStats::new();
                loop {
                    let boosted = Query {
                        mode: QueryMode::Topk(ask),
                        ..inner.clone()
                    };
                    let (raw, stats, exceeded) = run(&boosted, guard)?;
                    total.merge(&stats);
                    let raw_len = raw.len();
                    let mut hits = raw;
                    hits.retain(|h| !dropped.contains(&h.table_name));
                    let removed = raw_len - hits.len();
                    // Exact when the list was exhaustive (shorter than the
                    // ask ⇒ every candidate enumerated), when filtering
                    // stayed within the slack, or when a budget tripped
                    // (the response is flagged partial anyway).
                    if raw_len < ask || removed <= ask - k || exceeded.is_some() {
                        return Ok((hits, total, exceeded));
                    }
                    ask = k.saturating_add(removed).saturating_add(dropped.len());
                }
            }
        }
    }
}

/// The overlay monomorphised over every supported metric, mirroring how
/// resident snapshots fix their metric at load time from the manifest.
#[derive(Debug)]
pub enum AnyOverlay {
    Euclidean(DeltaOverlay<Euclidean>),
    Manhattan(DeltaOverlay<Manhattan>),
    Chebyshev(DeltaOverlay<Chebyshev>),
    Angular(DeltaOverlay<Angular>),
}

impl AnyOverlay {
    /// Build the typed overlay named by a manifest's metric.
    pub fn from_state(state: &DeltaState, metric_name: &str, dim: usize) -> Result<Self> {
        Ok(match metric_name {
            "euclidean" => AnyOverlay::Euclidean(DeltaOverlay::from_state(state, Euclidean, dim)?),
            "manhattan" => AnyOverlay::Manhattan(DeltaOverlay::from_state(state, Manhattan, dim)?),
            "chebyshev" => AnyOverlay::Chebyshev(DeltaOverlay::from_state(state, Chebyshev, dim)?),
            "angular" => AnyOverlay::Angular(DeltaOverlay::from_state(state, Angular, dim)?),
            other => {
                return Err(PexesoError::InvalidParameter(format!(
                    "unsupported metric '{other}'"
                )))
            }
        })
    }

    pub fn is_empty(&self) -> bool {
        self.each(|o| o.is_empty())
    }

    pub fn n_delta_columns(&self) -> usize {
        self.each(|o| o.n_delta_columns())
    }

    pub fn n_delta_vectors(&self) -> usize {
        self.each(|o| o.n_delta_vectors())
    }

    pub fn n_tombstones(&self) -> usize {
        self.each(|o| o.n_tombstones())
    }

    pub fn n_records(&self) -> usize {
        self.each(|o| o.n_records())
    }

    fn each<T>(&self, f: impl Fn(&dyn OverlayFacts) -> T) -> T {
        match self {
            AnyOverlay::Euclidean(o) => f(o),
            AnyOverlay::Manhattan(o) => f(o),
            AnyOverlay::Chebyshev(o) => f(o),
            AnyOverlay::Angular(o) => f(o),
        }
    }
}

/// Metric-independent overlay facts, so [`AnyOverlay`] accessors need no
/// per-variant boilerplate.
trait OverlayFacts {
    fn is_empty(&self) -> bool;
    fn n_delta_columns(&self) -> usize;
    fn n_delta_vectors(&self) -> usize;
    fn n_tombstones(&self) -> usize;
    fn n_records(&self) -> usize;
}

impl<M: Metric> OverlayFacts for DeltaOverlay<M> {
    fn is_empty(&self) -> bool {
        DeltaOverlay::is_empty(self)
    }
    fn n_delta_columns(&self) -> usize {
        DeltaOverlay::n_delta_columns(self)
    }
    fn n_delta_vectors(&self) -> usize {
        DeltaOverlay::n_delta_vectors(self)
    }
    fn n_tombstones(&self) -> usize {
        DeltaOverlay::n_tombstones(self)
    }
    fn n_records(&self) -> usize {
        DeltaOverlay::n_records(self)
    }
}
