//! The write-ahead delta log of a deployed lake.
//!
//! A deployment directory built by `build_lake_index` is immutable between
//! re-indexes: `part_*.pex` files plus a versioned `manifest.txt`. The
//! delta log (`delta.log`) is the one append-only file that grows between
//! builds. It records every change since the base build — new columns with
//! their embedded vectors, and drop-table tombstones — so that
//!
//! * an ingest is one cheap append instead of a full re-embed/re-partition,
//! * a [`crate::DeltaLake`] (or a serving daemon) can replay the log into
//!   an in-memory overlay and answer queries exactly as a full rebuild
//!   would, and
//! * compaction can fold the log into fresh base partitions and discard it.
//!
//! ## Format
//!
//! Everything is little-endian. The file opens with a checksummed header
//! binding the log to one specific base build:
//!
//! ```text
//! magic "PXDELTA1" · u32 format version · str metric · u32 dim ·
//! u64 base_index_version · u64 fnv64(header bytes)
//! ```
//!
//! followed by zero or more length-prefixed, individually checksummed
//! records:
//!
//! ```text
//! u32 payload_len · payload · u64 fnv64(payload)
//! ```
//!
//! Per-record checksums make the failure mode of a torn append precise: a
//! truncated or bit-flipped tail fails with a typed
//! [`PexesoError::Corrupt`] naming the record, never a panic, and every
//! record before the damage is still recovered by [`read_log`]'s strict
//! sibling [`read_log_prefix`].
//!
//! `base_index_version` is the crash-safety hinge of compaction: the
//! manifest version bump and the log deletion cannot be atomic together,
//! so compaction bumps the manifest *first*. A log whose header names an
//! older `index_version` than the manifest has therefore already been
//! folded into the base and is stale — readers ignore (and may delete)
//! it instead of double-applying its records.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use pexeso_core::column::ColumnSet;
use pexeso_core::error::{PexesoError, Result};
use pexeso_core::fault;
use pexeso_core::hist;
use pexeso_core::outofcore::LakeManifest;

const MAGIC: &[u8; 8] = b"PXDELTA1";
const FORMAT_VERSION: u32 = 1;

const REC_ADD_COLUMN: u8 = 1;
const REC_DROP_TABLE: u8 = 2;

/// Incremental FNV-1a 64, the same checksum the index files use.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.0
}

/// Location of the delta log inside a deployment directory.
pub fn delta_log_path(dir: &Path) -> PathBuf {
    dir.join("delta.log")
}

/// One entry of the delta log.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaRecord {
    /// A new column (one table's key column in the standard pipeline),
    /// already embedded: ingest pays the embedding once, every replayer
    /// gets the exact same `f32` bits a full rebuild would have produced.
    AddColumn {
        table_name: String,
        column_name: String,
        /// Caller-stable global id; must not collide with any base or
        /// previously-logged column (ingest allocates from the manifest's
        /// `next_external_id` high-water mark).
        external_id: u64,
        /// Row-major embedded vectors, `len = n · dim` with the header's
        /// dim.
        vectors: Vec<f32>,
    },
    /// Tombstone: every column of this table — in the base build and in
    /// any *earlier* log record — is dead. A later `AddColumn` for the
    /// same table name starts a fresh life (the base stays tombstoned;
    /// only the re-added delta column is live).
    DropTable { table_name: String },
}

/// The header binding a log to one base build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHeader {
    pub format_version: u32,
    /// Metric name of the base build; delta vectors are only meaningful
    /// under the same metric.
    pub metric: String,
    /// Embedding dimensionality of every `AddColumn` record.
    pub dim: u32,
    /// `index_version` of the manifest this log applies on top of.
    pub base_index_version: u64,
}

/// A fully-read delta log: header plus records in append order.
#[derive(Debug, Clone, PartialEq)]
pub struct LogContents {
    pub header: LogHeader,
    pub records: Vec<DeltaRecord>,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| PexesoError::Corrupt("truncated delta record payload".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn str(&mut self, limit: u32) -> Result<String> {
        let len = self.u32()?;
        if len > limit {
            return Err(PexesoError::Corrupt(format!(
                "delta log string of {len} bytes exceeds limit {limit}"
            )));
        }
        let bytes = self.bytes(len as usize)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PexesoError::Corrupt(format!("delta log invalid utf-8: {e}")))
    }
    fn finish(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PexesoError::Corrupt(format!(
                "{} trailing bytes in delta record",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn encode_header(h: &LogHeader) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, h.format_version);
    put_str(&mut out, &h.metric);
    put_u32(&mut out, h.dim);
    put_u64(&mut out, h.base_index_version);
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Exact payload size [`encode_record`] will produce — computed without
/// materializing the frame, so the write-side cap check costs nothing.
fn record_payload_len(rec: &DeltaRecord) -> usize {
    match rec {
        DeltaRecord::AddColumn {
            table_name,
            column_name,
            vectors,
            ..
        } => 1 + (4 + table_name.len()) + (4 + column_name.len()) + 8 + 4 + vectors.len() * 4,
        DeltaRecord::DropTable { table_name } => 1 + 4 + table_name.len(),
    }
}

fn encode_record(rec: &DeltaRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    match rec {
        DeltaRecord::AddColumn {
            table_name,
            column_name,
            external_id,
            vectors,
        } => {
            payload.push(REC_ADD_COLUMN);
            put_str(&mut payload, table_name);
            put_str(&mut payload, column_name);
            put_u64(&mut payload, *external_id);
            put_u32(&mut payload, vectors.len() as u32);
            payload.reserve(vectors.len() * 4);
            for v in vectors {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        DeltaRecord::DropTable { table_name } => {
            payload.push(REC_DROP_TABLE);
            put_str(&mut payload, table_name);
        }
    }
    debug_assert_eq!(payload.len(), record_payload_len(rec));
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_u32(&mut out, payload.len() as u32);
    let checksum = fnv64(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn decode_record(payload: &[u8], dim: u32) -> Result<DeltaRecord> {
    let mut r = Cursor::new(payload);
    let rec = match r.u8()? {
        REC_ADD_COLUMN => {
            let table_name = r.str(1 << 16)?;
            let column_name = r.str(1 << 16)?;
            let external_id = r.u64()?;
            let n_floats = r.u32()? as usize;
            if dim == 0 || !n_floats.is_multiple_of(dim as usize) {
                return Err(PexesoError::Corrupt(format!(
                    "delta record vector length {n_floats} is not a multiple of dim {dim}"
                )));
            }
            let raw = r.bytes(n_floats.checked_mul(4).ok_or_else(|| {
                PexesoError::Corrupt(format!("delta record vector length {n_floats} overflows"))
            })?)?;
            let vectors = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            DeltaRecord::AddColumn {
                table_name,
                column_name,
                external_id,
                vectors,
            }
        }
        REC_DROP_TABLE => DeltaRecord::DropTable {
            table_name: r.str(1 << 16)?,
        },
        t => {
            return Err(PexesoError::Corrupt(format!(
                "unknown delta record tag {t}"
            )))
        }
    };
    r.finish()?;
    Ok(rec)
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Hard cap on one record, enforced on **both** sides: readers treat a
/// larger length prefix as garbage framing, and [`append_records`]
/// refuses to write a record it knows every reader would reject — an
/// oversized ingest must fail the one request, not permanently brick
/// the log behind an acknowledged append.
pub const MAX_RECORD_BYTES: u32 = 256 << 20;

fn read_exact_or(src: &mut impl Read, buf: &mut [u8], what: &str) -> Result<()> {
    src.read_exact(buf)
        .map_err(|e| PexesoError::Corrupt(format!("truncated delta log ({what}): {e}")))
}

fn read_header(src: &mut impl Read) -> Result<LogHeader> {
    let mut hashed = Vec::new();
    let mut take = |src: &mut dyn Read, n: usize| -> Result<Vec<u8>> {
        let mut buf = vec![0u8; n];
        src.read_exact(&mut buf)
            .map_err(|e| PexesoError::Corrupt(format!("truncated delta log (header): {e}")))?;
        hashed.extend_from_slice(&buf);
        Ok(buf)
    };
    let magic = take(src, 8)?;
    if magic != MAGIC {
        return Err(PexesoError::Corrupt("bad delta log magic".into()));
    }
    let format_version = u32::from_le_bytes(take(src, 4)?.try_into().unwrap());
    if format_version != FORMAT_VERSION {
        return Err(PexesoError::Corrupt(format!(
            "unsupported delta log format version {format_version}"
        )));
    }
    let metric_len = u32::from_le_bytes(take(src, 4)?.try_into().unwrap());
    if metric_len > 64 {
        return Err(PexesoError::Corrupt(format!(
            "delta log metric name of {metric_len} bytes"
        )));
    }
    let metric = String::from_utf8(take(src, metric_len as usize)?)
        .map_err(|e| PexesoError::Corrupt(format!("delta log metric not utf-8: {e}")))?;
    let dim = u32::from_le_bytes(take(src, 4)?.try_into().unwrap());
    let base_index_version = u64::from_le_bytes(take(src, 8)?.try_into().unwrap());
    #[allow(dropping_copy_types, clippy::drop_non_drop)]
    drop(take); // end the closure's mutable borrow of `hashed`
    let mut csum = [0u8; 8];
    read_exact_or(src, &mut csum, "header checksum")?;
    if u64::from_le_bytes(csum) != fnv64(&hashed) {
        return Err(PexesoError::Corrupt(
            "delta log header checksum mismatch".into(),
        ));
    }
    if dim == 0 {
        return Err(PexesoError::Corrupt(
            "delta log dim must be positive".into(),
        ));
    }
    Ok(LogHeader {
        format_version,
        metric,
        dim,
        base_index_version,
    })
}

fn read_records(src: &mut impl Read, dim: u32) -> Result<Vec<DeltaRecord>> {
    let mut records = Vec::new();
    loop {
        let mut len_bytes = [0u8; 4];
        let mut got = 0;
        while got < 4 {
            match src.read(&mut len_bytes[got..]) {
                Ok(0) if got == 0 => return Ok(records), // clean end of log
                Ok(0) => {
                    return Err(PexesoError::Corrupt(format!(
                        "truncated delta log: eof inside record {} length",
                        records.len()
                    )))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(PexesoError::Io(e)),
            }
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_RECORD_BYTES {
            return Err(PexesoError::Corrupt(format!(
                "delta record of {len} bytes exceeds cap {MAX_RECORD_BYTES}"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        read_exact_or(src, &mut payload, &format!("record {} body", records.len()))?;
        let mut csum = [0u8; 8];
        read_exact_or(
            src,
            &mut csum,
            &format!("record {} checksum", records.len()),
        )?;
        if u64::from_le_bytes(csum) != fnv64(&payload) {
            return Err(PexesoError::Corrupt(format!(
                "delta record {} checksum mismatch",
                records.len()
            )));
        }
        records.push(decode_record(&payload, dim)?);
    }
}

/// Read only `dir`'s delta log header — cheap (a few dozen bytes) no
/// matter how large the log has grown. `Ok(None)` when no log exists.
/// This is the validation [`append_records`] runs, so repeated ingests
/// stay O(records appended), not O(log size).
pub fn read_log_header(dir: &Path) -> Result<Option<LogHeader>> {
    let path = delta_log_path(dir);
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PexesoError::Io(e)),
    };
    let mut src = BufReader::new(file);
    Ok(Some(read_header(&mut src)?))
}

/// Read `dir`'s delta log in full. `Ok(None)` when no log exists; a log
/// that exists but is damaged anywhere — header or any record — is a
/// typed [`PexesoError::Corrupt`] (strict mode: replayers must not
/// silently serve a partial view of an ingest they cannot prove complete).
pub fn read_log(dir: &Path) -> Result<Option<LogContents>> {
    let path = delta_log_path(dir);
    fault::check("wal.read.open")?;
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PexesoError::Io(e)),
    };
    let mut src = BufReader::new(file);
    let header = read_header(&mut src)?;
    let records = read_records(&mut src, header.dim)?;
    Ok(Some(LogContents { header, records }))
}

/// Like [`read_log`] but salvage what a torn tail left: every record up to
/// the first damage, plus whether the tail was damaged. The header must
/// still be intact — a log that cannot even prove which build it belongs
/// to is unusable. Recovery tooling uses this; query paths use the strict
/// [`read_log`].
pub fn read_log_prefix(dir: &Path) -> Result<Option<(LogContents, bool)>> {
    let path = delta_log_path(dir);
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PexesoError::Io(e)),
    };
    let mut src = BufReader::new(file);
    let header = read_header(&mut src)?;
    let mut records = Vec::new();
    let damaged = loop {
        match read_one(&mut src, header.dim) {
            Ok(Some(rec)) => records.push(rec),
            Ok(None) => break false,
            Err(_) => break true,
        }
    };
    Ok(Some((LogContents { header, records }, damaged)))
}

fn read_one(src: &mut impl Read, dim: u32) -> Result<Option<DeltaRecord>> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match src.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(PexesoError::Corrupt("eof inside record length".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(PexesoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_RECORD_BYTES {
        return Err(PexesoError::Corrupt("record length over cap".into()));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(src, &mut payload, "record body")?;
    let mut csum = [0u8; 8];
    read_exact_or(src, &mut csum, "record checksum")?;
    if u64::from_le_bytes(csum) != fnv64(&payload) {
        return Err(PexesoError::Corrupt("record checksum mismatch".into()));
    }
    Ok(Some(decode_record(&payload, dim)?))
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Validate that an existing log belongs to `manifest`'s build. A log
/// whose `base_index_version` is *older* than the manifest has been
/// compacted into the base already (the crash window between the manifest
/// bump and the log deletion): the caller should treat it as absent. A
/// *newer* version — or a metric/dim mismatch — means directories were
/// mixed up, which is corruption, not staleness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogStatus {
    /// Header matches the manifest; records apply.
    Current,
    /// Log predates the manifest's build: already folded in, ignore it.
    Stale,
}

pub fn check_header(header: &LogHeader, manifest: &LakeManifest) -> Result<LogStatus> {
    if header.metric != manifest.metric {
        return Err(PexesoError::Corrupt(format!(
            "delta log metric '{}' does not match manifest metric '{}'",
            header.metric, manifest.metric
        )));
    }
    if header.dim as usize != manifest.dim {
        return Err(PexesoError::Corrupt(format!(
            "delta log dim {} does not match manifest dim {}",
            header.dim, manifest.dim
        )));
    }
    match header.base_index_version.cmp(&manifest.index_version) {
        std::cmp::Ordering::Equal => Ok(LogStatus::Current),
        std::cmp::Ordering::Less => Ok(LogStatus::Stale),
        std::cmp::Ordering::Greater => Err(PexesoError::Corrupt(format!(
            "delta log names base build {} but the manifest is at {} — \
             the log belongs to a different deployment",
            header.base_index_version, manifest.index_version
        ))),
    }
}

/// Append `records` to `dir`'s delta log, creating the log (with a header
/// stamped from `manifest`) when none exists. An existing log's *header*
/// is validated first (cheap — the body is the reader's job, and the
/// ingest path strict-reads it under the same maintenance lock anyway):
/// appending to a stale or foreign log is refused, and so is any record
/// larger than [`MAX_RECORD_BYTES`] — acknowledging a record every
/// reader would reject would brick the log. Appends are flushed and
/// fsynced before returning — an acknowledged ingest survives a crash.
pub fn append_records(dir: &Path, manifest: &LakeManifest, records: &[DeltaRecord]) -> Result<()> {
    let path = delta_log_path(dir);
    let existing = match read_log_header(dir)? {
        Some(header) => match check_header(&header, manifest)? {
            LogStatus::Current => true,
            LogStatus::Stale => {
                return Err(PexesoError::InvalidParameter(format!(
                    "delta log is stale (base build {} vs manifest {}); \
                     remove it or re-open the lake before ingesting",
                    header.base_index_version, manifest.index_version
                )))
            }
        },
        None => false,
    };
    for (i, rec) in records.iter().enumerate() {
        let payload_len = record_payload_len(rec);
        if payload_len > MAX_RECORD_BYTES as usize {
            return Err(PexesoError::InvalidParameter(format!(
                "delta record {i} is {payload_len} bytes, over the \
                 {MAX_RECORD_BYTES}-byte record cap; ingest smaller batches \
                 (or rebuild the deployment for bulk loads)"
            )));
        }
    }
    let encoded: Vec<Vec<u8>> = records.iter().map(encode_record).collect();
    let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
    if !existing {
        // A fresh log: the file may still hold garbage from a failed
        // previous creation (read_log_header above would have errored and
        // we would not be here) — truncate defensively before the header.
        file.set_len(0)?;
        file.seek(SeekFrom::End(0))?;
        fault::write_all(
            &mut file,
            &encode_header(&LogHeader {
                format_version: FORMAT_VERSION,
                metric: manifest.metric.clone(),
                dim: manifest.dim as u32,
                base_index_version: manifest.index_version,
            }),
            "wal.append.header",
        )?;
    }
    let append_start = Instant::now();
    let mut w = BufWriter::new(&mut file);
    for frame in &encoded {
        fault::write_all(&mut w, frame, "wal.append.record")?;
    }
    w.flush()?;
    drop(w);
    hist::global::WAL_APPEND.record_duration(append_start.elapsed());
    fault::check("wal.append.fsync")?;
    let fsync_start = Instant::now();
    file.sync_all()?;
    hist::global::WAL_FSYNC.record_duration(fsync_start.elapsed());
    Ok(())
}

/// Delete `dir`'s delta log (the final step of compaction). Missing log
/// is fine — deletion is idempotent.
pub fn remove_log(dir: &Path) -> Result<()> {
    match std::fs::remove_file(delta_log_path(dir)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(PexesoError::Io(e)),
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// One live delta column after replay.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaColumn {
    pub table_name: String,
    pub column_name: String,
    pub external_id: u64,
    pub vectors: Vec<f32>,
}

/// The net effect of a delta log: replaying the records in order is a
/// pure function of the log, so replaying twice (or re-reading the file)
/// always lands on the same state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaState {
    /// Columns added and not subsequently dropped, in first-add order.
    pub live: Vec<DeltaColumn>,
    /// Every table name ever dropped. The base build's columns under
    /// these names are dead; delta columns re-added *after* the drop are
    /// live (they sit in `live`).
    pub dropped_tables: HashSet<String>,
    /// Records replayed (for operator counters).
    pub n_records: usize,
}

impl DeltaState {
    /// Replay records in order. A `DropTable` kills every earlier
    /// `AddColumn` of that table and tombstones the base; a later re-add
    /// of the same table name is live again.
    pub fn replay(records: &[DeltaRecord]) -> Self {
        let mut state = DeltaState {
            n_records: records.len(),
            ..Default::default()
        };
        for rec in records {
            match rec {
                DeltaRecord::AddColumn {
                    table_name,
                    column_name,
                    external_id,
                    vectors,
                } => state.live.push(DeltaColumn {
                    table_name: table_name.clone(),
                    column_name: column_name.clone(),
                    external_id: *external_id,
                    vectors: vectors.clone(),
                }),
                DeltaRecord::DropTable { table_name } => {
                    state.live.retain(|c| &c.table_name != table_name);
                    state.dropped_tables.insert(table_name.clone());
                }
            }
        }
        state
    }

    /// Highest external id any record (live or since dropped) ever used,
    /// plus one — combined with the manifest's `next_external_id` this is
    /// the allocation high-water mark for the next ingest. Dropped
    /// records still count: their ids must never be reused while the
    /// tombstone lives in the log.
    pub fn next_external_id_after(records: &[DeltaRecord], base_next: u64) -> u64 {
        records
            .iter()
            .filter_map(|r| match r {
                DeltaRecord::AddColumn { external_id, .. } => Some(external_id + 1),
                DeltaRecord::DropTable { .. } => None,
            })
            .fold(base_next, u64::max)
    }

    /// The live delta columns as a [`ColumnSet`] ready for an in-memory
    /// index build; `None` when no delta column is live.
    pub fn to_column_set(&self, dim: usize) -> Result<Option<ColumnSet>> {
        if self.live.is_empty() {
            return Ok(None);
        }
        let mut columns = ColumnSet::new(dim);
        for col in &self.live {
            if dim == 0 || col.vectors.len() % dim != 0 {
                return Err(PexesoError::Corrupt(format!(
                    "delta column '{}' holds {} floats, not a multiple of dim {dim}",
                    col.table_name,
                    col.vectors.len()
                )));
            }
            columns.add_column(
                &col.table_name,
                &col.column_name,
                col.external_id,
                col.vectors.chunks_exact(dim),
            )?;
        }
        Ok(Some(columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(version: u64) -> LakeManifest {
        let mut m = LakeManifest::new("hash", 4);
        m.index_version = version;
        m.next_external_id = 10;
        m
    }

    fn add(table: &str, id: u64) -> DeltaRecord {
        DeltaRecord::AddColumn {
            table_name: table.to_string(),
            column_name: "key".to_string(),
            external_id: id,
            vectors: vec![0.5, 0.5, 0.5, 0.5, 0.1, 0.2, 0.3, 0.4],
        }
    }

    fn drop_t(table: &str) -> DeltaRecord {
        DeltaRecord::DropTable {
            table_name: table.to_string(),
        }
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pexeso_wal_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_and_append_accumulate() {
        let dir = tempdir("roundtrip");
        let m = manifest(1);
        assert!(read_log(&dir).unwrap().is_none());
        append_records(&dir, &m, &[add("t1", 10), add("t2", 11)]).unwrap();
        append_records(&dir, &m, &[drop_t("t1")]).unwrap();
        let log = read_log(&dir).unwrap().unwrap();
        assert_eq!(log.header.base_index_version, 1);
        assert_eq!(log.header.dim, 4);
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.records[2], drop_t("t1"));
        // Replaying is a pure function: twice gives the same state.
        let s1 = DeltaState::replay(&log.records);
        let s2 = DeltaState::replay(&log.records);
        assert_eq!(s1, s2);
        assert_eq!(s1.live.len(), 1);
        assert_eq!(s1.live[0].table_name, "t2");
        assert!(s1.dropped_tables.contains("t1"));
        assert_eq!(DeltaState::next_external_id_after(&log.records, 10), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_then_readd_revives_only_the_new_column() {
        let recs = vec![add("t", 10), drop_t("t"), add("t", 11)];
        let s = DeltaState::replay(&recs);
        assert_eq!(s.live.len(), 1);
        assert_eq!(s.live[0].external_id, 11);
        assert!(s.dropped_tables.contains("t"));
    }

    #[test]
    fn truncated_tail_fails_typed_and_prefix_recovers() {
        let dir = tempdir("trunc");
        let m = manifest(1);
        append_records(&dir, &m, &[add("t1", 10), add("t2", 11)]).unwrap();
        let clean = std::fs::read(delta_log_path(&dir)).unwrap();
        for cut in [1usize, 8, 20, clean.len() - 1] {
            std::fs::write(delta_log_path(&dir), &clean[..clean.len() - cut]).unwrap();
            match read_log(&dir) {
                Err(PexesoError::Corrupt(_)) => {}
                other => panic!("cut {cut}: expected Corrupt, got {other:?}"),
            }
        }
        // A torn tail that only damages the last record still yields the
        // first record through the salvage reader.
        std::fs::write(delta_log_path(&dir), &clean[..clean.len() - 3]).unwrap();
        let (salvaged, damaged) = read_log_prefix(&dir).unwrap().unwrap();
        assert!(damaged);
        assert_eq!(salvaged.records, vec![add("t1", 10)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_fail_typed_everywhere() {
        let dir = tempdir("flip");
        let m = manifest(1);
        append_records(&dir, &m, &[add("t1", 10), drop_t("t1")]).unwrap();
        let clean = std::fs::read(delta_log_path(&dir)).unwrap();
        for pos in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            std::fs::write(delta_log_path(&dir), &bytes).unwrap();
            match read_log(&dir) {
                Err(PexesoError::Corrupt(_)) => {}
                Err(other) => panic!("byte {pos}: untyped error {other:?}"),
                Ok(_) => panic!("byte {pos}: corrupted log read back cleanly"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_and_foreign_logs_detected() {
        let dir = tempdir("stale");
        append_records(&dir, &manifest(1), &[add("t1", 10)]).unwrap();
        let log = read_log(&dir).unwrap().unwrap();
        // Same build: current. Newer manifest: stale. Older manifest:
        // corruption (a log from the future).
        assert_eq!(
            check_header(&log.header, &manifest(1)).unwrap(),
            LogStatus::Current
        );
        assert_eq!(
            check_header(&log.header, &manifest(2)).unwrap(),
            LogStatus::Stale
        );
        assert!(check_header(&log.header, &{
            let mut m = manifest(1);
            m.index_version = 0;
            m
        })
        .is_err());
        // Metric / dim mismatches are corruption, not staleness.
        let mut m = manifest(1);
        m.metric = "manhattan".into();
        assert!(check_header(&log.header, &m).is_err());
        let mut m = manifest(1);
        m.dim = 8;
        assert!(check_header(&log.header, &m).is_err());
        // Appending to a stale log is refused.
        assert!(append_records(&dir, &manifest(2), &[add("t2", 11)]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_log_is_idempotent() {
        let dir = tempdir("rm");
        remove_log(&dir).unwrap();
        append_records(&dir, &manifest(1), &[add("t", 10)]).unwrap();
        remove_log(&dir).unwrap();
        assert!(read_log(&dir).unwrap().is_none());
        remove_log(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_only_read_matches_full_read() {
        let dir = tempdir("hdr");
        assert!(read_log_header(&dir).unwrap().is_none());
        append_records(&dir, &manifest(3), &[add("t", 10)]).unwrap();
        let header = read_log_header(&dir).unwrap().unwrap();
        assert_eq!(header, read_log(&dir).unwrap().unwrap().header);
        assert_eq!(header.base_index_version, 3);
        // A damaged header fails typed from the cheap reader too.
        let clean = std::fs::read(delta_log_path(&dir)).unwrap();
        let mut bad = clean.clone();
        bad[10] ^= 0x10;
        std::fs::write(delta_log_path(&dir), &bad).unwrap();
        assert!(matches!(
            read_log_header(&dir),
            Err(PexesoError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_records_are_refused_before_the_write() {
        let dir = tempdir("cap");
        let m = manifest(1);
        append_records(&dir, &m, &[add("ok", 10)]).unwrap();
        // One float over the cap: (cap payload − framing) / 4 floats,
        // rounded up past the boundary, in multiples of dim.
        let floats = (MAX_RECORD_BYTES as usize / 4 + 4) / 4 * 4;
        let giant = DeltaRecord::AddColumn {
            table_name: "giant".into(),
            column_name: "key".into(),
            external_id: 11,
            vectors: vec![0.1f32; floats],
        };
        match append_records(&dir, &m, &[giant]) {
            Err(PexesoError::InvalidParameter(msg)) => {
                assert!(msg.contains("record cap"), "{msg}")
            }
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
        // The refused append must not have touched the log: the earlier
        // record still reads back cleanly.
        let log = read_log(&dir).unwrap().unwrap();
        assert_eq!(log.records, vec![add("ok", 10)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
