//! # pexeso-delta — incremental maintenance for deployed lakes
//!
//! The offline pipeline builds an immutable deployment: partitioned
//! PEXESO indexes plus a versioned manifest. Real lakes grow continuously,
//! and re-embedding and re-partitioning everything to add one table is
//! minutes of work for seconds of data. This crate adds the lifecycle
//! layer that makes a deployment *maintainable online*:
//!
//! * [`wal`] — a persistent, per-record-checksummed write-ahead delta log
//!   (`delta.log`) next to the partition files: add-column records carry
//!   the embedded vectors, drop-table records are tombstones, and the
//!   header binds the log to one base build so compaction can never
//!   double-apply;
//! * [`overlay`] — [`DeltaOverlay`]: the replayed log as an in-memory
//!   PEXESO index over the live delta columns plus the tombstone set,
//!   with an exact merged executor ([`DeltaOverlay::execute_with_base`])
//!   that answers the unified `Query` byte-identically to a full rebuild
//!   (tombstones filtered before the merge; tie-inclusive top-k preserved
//!   by an adaptive over-ask);
//! * [`lake`] — [`DeltaLake`] (disk-backed base + overlay, a `Queryable`
//!   like every other backend), [`ingest_columns`] / [`drop_tables`]
//!   (cheap checksummed appends), and [`compact_lake`] (fold the log into
//!   fresh base partitions, bump the manifest atomically, delete the log).
//!
//! `pexeso-serve` builds its live-ingest path on the same pieces: the
//! daemon replays the log over its already-resident base snapshot and
//! publishes a new generation without reloading a single partition.

pub mod lake;
pub mod overlay;
pub mod wal;

pub use lake::{
    compact_lake, drop_tables, ingest_columns, verify_no_crashed_compaction, CompactReport,
    DeltaLake, IngestColumn, IngestReport, COMPACT_MARKER_FILE,
};
pub use overlay::{AnyOverlay, DeltaOverlay};
pub use wal::{
    append_records, check_header, delta_log_path, read_log, read_log_header, read_log_prefix,
    remove_log, DeltaColumn, DeltaRecord, DeltaState, LogContents, LogHeader, LogStatus,
    MAX_RECORD_BYTES,
};
