//! # pexeso — joinable table discovery in data lakes
//!
//! A full Rust reproduction of **PEXESO** (Dong, Takeoka, Xiao, Oyamada:
//! *"Efficient Joinable Table Discovery in Data Lakes: A High-Dimensional
//! Similarity-Based Approach"*, ICDE 2021): find, for a query column, every
//! column in a data lake that joins with it under a *semantic* similarity
//! predicate — string values are embedded as high-dimensional vectors and
//! two records match when their distance is within τ.
//!
//! This facade crate re-exports the member crates and adds the
//! [`pipeline`] that wires them together:
//!
//! * [`embed`] *(pexeso-embed)* — deterministic character-level +
//!   semantic-lexicon embeddings (the offline substitute for
//!   fastText/GloVe);
//! * [`lake`] *(pexeso-lake)* — CSV ingestion, tables, key-column
//!   detection, and a ground-truth synthetic lake generator;
//! * [`core`] *(pexeso-core)* — the PEXESO index: pivot-based filtering,
//!   hierarchical grids, inverted-index verification, cost model, JSD
//!   partitioning, out-of-core search;
//! * [`baselines`] *(pexeso-baselines)* — equi/Jaccard/edit/fuzzy/TF-IDF
//!   joins, cover tree, extreme pivot table, product quantization,
//!   PEXESO-H;
//! * [`ml`] *(pexeso-ml)* — random forests and join-based feature
//!   augmentation for the data-enrichment experiments;
//! * [`serve`] *(pexeso-serve)* — a resident TCP query-serving daemon
//!   over a persisted [`pexeso_core::outofcore::PartitionedLake`]:
//!   result caching, atomic hot index swap, explicit backpressure.
//!
//! Every backend answers one request type —
//! [`pexeso_core::query::Query`] — through the object-safe
//! [`pexeso_core::query::Queryable`] trait, with byte-identical rankings
//! across in-memory, out-of-core, resident, and remote execution, an
//! explicit exactness outcome, and optional per-query budgets. Every
//! stage also accepts a [`pexeso_core::config::ExecPolicy`]
//! (`Sequential`, the default, or `Parallel { threads }`) and produces
//! identical results either way; [`pipeline::run_queries`] is the
//! batched multi-user entry point over any `&dyn Queryable`.
//!
//! ## Quickstart
//!
//! ```
//! use pexeso::prelude::*;
//!
//! // A lexicon supplies the semantic knowledge a pre-trained embedding
//! // model would carry.
//! let mut lexicon = Lexicon::new();
//! lexicon.add_synonym_set(["American Indian/Alaska Native", "Mainland Indigenous"]);
//! let embedder = SemanticEmbedder::new(64, lexicon);
//!
//! // Index one lake column.
//! let lake_values = vec!["White".to_string(), "Mainland Indigenous".to_string()];
//! let lake = pexeso::pipeline::EmbeddedLakeBuilder::new(&embedder)
//!     .add_column("income", "Col 1", &lake_values)
//!     .build()
//!     .unwrap();
//! let index = PexesoIndex::build(lake.columns, Euclidean, IndexOptions::default()).unwrap();
//!
//! // Search with a query column: one request type for every backend.
//! let query_values = vec!["white".to_string(), "American Indian/Alaska Native".to_string()];
//! let query = pexeso::pipeline::embed_query(&embedder, &query_values);
//! let q = Query::threshold(Tau::Ratio(0.06), JoinThreshold::Ratio(0.9));
//! let result = index.execute(&q, query.store()).unwrap();
//! assert!(result.exact());
//! assert_eq!(result.hits.len(), 1); // semantically joinable
//! ```

pub use pexeso_baselines as baselines;
pub use pexeso_core as core;
pub use pexeso_embed as embed;
pub use pexeso_lake as lake;
pub use pexeso_ml as ml;
pub use pexeso_serve as serve;

pub mod pipeline;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::pipeline::{embed_query, EmbeddedLake, EmbeddedLakeBuilder, EmbeddedQuery};
    pub use pexeso_core::prelude::*;
    pub use pexeso_embed::{Embedder, HashEmbedder, Lexicon, SemanticEmbedder};
    pub use pexeso_lake::{GenTable, GeneratorConfig, SyntheticLake, Table};
}
