//! The end-to-end pipeline: tables → embedded columns → PEXESO index →
//! join mappings.
//!
//! Mirrors the framework picture of the paper's Fig. 1: the offline
//! component extracts key columns, embeds their string values, and indexes
//! the vectors; the online component embeds the query column, searches, and
//! presents each joinable table together with the record-level mapping.

use std::collections::HashMap;
use std::path::Path;

use pexeso_core::column::{ColumnId, ColumnSet};
use pexeso_core::config::{ExecPolicy, IndexOptions, JoinThreshold, Tau};
use pexeso_core::error::{PexesoError, Result};
use pexeso_core::metric::{Euclidean, Metric};
use pexeso_core::outofcore::{LakeManifest, PartitionedLake};
use pexeso_core::partition::{PartitionConfig, PartitionMethod};
use pexeso_core::query::{Query, QueryResponse, Queryable};
use pexeso_core::search::{PexesoIndex, SearchOptions};
use pexeso_core::vector::VectorStore;
use pexeso_delta::{ingest_columns, CompactReport, DeltaLake, IngestColumn, IngestReport};
use pexeso_embed::Embedder;
use pexeso_lake::generator::SyntheticLake;
use pexeso_lake::keycol::{detect_key_column, KeyColumnConfig};
use pexeso_lake::table::Table;
use pexeso_ml::augment::JoinMapping;

/// Where an embedded repository column came from, and which table row each
/// of its vectors represents (empty cells are skipped during embedding, so
/// vector offsets need not equal row numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnProvenance {
    /// Index of the source table in the caller's table list.
    pub table_idx: usize,
    /// Index of the key column inside that table.
    pub key_col: usize,
    /// `rows[i]` = table row of the column's `i`-th vector.
    pub rows: Vec<u32>,
}

/// An embedded repository: the vector columns plus provenance. The
/// `external_id` of each [`ColumnSet`] column indexes into `provenance`.
#[derive(Debug, Clone)]
pub struct EmbeddedLake {
    pub columns: ColumnSet,
    pub provenance: Vec<ColumnProvenance>,
}

/// An embedded query column with its row alignment.
#[derive(Debug, Clone)]
pub struct EmbeddedQuery {
    store: VectorStore,
    /// `rows[i]` = query row of vector `i`.
    rows: Vec<u32>,
    n_rows: usize,
}

impl EmbeddedQuery {
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }
}

/// Embed the non-empty values of a column; returns (vectors, row indices).
fn embed_values(embedder: &dyn Embedder, values: &[String]) -> (Vec<Vec<f32>>, Vec<u32>) {
    let mut vecs = Vec::with_capacity(values.len());
    let mut rows = Vec::with_capacity(values.len());
    for (ri, v) in values.iter().enumerate() {
        if v.trim().is_empty() {
            continue;
        }
        let e = embedder.embed(v);
        // Zero vectors (no usable tokens) carry no signal; skip them like
        // empty cells.
        if e.iter().all(|&x| x == 0.0) {
            continue;
        }
        vecs.push(e);
        rows.push(ri as u32);
    }
    (vecs, rows)
}

/// Incremental builder for an [`EmbeddedLake`].
pub struct EmbeddedLakeBuilder<'a> {
    embedder: &'a dyn Embedder,
    columns: ColumnSet,
    provenance: Vec<ColumnProvenance>,
}

impl<'a> EmbeddedLakeBuilder<'a> {
    pub fn new(embedder: &'a dyn Embedder) -> Self {
        Self {
            embedder,
            columns: ColumnSet::new(embedder.dim()),
            provenance: Vec::new(),
        }
    }

    /// Add one key column's values as a repository column. Table index is
    /// assigned in insertion order.
    pub fn add_column(mut self, table_name: &str, column_name: &str, values: &[String]) -> Self {
        let (vecs, rows) = embed_values(self.embedder, values);
        if vecs.is_empty() {
            return self; // nothing embeddable; skip the column entirely
        }
        let table_idx = self.provenance.len();
        let external_id = self.provenance.len() as u64;
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        self.columns
            .add_column(table_name, column_name, external_id, refs)
            .expect("embedder produces fixed-dim vectors");
        self.provenance.push(ColumnProvenance {
            table_idx,
            key_col: 0,
            rows,
        });
        self
    }

    pub fn build(self) -> Result<EmbeddedLake> {
        if self.columns.n_columns() == 0 {
            return Err(PexesoError::EmptyInput("no embeddable columns"));
        }
        Ok(EmbeddedLake {
            columns: self.columns,
            provenance: self.provenance,
        })
    }
}

/// Offline ingestion of arbitrary tables: detect each table's key column
/// (SATO stand-in) and embed it. Tables without a usable key column are
/// skipped, like the paper drops tables lacking key information.
pub fn embed_tables(
    embedder: &dyn Embedder,
    tables: &[Table],
    key_cfg: &KeyColumnConfig,
) -> Result<EmbeddedLake> {
    let mut columns = ColumnSet::new(embedder.dim());
    let mut provenance = Vec::new();
    for (ti, table) in tables.iter().enumerate() {
        let Some(key_col) = detect_key_column(table, key_cfg) else {
            continue;
        };
        let (vecs, rows) = embed_values(embedder, table.column(key_col));
        if vecs.is_empty() {
            continue;
        }
        let external_id = provenance.len() as u64;
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns.add_column(table.name(), &table.headers()[key_col], external_id, refs)?;
        provenance.push(ColumnProvenance {
            table_idx: ti,
            key_col,
            rows,
        });
    }
    if columns.n_columns() == 0 {
        return Err(PexesoError::EmptyInput(
            "no table with a detectable key column",
        ));
    }
    Ok(EmbeddedLake {
        columns,
        provenance,
    })
}

/// Offline ingestion of a generated lake, using the planted key columns
/// (what the WDC corpus's key annotations provide in the paper).
pub fn embed_synthetic_lake(embedder: &dyn Embedder, lake: &SyntheticLake) -> Result<EmbeddedLake> {
    let mut columns = ColumnSet::new(embedder.dim());
    let mut provenance = Vec::new();
    for (ti, gt) in lake.tables.iter().enumerate() {
        let (vecs, rows) = embed_values(embedder, gt.key_values());
        if vecs.is_empty() {
            continue;
        }
        let external_id = provenance.len() as u64;
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns.add_column(
            gt.table.name(),
            &gt.table.headers()[gt.key_col],
            external_id,
            refs,
        )?;
        provenance.push(ColumnProvenance {
            table_idx: ti,
            key_col: gt.key_col,
            rows,
        });
    }
    if columns.n_columns() == 0 {
        return Err(PexesoError::EmptyInput(
            "generated lake had no embeddable tables",
        ));
    }
    Ok(EmbeddedLake {
        columns,
        provenance,
    })
}

/// Online: embed a query column's values (empty cells skipped but row
/// alignment retained for join mappings).
pub fn embed_query(embedder: &dyn Embedder, values: &[String]) -> EmbeddedQuery {
    let (vecs, rows) = embed_values(embedder, values);
    let mut store = VectorStore::new(embedder.dim());
    for v in &vecs {
        store.push(v).expect("embedder produces fixed-dim vectors");
    }
    EmbeddedQuery {
        store,
        rows,
        n_rows: values.len(),
    }
}

/// A persisted deployment plus build statistics, as returned by
/// [`build_lake_index`].
#[derive(Debug)]
pub struct DeployedLake {
    pub lake: PartitionedLake,
    pub manifest: LakeManifest,
    /// Key columns embedded into the deployment.
    pub n_columns: usize,
    /// Total vectors across those columns.
    pub n_vectors: usize,
}

/// Offline deployment build shared by the CLI, the serving daemon's
/// operators, and the tests: detect each table's key column, embed it,
/// JSD-partition the columns, persist one PEXESO index per partition
/// under `out_dir`, and write the versioned manifest (`index_version`
/// continues from any manifest already present, so re-indexing the same
/// directory produces a build a resident server can distinguish from the
/// previous one when it hot-swaps).
pub fn build_lake_index(
    tables: &[Table],
    embedder: &dyn Embedder,
    embedder_name: &str,
    key_cfg: &KeyColumnConfig,
    out_dir: &Path,
    partitions: usize,
    policy: ExecPolicy,
) -> Result<DeployedLake> {
    let mut embedded = embed_tables(embedder, tables, key_cfg)?;
    embedded.columns.store_mut().normalize_all();
    let n_columns = embedded.columns.n_columns();
    let n_vectors = embedded.columns.n_vectors();
    std::fs::create_dir_all(out_dir)?;
    let lake = PartitionedLake::build(
        &embedded.columns,
        Euclidean,
        &PartitionConfig {
            k: partitions,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions {
            exec: policy,
            ..Default::default()
        },
        out_dir,
    )?;
    let mut manifest = LakeManifest::next_build(out_dir, embedder_name, embedder.dim())?;
    // Record the id-allocation high-water mark so incremental ingest can
    // assign fresh external ids without scanning the partitions. (The
    // version bump also makes any delta log of the previous build stale:
    // a full re-index subsumes it.)
    manifest.next_external_id = n_columns as u64;
    manifest.write(out_dir)?;
    Ok(DeployedLake {
        lake,
        manifest,
        n_columns,
        n_vectors,
    })
}

/// Open a persisted deployment for querying: the partitioned lake plus
/// the manifest that tells the query side which embedding dimensionality
/// to use.
pub fn open_lake_index(index_dir: &Path) -> Result<(PartitionedLake, LakeManifest)> {
    let manifest = LakeManifest::read(index_dir)?;
    let lake = PartitionedLake::open(index_dir)?;
    Ok((lake, manifest))
}

/// Open a deployment *with* its delta log replayed: the backend the
/// online CLI verbs use, so queries between an ingest and the next
/// compaction see the ingested tables. Answers are byte-identical to a
/// full rebuild over the final table set; with no delta log this is just
/// the base lake plus an empty overlay.
pub fn open_delta_lake(index_dir: &Path) -> Result<DeltaLake> {
    DeltaLake::open(index_dir)
}

/// Incremental ingest: detect and embed each table's key column exactly
/// like [`build_lake_index`] does (same embedder, same per-vector
/// normalization — the WAL stores the same `f32` bits a rebuild would
/// index), then append the columns to the deployment's delta log with
/// fresh external ids. Seconds instead of the minutes a full re-embed +
/// re-partition costs; queries pick the columns up through
/// [`open_delta_lake`] or a serving daemon's delta-apply.
pub fn ingest_tables(
    index_dir: &Path,
    tables: &[Table],
    embedder: &dyn Embedder,
    key_cfg: &KeyColumnConfig,
) -> Result<IngestReport> {
    let manifest = LakeManifest::read(index_dir)?;
    if embedder.dim() != manifest.dim {
        return Err(PexesoError::InvalidParameter(format!(
            "embedder dimensionality {} does not match the deployment's {}",
            embedder.dim(),
            manifest.dim
        )));
    }
    let mut columns = Vec::new();
    for table in tables {
        let Some(key_col) = detect_key_column(table, key_cfg) else {
            continue;
        };
        let (vecs, _rows) = embed_values(embedder, table.column(key_col));
        if vecs.is_empty() {
            continue;
        }
        let mut store = VectorStore::new(embedder.dim());
        for v in &vecs {
            store.push(v)?;
        }
        store.normalize_all();
        columns.push(IngestColumn {
            table_name: table.name().to_string(),
            column_name: table.headers()[key_col].clone(),
            vectors: store.raw_data().to_vec(),
        });
    }
    if columns.is_empty() {
        return Err(PexesoError::EmptyInput(
            "no table with a detectable key column",
        ));
    }
    ingest_columns(index_dir, &columns)
}

/// Tombstone tables by name in the deployment's delta log; space is
/// reclaimed at the next [`compact_lake`].
pub fn drop_lake_tables(index_dir: &Path, table_names: &[String]) -> Result<usize> {
    pexeso_delta::drop_tables(index_dir, table_names)
}

/// Fold the delta log into fresh base partitions, bump the manifest
/// version atomically, and delete the log (see
/// [`pexeso_delta::compact_lake`] for the crash-safety argument).
/// `partitions = None` keeps the current partition count.
pub fn compact_lake(
    index_dir: &Path,
    partitions: Option<usize>,
    policy: ExecPolicy,
) -> Result<CompactReport> {
    pexeso_delta::compact_lake(index_dir, partitions, policy)
}

/// The batched multi-user entry point, written once against the unified
/// executor trait: embed many string query columns and answer them all
/// with one [`Query`] against *any* backend — an in-memory index, a
/// disk-backed or resident partitioned lake, or a remote `pexeso serve`
/// daemon. `responses[i]` pairs with `query_columns[i]` and is exactly
/// what `backend.execute(query, …)` returns for that column;
/// [`Query::policy`] may fan whole queries across threads on backends
/// that support it (results are policy-independent). Query columns with
/// no embeddable value yield the same `EmptyInput` error a direct
/// execution would (failing the batch).
pub fn run_queries(
    backend: &dyn Queryable,
    embedder: &dyn Embedder,
    query_columns: &[Vec<String>],
    query: &Query,
) -> Result<Vec<(EmbeddedQuery, QueryResponse)>> {
    let embedded: Vec<EmbeddedQuery> = query_columns
        .iter()
        .map(|values| embed_query(embedder, values))
        .collect();
    let stores: Vec<&VectorStore> = embedded.iter().map(|q| &q.store).collect();
    let results = backend.execute_many(query, &stores)?;
    Ok(embedded.into_iter().zip(results).collect())
}

/// Threshold form of [`run_queries`], kept as a named convenience: embed
/// many query columns and find every joinable column for each.
pub fn search_many_queries(
    backend: &dyn Queryable,
    embedder: &dyn Embedder,
    query_columns: &[Vec<String>],
    tau: Tau,
    t: JoinThreshold,
    opts: SearchOptions,
    policy: ExecPolicy,
) -> Result<Vec<(EmbeddedQuery, QueryResponse)>> {
    let query = Query::threshold(tau, t)
        .with_options(opts)
        .with_policy(policy);
    run_queries(backend, embedder, query_columns, &query)
}

/// Top-k form of [`run_queries`] — [`search_many_queries`]' ranking twin
/// for users who have no good `T` in mind.
pub fn search_topk_queries(
    backend: &dyn Queryable,
    embedder: &dyn Embedder,
    query_columns: &[Vec<String>],
    tau: Tau,
    k: usize,
    opts: SearchOptions,
    policy: ExecPolicy,
) -> Result<Vec<(EmbeddedQuery, QueryResponse)>> {
    let query = Query::topk(tau, k).with_options(opts).with_policy(policy);
    run_queries(backend, embedder, query_columns, &query)
}

/// Resolve search hits into the record-level [`JoinMapping`] the paper
/// presents with each result (and which the ML augmentation consumes).
pub fn join_mapping<M: Metric>(
    index: &PexesoIndex<M>,
    lake: &EmbeddedLake,
    query: &EmbeddedQuery,
    hit_columns: &[ColumnId],
    tau: Tau,
) -> Result<JoinMapping> {
    let mut mapping = JoinMapping::new(query.n_rows);
    for &col in hit_columns {
        let pairs = index.match_pairs(query.store(), None, col, tau)?;
        let meta = index.columns().column(col);
        let prov = &lake.provenance[meta.external_id as usize];
        for (q_vec, vid) in pairs {
            let q_row = query.rows[q_vec as usize] as usize;
            let offset = (vid.0 - meta.start) as usize;
            let t_row = prov.rows[offset] as usize;
            mapping.matches[q_row].push((prov.table_idx, t_row));
        }
    }
    Ok(mapping)
}

/// Convenience: dedupe + sort each row's matches (multiple vectors of the
/// same record can match).
pub fn dedupe_mapping(mapping: &mut JoinMapping) {
    for m in &mut mapping.matches {
        m.sort_unstable();
        m.dedup();
    }
}

/// How the query column is chosen from a query table (Section II-A lists
/// exactly these three options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryColumnChoice {
    /// Option 1 (the paper's default, in line with JOSIE): the user names
    /// the column.
    Specified(usize),
    /// Option 2: the embeddable column with the most distinct values.
    MostDistinct,
    /// Option 3: treat every embeddable column as a query column in turn.
    IterateAll,
}

/// Resolve the query-column choice for a table into concrete column
/// indices (one for the first two options, possibly several for
/// [`QueryColumnChoice::IterateAll`]).
pub fn select_query_columns(
    table: &Table,
    choice: QueryColumnChoice,
    key_cfg: &KeyColumnConfig,
) -> Result<Vec<usize>> {
    use pexeso_lake::keycol::key_candidates;
    match choice {
        QueryColumnChoice::Specified(c) => {
            if c >= table.n_cols() {
                return Err(PexesoError::InvalidParameter(format!(
                    "query column {c} out of range for table with {} columns",
                    table.n_cols()
                )));
            }
            Ok(vec![c])
        }
        QueryColumnChoice::MostDistinct => {
            let mut cands = key_candidates(table, key_cfg);
            if cands.is_empty() {
                return Err(PexesoError::EmptyInput(
                    "no embeddable query-column candidate",
                ));
            }
            // Rank purely by distinct count, as the paper words option 2.
            cands.sort_by(|a, b| {
                table
                    .distinct_ratio(b.column)
                    .total_cmp(&table.distinct_ratio(a.column))
            });
            Ok(vec![cands[0].column])
        }
        QueryColumnChoice::IterateAll => {
            let cands = key_candidates(table, key_cfg);
            if cands.is_empty() {
                return Err(PexesoError::EmptyInput(
                    "no embeddable query-column candidate",
                ));
            }
            let mut cols: Vec<usize> = cands.into_iter().map(|k| k.column).collect();
            cols.sort_unstable();
            Ok(cols)
        }
    }
}

/// Group hit columns by source table for presentation.
pub fn hits_by_table<'a>(
    index: &PexesoIndex<impl Metric>,
    lake: &'a EmbeddedLake,
    hit_columns: &[ColumnId],
) -> HashMap<usize, Vec<&'a ColumnProvenance>> {
    let mut map: HashMap<usize, Vec<&ColumnProvenance>> = HashMap::new();
    for &col in hit_columns {
        let meta = index.columns().column(col);
        let prov = &lake.provenance[meta.external_id as usize];
        map.entry(prov.table_idx).or_default().push(prov);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use pexeso_core::config::{IndexOptions, JoinThreshold};
    use pexeso_core::metric::Euclidean;
    use pexeso_embed::{HashEmbedder, Lexicon, SemanticEmbedder};

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn builder_skips_empty_and_zero_cells() {
        let e = HashEmbedder::new(32);
        let lake = EmbeddedLakeBuilder::new(&e)
            .add_column("t", "c", &strings(&["alpha", "", "  ", "beta", "---"]))
            .build()
            .unwrap();
        assert_eq!(lake.columns.n_columns(), 1);
        assert_eq!(lake.columns.n_vectors(), 2);
        assert_eq!(lake.provenance[0].rows, vec![0, 3]);
    }

    #[test]
    fn all_empty_column_is_skipped_entirely() {
        let e = HashEmbedder::new(32);
        let result = EmbeddedLakeBuilder::new(&e)
            .add_column("t", "c", &strings(&["", "  "]))
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn query_embedding_keeps_row_alignment() {
        let e = HashEmbedder::new(32);
        let q = embed_query(&e, &strings(&["", "value", "", "other"]));
        assert_eq!(q.store().len(), 2);
        assert_eq!(q.rows(), &[1, 3]);
        assert_eq!(q.n_rows(), 4);
    }

    #[test]
    fn end_to_end_semantic_join_and_mapping() {
        let mut lexicon = Lexicon::new();
        lexicon.add_synonym_set(["Hawaiian/Guamanian/Samoan", "Pacific Islander"]);
        let e = SemanticEmbedder::new(64, lexicon);

        let lake = EmbeddedLakeBuilder::new(&e)
            .add_column(
                "income",
                "Col 1",
                &strings(&["White", "Black", "Pacific Islander"]),
            )
            .add_column(
                "unrelated",
                "c",
                &strings(&["Alpha Beta", "Gamma Delta", "Epsilon"]),
            )
            .build()
            .unwrap();
        let index =
            PexesoIndex::build(lake.columns.clone(), Euclidean, IndexOptions::default()).unwrap();

        let query = embed_query(
            &e,
            &strings(&["White", "Black", "Hawaiian/Guamanian/Samoan"]),
        );
        let tau = Tau::Ratio(0.06); // the paper's default: 6 % of max distance
        let result = index
            .execute(
                &Query::threshold(tau, JoinThreshold::Ratio(0.9)),
                query.store(),
            )
            .unwrap();
        assert_eq!(result.hits.len(), 1, "only the income column joins fully");

        // External ids equal insertion order in the builder, so they map
        // straight back to internal column ids here.
        let hit_cols: Vec<ColumnId> = result
            .hits
            .iter()
            .map(|h| ColumnId(h.external_id as u32))
            .collect();
        let mut mapping = join_mapping(&index, &lake, &query, &hit_cols, tau).unwrap();
        dedupe_mapping(&mut mapping);
        // Every query row maps to its semantic counterpart in table 0.
        assert_eq!(mapping.matches[0], vec![(0, 0)]);
        assert_eq!(mapping.matches[1], vec![(0, 1)]);
        assert_eq!(mapping.matches[2], vec![(0, 2)]);
    }

    #[test]
    fn search_many_queries_matches_individual_searches() {
        let mut lexicon = Lexicon::new();
        lexicon.add_synonym_set(["Hawaiian/Guamanian/Samoan", "Pacific Islander"]);
        let e = SemanticEmbedder::new(64, lexicon);
        let lake = EmbeddedLakeBuilder::new(&e)
            .add_column(
                "income",
                "Col 1",
                &strings(&["White", "Black", "Pacific Islander"]),
            )
            .add_column(
                "unrelated",
                "c",
                &strings(&["Alpha Beta", "Gamma Delta", "Epsilon"]),
            )
            .build()
            .unwrap();
        let index =
            PexesoIndex::build(lake.columns.clone(), Euclidean, IndexOptions::default()).unwrap();
        let tau = Tau::Ratio(0.06);
        let t = JoinThreshold::Ratio(0.9);
        let query_columns = vec![
            strings(&["White", "Black", "Hawaiian/Guamanian/Samoan"]),
            strings(&["Alpha Beta", "Epsilon", "Gamma Delta"]),
        ];
        for policy in [
            pexeso_core::config::ExecPolicy::Sequential,
            pexeso_core::config::ExecPolicy::Parallel { threads: 4 },
        ] {
            let batched = search_many_queries(
                &index,
                &e,
                &query_columns,
                tau,
                t,
                pexeso_core::search::SearchOptions::default(),
                policy,
            )
            .unwrap();
            assert_eq!(batched.len(), 2);
            for (values, (embedded, result)) in query_columns.iter().zip(&batched) {
                let solo = index
                    .execute(&Query::threshold(tau, t), embedded.store())
                    .unwrap();
                assert_eq!(result.hits, solo.hits, "policy={policy:?}");
                assert_eq!(embedded.n_rows(), values.len());
                assert_eq!(result.hits.len(), 1, "each query joins exactly one column");
            }
        }
    }

    #[test]
    fn query_column_choice_strategies() {
        use pexeso_lake::table::Table;
        let t = Table::from_rows(
            "games",
            vec!["Name", "Year", "Publisher"],
            (0..10)
                .map(|i| {
                    vec![
                        format!("Unique Game {i}"),
                        format!("{}", 1990 + i),
                        if i < 5 {
                            "Nintendo".into()
                        } else {
                            "Sega".into()
                        },
                    ]
                })
                .collect(),
        );
        let cfg = KeyColumnConfig {
            min_distinct: 0.1,
            ..Default::default()
        };
        assert_eq!(
            select_query_columns(&t, QueryColumnChoice::Specified(2), &cfg).unwrap(),
            vec![2]
        );
        assert!(select_query_columns(&t, QueryColumnChoice::Specified(9), &cfg).is_err());
        // Name has 10 distinct values, Publisher 2 -> MostDistinct picks 0.
        assert_eq!(
            select_query_columns(&t, QueryColumnChoice::MostDistinct, &cfg).unwrap(),
            vec![0]
        );
        // IterateAll returns every embeddable candidate (Year is numeric).
        let all = select_query_columns(&t, QueryColumnChoice::IterateAll, &cfg).unwrap();
        assert!(all.contains(&0));
        assert!(!all.contains(&1));
    }

    #[test]
    fn build_and_open_lake_index_roundtrip() {
        use pexeso_lake::table::Table;
        let e = HashEmbedder::new(32);
        let tables: Vec<Table> = (0..3)
            .map(|t| {
                Table::from_rows(
                    format!("tab{t}"),
                    vec!["Name", "Year"],
                    (0..10)
                        .map(|i| vec![format!("Item {t} Number {i}"), format!("{}", 2000 + i)])
                        .collect(),
                )
            })
            .collect();
        let dir = std::env::temp_dir().join(format!("pexeso_pipeline_idx_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let deployed = build_lake_index(
            &tables,
            &e,
            "hash",
            &KeyColumnConfig::default(),
            &dir,
            2,
            ExecPolicy::Sequential,
        )
        .unwrap();
        assert_eq!(deployed.manifest.index_version, 1);
        assert_eq!(deployed.manifest.dim, 32);
        assert_eq!(deployed.n_columns, 3);
        assert_eq!(deployed.n_vectors, 30);

        let (opened, manifest) = open_lake_index(&dir).unwrap();
        assert_eq!(opened.num_partitions(), deployed.lake.num_partitions());
        assert_eq!(manifest, deployed.manifest);

        // Re-indexing the same directory bumps the manifest version.
        let again = build_lake_index(
            &tables,
            &e,
            "hash",
            &KeyColumnConfig::default(),
            &dir,
            2,
            ExecPolicy::Sequential,
        )
        .unwrap();
        assert_eq!(again.manifest.index_version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn embed_tables_detects_keys() {
        use pexeso_lake::table::Table;
        let e = HashEmbedder::new(32);
        let t = Table::from_rows(
            "games",
            vec!["Name", "Year"],
            (0..8)
                .map(|i| vec![format!("Game Number {i}"), format!("{}", 1990 + i)])
                .collect(),
        );
        let lake = embed_tables(&e, &[t], &KeyColumnConfig::default()).unwrap();
        assert_eq!(lake.columns.n_columns(), 1);
        assert_eq!(lake.provenance[0].key_col, 0);
        assert_eq!(lake.columns.n_vectors(), 8);
    }
}
