//! `pexeso` — command-line joinable-table discovery over CSV data lakes.
//!
//! ```text
//! pexeso index  --lake <dir-of-csvs> --out <index-dir> [--dim 64] [--partitions 4]
//! pexeso search --index <index-dir> --query <csv> [--column <name>] [--tau 0.06] [--t 0.5]
//! pexeso topk   --index <index-dir> --query <csv> [--column <name>] [--tau 0.06] [--k 10]
//! ```
//!
//! The offline step detects each table's key column, embeds it with the
//! deterministic character-level embedder, JSD-partitions the columns, and
//! persists one PEXESO index per partition plus a small manifest. The
//! online steps embed the query column with the same embedder and stream
//! the partitions.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pexeso::pipeline::{embed_query, embed_tables};
use pexeso::prelude::*;

/// Shadow the crate's `Result` alias: CLI errors are plain strings.
type CliResult<T> = std::result::Result<T, String>;
use pexeso_lake::csv::read_table_file;
use pexeso_lake::keycol::KeyColumnConfig;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pexeso index  --lake <dir> --out <dir> [--dim 64] [--partitions 4]\n  \
         pexeso search --index <dir> --query <csv> [--column <name>] [--tau 0.06] [--t 0.5]\n  \
         pexeso topk   --index <dir> --query <csv> [--column <name>] [--tau 0.06] [--k 10]"
    );
    ExitCode::from(2)
}

/// Minimal `--key value` argument parser.
fn parse_flags(args: &[String]) -> CliResult<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn manifest_path(index_dir: &Path) -> PathBuf {
    index_dir.join("manifest.txt")
}

fn write_manifest(index_dir: &Path, dim: usize) -> std::io::Result<()> {
    std::fs::write(
        manifest_path(index_dir),
        format!("version=1\nembedder=hash\ndim={dim}\n"),
    )
}

fn read_manifest(index_dir: &Path) -> CliResult<usize> {
    let text = std::fs::read_to_string(manifest_path(index_dir))
        .map_err(|e| format!("cannot read manifest: {e}"))?;
    for line in text.lines() {
        if let Some(d) = line.strip_prefix("dim=") {
            return d.parse().map_err(|e| format!("bad dim in manifest: {e}"));
        }
    }
    Err("manifest missing dim".into())
}

fn cmd_index(flags: &HashMap<String, String>) -> CliResult<()> {
    let lake_dir = flags.get("lake").ok_or("--lake is required")?;
    let out_dir = PathBuf::from(flags.get("out").ok_or("--out is required")?);
    let dim: usize = flags
        .get("dim")
        .map_or(Ok(64), |d| d.parse().map_err(|e| format!("{e}")))?;
    let partitions: usize = flags
        .get("partitions")
        .map_or(Ok(4), |k| k.parse().map_err(|e| format!("{e}")))?;

    let mut tables = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(lake_dir)
        .map_err(|e| format!("cannot read {lake_dir}: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    entries.sort();
    for path in &entries {
        match read_table_file(path) {
            Ok(t) => tables.push(t),
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
    if tables.is_empty() {
        return Err(format!("no readable CSV tables under {lake_dir}"));
    }
    println!("loaded {} tables from {lake_dir}", tables.len());

    let embedder = HashEmbedder::new(dim);
    let mut lake =
        embed_tables(&embedder, &tables, &KeyColumnConfig::default()).map_err(|e| e.to_string())?;
    lake.columns.store_mut().normalize_all();
    println!(
        "embedded {} key columns / {} values",
        lake.columns.n_columns(),
        lake.columns.n_vectors()
    );

    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let built = PartitionedLake::build(
        &lake.columns,
        Euclidean,
        &PartitionConfig {
            k: partitions,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions::default(),
        &out_dir,
    )
    .map_err(|e| e.to_string())?;
    write_manifest(&out_dir, dim).map_err(|e| e.to_string())?;
    println!(
        "indexed into {} partitions ({:.1} MB) at {}",
        built.num_partitions(),
        built.disk_bytes().map_err(|e| e.to_string())? as f64 / 1e6,
        out_dir.display()
    );
    Ok(())
}

fn load_query(
    flags: &HashMap<String, String>,
    dim: usize,
) -> CliResult<(Vec<String>, HashEmbedder)> {
    let query_path = flags.get("query").ok_or("--query is required")?;
    let table = read_table_file(Path::new(query_path)).map_err(|e| e.to_string())?;
    let col = match flags.get("column") {
        Some(name) => table
            .column_index(name)
            .ok_or_else(|| format!("column '{name}' not in {query_path}"))?,
        None => {
            // Query tables may be tiny; don't apply the lake's minimum-rows gate.
            let cfg = KeyColumnConfig {
                min_rows: 1,
                ..Default::default()
            };
            pexeso_lake::keycol::detect_key_column(&table, &cfg)
                .ok_or("no key column detected; pass --column")?
        }
    };
    println!(
        "query: {} rows of {}.{}",
        table.n_rows(),
        table.name(),
        table.headers()[col]
    );
    Ok((table.column(col).to_vec(), HashEmbedder::new(dim)))
}

fn cmd_search(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let tau: f32 = flags
        .get("tau")
        .map_or(Ok(0.06), |v| v.parse().map_err(|e| format!("{e}")))?;
    let t: f64 = flags
        .get("t")
        .map_or(Ok(0.5), |v| v.parse().map_err(|e| format!("{e}")))?;
    let dim = read_manifest(&index_dir)?;
    let (values, embedder) = load_query(flags, dim)?;
    let query = embed_query(&embedder, &values);

    let lake = PartitionedLake::open(&index_dir).map_err(|e| e.to_string())?;
    let (hits, stats) = lake
        .search(
            Euclidean,
            query.store(),
            Tau::Ratio(tau),
            JoinThreshold::Ratio(t),
            SearchOptions::default(),
        )
        .map_err(|e| e.to_string())?;
    println!(
        "\n{} joinable columns (tau={tau}, T={t}) in {:?}:",
        hits.len(),
        stats.total_time
    );
    for h in hits {
        println!(
            "  {} . {}  ({} records matched)",
            h.table_name, h.column_name, h.match_count
        );
    }
    Ok(())
}

fn cmd_topk(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let tau: f32 = flags
        .get("tau")
        .map_or(Ok(0.06), |v| v.parse().map_err(|e| format!("{e}")))?;
    let k: usize = flags
        .get("k")
        .map_or(Ok(10), |v| v.parse().map_err(|e| format!("{e}")))?;
    let dim = read_manifest(&index_dir)?;
    let (values, embedder) = load_query(flags, dim)?;
    let query = embed_query(&embedder, &values);

    // Per-partition exact top-k, merged globally (count descending,
    // external id ascending) by the lake.
    let lake = PartitionedLake::open(&index_dir).map_err(|e| e.to_string())?;
    let (all, _stats) = lake
        .search_topk(
            Euclidean,
            query.store(),
            Tau::Ratio(tau),
            k,
            SearchOptions::default(),
        )
        .map_err(|e| e.to_string())?;
    println!("\ntop-{k} joinable columns (tau={tau}):");
    for h in all {
        println!(
            "  {} . {}  ({} records matched)",
            h.table_name, h.column_name, h.match_count
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "index" => cmd_index(&flags),
        "search" => cmd_search(&flags),
        "topk" => cmd_topk(&flags),
        _ => {
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
