//! `pexeso` — command-line joinable-table discovery over CSV data lakes.
//!
//! ```text
//! pexeso index   --lake <dir-of-csvs> --out <index-dir> [--dim 64] [--partitions 4] [--policy seq|par|par:N]
//! pexeso ingest  --index <index-dir> --lake <dir-of-csvs> [--addr <host:port>]
//! pexeso drop    --index <index-dir> --table <name> [--addr <host:port>]
//! pexeso compact --index <index-dir> [--partitions N] [--policy seq|par|par:N]
//! pexeso search  --index <index-dir> --query <csv> [--column <name>] [--tau 0.06] [--t 0.5] [--policy ...] [--trace]
//! pexeso topk    --index <index-dir> --query <csv> [--column <name>] [--tau 0.06] [--k 10] [--policy ...] [--trace]
//! pexeso serve   --index <index-dir> [--addr 127.0.0.1:7878 | --port <p>] [--workers 4] [--queue 64] [--soft-queue <n>] [--cache 4096] [--metrics-sample-rate 0.01] [--slow-log 8] [--log <level>] [--fault-profile <spec>]
//! pexeso query   --addr <host:port>[,<host:port>...] --query <csv> [--column <name>] [--tau 0.06] [--t 0.5 | --k 10] [--policy ...] [--trace]
//! pexeso query   --addr <host:port> --stats | --metrics | --slow | --health | --drain <replica> | --undrain <replica> | --reload [--reload-dir <dir>] | --apply [--shard N] | --shutdown
//! pexeso explain --index <index-dir> | --addr <host:port> --query <csv> [--column <name>] [--tau 0.06] [--t 0.5 | --k 10] [--policy ...] [--trace]
//! pexeso inspect --addr <host:port>
//! pexeso shard-plan  --index <index-dir> --shards <n>
//! pexeso shard-split --index <index-dir> --shards <n> --out <dir>
//! pexeso router  --map <shardmap.txt> [--addr 127.0.0.1:7900 | --port <p>] [--workers 4] [--queue 64] [--log <level>]
//! ```
//!
//! The offline step detects each table's key column, embeds it with the
//! deterministic character-level embedder, JSD-partitions the columns, and
//! persists one PEXESO index per partition plus a versioned manifest. The
//! online steps embed the query column with the same embedder and either
//! stream the partitions locally (`search`/`topk`, delta log included) or
//! talk to a resident `pexeso serve` daemon (`query`), which keeps the
//! partitions hot, caches results, and supports zero-downtime re-index via
//! `--reload`. Between full builds the lake stays maintainable online:
//! `ingest` appends new tables to the deployment's write-ahead delta log
//! in seconds (and, with `--addr`, tells a live daemon to publish them
//! without reloading its base snapshot), `drop` tombstones tables, and
//! `compact` folds the log into fresh base partitions.
//!
//! `query` accepts a comma-separated replica list in `--addr`: queries
//! then go through the retrying, failover-capable client, and the reply
//! is byte-identical whichever replica answered. `serve --fault-profile`
//! arms the deterministic fault-injection registry (dev/chaos-testing
//! only — never in production).
//!
//! Beyond one machine, `shard-split` cuts a built deployment into N
//! shard deployments by external-id range (`shard-plan` previews the
//! cut), each served by ordinary `pexeso serve` daemons, and `router`
//! runs the scatter-gather tier over the resulting shard map. The router
//! speaks the same protocol, so `pexeso query` works against it
//! unchanged — including `--apply --shard N` for routed live ingest
//! addressed at one shard's replicas.
//!
//! Observability: `--trace` on any online verb prints the per-phase span
//! tree (`map → block → verify → merge`, plus per-partition children);
//! against a daemon the server-side trace is requested over the wire and
//! merged with the client's attempt timeline. `query --metrics` scrapes
//! the Prometheus exposition, `query --slow` dumps the slow-query log,
//! and `serve --metrics-sample-rate` self-samples traces into that log.
//! `explain` runs one query with the plan plane on and prints the
//! candidate funnel; `inspect` dumps index statistics; `query --health`
//! reports readiness (a router rolls its shards into one fleet answer,
//! steerable with `--drain`/`--undrain`). `serve --log`/`router --log`
//! turn on JSON-lines structured logging on stderr; traced and explained
//! remote queries print the minted request id that correlates the client
//! with every log line the request produced on the way down.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pexeso::pipeline::{build_lake_index, embed_query, open_delta_lake};
use pexeso::prelude::*;
use std::time::Duration;

/// Shadow the crate's `Result` alias: CLI errors are plain strings.
type CliResult<T> = std::result::Result<T, String>;
use pexeso_lake::csv::read_table_file;
use pexeso_lake::keycol::KeyColumnConfig;
use pexeso_serve::{
    ResilientClient, ResilientConfig, RetryStats, ServeClient, ServeConfig, Server,
};

/// One legal flag of a subcommand.
struct FlagSpec {
    name: &'static str,
    /// `--flag value` when true, a bare `--flag` switch when false.
    takes_value: bool,
}

const fn val(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: true,
    }
}

const fn switch(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: false,
    }
}

const INDEX_FLAGS: &[FlagSpec] = &[
    val("lake"),
    val("out"),
    val("dim"),
    val("partitions"),
    val("policy"),
    switch("help"),
];
const INGEST_FLAGS: &[FlagSpec] = &[val("index"), val("lake"), val("addr"), switch("help")];
const DROP_FLAGS: &[FlagSpec] = &[val("index"), val("table"), val("addr"), switch("help")];
const COMPACT_FLAGS: &[FlagSpec] = &[
    val("index"),
    val("partitions"),
    val("policy"),
    switch("help"),
];
const SEARCH_FLAGS: &[FlagSpec] = &[
    val("index"),
    val("query"),
    val("column"),
    val("tau"),
    val("t"),
    val("policy"),
    val("budget"),
    val("deadline-ms"),
    switch("trace"),
    switch("help"),
];
const TOPK_FLAGS: &[FlagSpec] = &[
    val("index"),
    val("query"),
    val("column"),
    val("tau"),
    val("k"),
    val("policy"),
    val("budget"),
    val("deadline-ms"),
    switch("trace"),
    switch("help"),
];
const SERVE_FLAGS: &[FlagSpec] = &[
    val("index"),
    val("addr"),
    val("port"),
    val("workers"),
    val("queue"),
    val("soft-queue"),
    val("cache"),
    val("metrics-sample-rate"),
    val("slow-log"),
    val("log"),
    val("fault-profile"),
    switch("help"),
];
const QUERY_FLAGS: &[FlagSpec] = &[
    val("addr"),
    val("query"),
    val("column"),
    val("tau"),
    val("t"),
    val("k"),
    val("policy"),
    val("budget"),
    val("deadline-ms"),
    val("reload-dir"),
    val("shard"),
    val("drain"),
    val("undrain"),
    switch("trace"),
    switch("stats"),
    switch("metrics"),
    switch("slow"),
    switch("health"),
    switch("reload"),
    switch("apply"),
    switch("shutdown"),
    switch("help"),
];
const EXPLAIN_FLAGS: &[FlagSpec] = &[
    val("index"),
    val("addr"),
    val("query"),
    val("column"),
    val("tau"),
    val("t"),
    val("k"),
    val("policy"),
    val("budget"),
    val("deadline-ms"),
    switch("trace"),
    switch("help"),
];
const INSPECT_FLAGS: &[FlagSpec] = &[val("addr"), switch("help")];
const SHARD_PLAN_FLAGS: &[FlagSpec] = &[val("index"), val("shards"), switch("help")];
const SHARD_SPLIT_FLAGS: &[FlagSpec] = &[val("index"), val("shards"), val("out"), switch("help")];
const ROUTER_FLAGS: &[FlagSpec] = &[
    val("map"),
    val("addr"),
    val("port"),
    val("workers"),
    val("queue"),
    val("slow-log"),
    val("log"),
    switch("help"),
];

fn usage_text(cmd: &str) -> &'static str {
    match cmd {
        "index" => {
            "pexeso index --lake <dir-of-csvs> --out <index-dir> [--dim 64] [--partitions 4] [--policy seq|par|par:N]"
        }
        "ingest" => {
            "pexeso ingest --index <index-dir> --lake <dir-of-csvs> [--addr <host:port>]"
        }
        "drop" => "pexeso drop --index <index-dir> --table <name> [--addr <host:port>]",
        "compact" => {
            "pexeso compact --index <index-dir> [--partitions N] [--policy seq|par|par:N]"
        }
        "search" => {
            "pexeso search --index <index-dir> --query <csv> [--column <name>] [--tau 0.06] [--t 0.5] [--policy seq|par|par:N] [--budget <max-distances>] [--deadline-ms <ms>] [--trace]"
        }
        "topk" => {
            "pexeso topk --index <index-dir> --query <csv> [--column <name>] [--tau 0.06] [--k 10] [--policy seq|par|par:N] [--budget <max-distances>] [--deadline-ms <ms>] [--trace]"
        }
        "serve" => {
            "pexeso serve --index <index-dir> [--addr 127.0.0.1:7878 | --port <p>] [--workers 4] [--queue 64] [--soft-queue <n>] [--cache 4096] [--metrics-sample-rate <0..=1>] [--slow-log <n>] [--log error|warn|info|debug] [--fault-profile <point:after:action[:param],...>]"
        }
        "query" => {
            "pexeso query --addr <host:port>[,<host:port>...] --query <csv> [--column <name>] [--tau 0.06] [--t 0.5 | --k 10] [--policy seq|par|par:N] [--budget <max-distances>] [--deadline-ms <ms>] [--trace]\n\
             pexeso query --addr <host:port> --stats | --metrics | --slow | --health | --drain <replica> | --undrain <replica> | --reload [--reload-dir <dir>] | --apply [--shard N] | --shutdown"
        }
        "explain" => {
            "pexeso explain --index <index-dir> | --addr <host:port> --query <csv> [--column <name>] [--tau 0.06] [--t 0.5 | --k 10] [--policy seq|par|par:N] [--budget <max-distances>] [--deadline-ms <ms>] [--trace]"
        }
        "inspect" => "pexeso inspect --addr <host:port>",
        "shard-plan" => "pexeso shard-plan --index <index-dir> --shards <n>",
        "shard-split" => "pexeso shard-split --index <index-dir> --shards <n> --out <dir>",
        "router" => {
            "pexeso router --map <shardmap.txt> [--addr 127.0.0.1:7900 | --port <p>] [--workers 4] [--queue 64] [--slow-log 8] [--log error|warn|info|debug]"
        }
        _ => "",
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}",
        usage_text("index"),
        usage_text("ingest"),
        usage_text("drop"),
        usage_text("compact"),
        usage_text("search"),
        usage_text("topk"),
        usage_text("serve"),
        usage_text("query"),
        usage_text("explain"),
        usage_text("inspect"),
        usage_text("shard-plan"),
        usage_text("shard-split"),
        usage_text("router"),
    );
    ExitCode::from(2)
}

/// Spec-driven `--flag [value]` parser: rejects unknown flags (naming the
/// subcommand), rejects duplicates instead of silently keeping the last
/// occurrence, and supports value-less switches like `--help`. Switches
/// are stored with an empty value.
fn parse_flags(
    cmd: &str,
    specs: &[FlagSpec],
    args: &[String],
) -> CliResult<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let spec = specs.iter().find(|s| s.name == key).ok_or_else(|| {
            format!("unknown flag --{key} for subcommand '{cmd}' (see '{cmd} --help')")
        })?;
        if map.contains_key(key) {
            return Err(format!("duplicate flag --{key}"));
        }
        if spec.takes_value {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), value.clone());
            i += 2;
        } else {
            map.insert(key.to_string(), String::new());
            i += 1;
        }
    }
    Ok(map)
}

fn parse_or<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> CliResult<T>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad --{key} '{v}': {e}")),
    }
}

/// The `--policy seq|par|par:N` flag shared by every subcommand.
fn parse_policy(flags: &HashMap<String, String>) -> CliResult<ExecPolicy> {
    match flags.get("policy") {
        None => Ok(ExecPolicy::Sequential),
        Some(v) => ExecPolicy::parse(v).map_err(|e| e.to_string()),
    }
}

/// The optional `--budget <max-distances>` / `--deadline-ms <ms>` pair
/// shared by every online subcommand.
fn parse_budget(flags: &HashMap<String, String>) -> CliResult<QueryBudget> {
    let max: Option<u64> = match flags.get("budget") {
        None => None,
        Some(v) => Some(v.parse().map_err(|e| format!("bad --budget '{v}': {e}"))?),
    };
    let deadline: Option<u64> = match flags.get("deadline-ms") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|e| format!("bad --deadline-ms '{v}': {e}"))?,
        ),
    };
    Ok(QueryBudget {
        max_distance_computations: max,
        deadline: deadline.map(Duration::from_millis),
    })
}

/// The `--trace` switch: per-partition detail locally, because it is
/// free to render; the same level remotely so server and local traces
/// line up.
fn parse_trace(flags: &HashMap<String, String>) -> TraceLevel {
    if flags.contains_key("trace") {
        TraceLevel::Detail
    } else {
        TraceLevel::Off
    }
}

/// Print a response's span tree, if one was requested and attached.
fn print_trace(resp: &QueryResponse) {
    if let Some(trace) = &resp.trace {
        println!("\ntrace (offsets/durations in us):");
        print!("{}", trace.render());
    }
}

/// Flag a budget-limited partial answer so it is never mistaken for the
/// exact one.
fn outcome_suffix(resp: &QueryResponse) -> &'static str {
    match resp.outcome {
        QueryOutcome::Exact => "",
        QueryOutcome::Exceeded(Exceeded::DistanceComputations) => {
            ", PARTIAL: distance budget exceeded"
        }
        QueryOutcome::Exceeded(Exceeded::Deadline) => ", PARTIAL: deadline exceeded",
    }
}

/// Read every CSV under `lake_dir` (sorted, unreadable files skipped with
/// a warning) — shared by `index` and `ingest`.
fn load_csv_tables(lake_dir: &str) -> CliResult<Vec<pexeso_lake::table::Table>> {
    let mut tables = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(lake_dir)
        .map_err(|e| format!("cannot read {lake_dir}: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    entries.sort();
    for path in &entries {
        match read_table_file(path) {
            Ok(t) => tables.push(t),
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
    if tables.is_empty() {
        return Err(format!("no readable CSV tables under {lake_dir}"));
    }
    Ok(tables)
}

fn cmd_index(flags: &HashMap<String, String>) -> CliResult<()> {
    let lake_dir = flags.get("lake").ok_or("--lake is required")?;
    let out_dir = PathBuf::from(flags.get("out").ok_or("--out is required")?);
    let dim: usize = parse_or(flags, "dim", 64)?;
    let partitions: usize = parse_or(flags, "partitions", 4)?;
    let policy = parse_policy(flags)?;

    let tables = load_csv_tables(lake_dir)?;
    println!("loaded {} tables from {lake_dir}", tables.len());

    let embedder = HashEmbedder::new(dim);
    let deployed = build_lake_index(
        &tables,
        &embedder,
        "hash",
        &KeyColumnConfig::default(),
        &out_dir,
        partitions,
        policy,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "embedded {} key columns / {} values",
        deployed.n_columns, deployed.n_vectors
    );
    println!(
        "indexed into {} partitions ({:.1} MB) at {} (index_version={})",
        deployed.lake.num_partitions(),
        deployed.lake.disk_bytes().map_err(|e| e.to_string())? as f64 / 1e6,
        out_dir.display(),
        deployed.manifest.index_version,
    );
    Ok(())
}

/// Notify a live daemon that the delta log changed: one APPLY round-trip.
fn notify_daemon(addr: &str) -> CliResult<()> {
    let client =
        ServeClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let (generation, delta_columns, tombstones) =
        client.apply_delta().map_err(|e| e.to_string())?;
    println!(
        "daemon at {addr} published generation {generation} \
         ({delta_columns} delta columns, {tombstones} tombstoned tables)"
    );
    Ok(())
}

fn cmd_ingest(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let lake_dir = flags.get("lake").ok_or("--lake is required")?;
    let tables = load_csv_tables(lake_dir)?;
    let manifest = pexeso_core::outofcore::LakeManifest::read(&index_dir)
        .map_err(|e| format!("cannot read manifest in {}: {e}", index_dir.display()))?;
    let embedder = HashEmbedder::new(manifest.dim);
    let report = pexeso::pipeline::ingest_tables(
        &index_dir,
        &tables,
        &embedder,
        &KeyColumnConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "ingested {} columns / {} values into the delta log \
         (external ids {}..{}, {} records total)",
        report.columns_added,
        report.vectors_added,
        report.first_external_id,
        report.next_external_id,
        report.log_records,
    );
    if let Some(addr) = flags.get("addr") {
        notify_daemon(addr)?;
    }
    Ok(())
}

fn cmd_drop(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let table = flags.get("table").ok_or("--table is required")?;
    let n = pexeso::pipeline::drop_lake_tables(&index_dir, std::slice::from_ref(table))
        .map_err(|e| e.to_string())?;
    println!("tombstoned {n} table(s); space reclaimed at the next compact");
    if let Some(addr) = flags.get("addr") {
        notify_daemon(addr)?;
    }
    Ok(())
}

fn cmd_compact(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let partitions: Option<usize> = match flags.get("partitions") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|e| format!("bad --partitions '{v}': {e}"))?,
        ),
    };
    let policy = parse_policy(flags)?;
    let report = pexeso::pipeline::compact_lake(&index_dir, partitions, policy)
        .map_err(|e| e.to_string())?;
    println!(
        "compacted {} records into {} partitions: {} columns / {} vectors live \
         ({} dropped), index_version={}",
        report.records_folded,
        report.n_partitions,
        report.n_columns,
        report.n_vectors,
        report.columns_dropped,
        report.index_version,
    );
    println!("serving daemons pick the new base up via --reload (or --apply)");
    Ok(())
}

fn load_query(
    flags: &HashMap<String, String>,
    dim: usize,
) -> CliResult<(Vec<String>, HashEmbedder)> {
    let query_path = flags.get("query").ok_or("--query is required")?;
    let table = read_table_file(Path::new(query_path)).map_err(|e| e.to_string())?;
    let col = match flags.get("column") {
        Some(name) => table
            .column_index(name)
            .ok_or_else(|| format!("column '{name}' not in {query_path}"))?,
        None => {
            // Query tables may be tiny; don't apply the lake's minimum-rows gate.
            let cfg = KeyColumnConfig {
                min_rows: 1,
                ..Default::default()
            };
            pexeso_lake::keycol::detect_key_column(&table, &cfg)
                .ok_or("no key column detected; pass --column")?
        }
    };
    println!(
        "query: {} rows of {}.{}",
        table.n_rows(),
        table.name(),
        table.headers()[col]
    );
    Ok((table.column(col).to_vec(), HashEmbedder::new(dim)))
}

fn print_hits<'a>(hits: impl IntoIterator<Item = &'a GlobalHit>) {
    for h in hits {
        println!(
            "  {} . {}  ({} records matched)",
            h.table_name, h.column_name, h.match_count
        );
    }
}

fn cmd_search(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let tau: f32 = parse_or(flags, "tau", 0.06)?;
    let t: f64 = parse_or(flags, "t", 0.5)?;
    let policy = parse_policy(flags)?;
    // Delta-aware open: tables ingested since the last build are part of
    // the answer, tombstoned ones are not.
    let lake = open_delta_lake(&index_dir).map_err(|e| e.to_string())?;
    let manifest = lake.manifest().clone();
    let (values, embedder) = load_query(flags, manifest.dim)?;
    let query = embed_query(&embedder, &values);

    let q = Query::threshold(Tau::Ratio(tau), JoinThreshold::Ratio(t))
        .with_exec(policy)
        .with_policy(policy)
        .expect_metric(&manifest.metric)
        .with_budget(parse_budget(flags)?)
        .with_trace(parse_trace(flags));
    let resp = lake.execute(&q, query.store()).map_err(|e| e.to_string())?;
    println!(
        "\n{} joinable columns (tau={tau}, T={t}) in {:?}{}:",
        resp.hits.len(),
        resp.stats.total_time,
        outcome_suffix(&resp)
    );
    print_hits(&resp.hits);
    print_trace(&resp);
    Ok(())
}

fn cmd_topk(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let tau: f32 = parse_or(flags, "tau", 0.06)?;
    let k: usize = parse_or(flags, "k", 10)?;
    let policy = parse_policy(flags)?;
    let lake = open_delta_lake(&index_dir).map_err(|e| e.to_string())?;
    let manifest = lake.manifest().clone();
    let (values, embedder) = load_query(flags, manifest.dim)?;
    let query = embed_query(&embedder, &values);

    // Per-partition exact top-k, merged globally (count descending,
    // external id ascending) by the lake's unified executor.
    let q = Query::topk(Tau::Ratio(tau), k)
        .with_exec(policy)
        .with_policy(policy)
        .expect_metric(&manifest.metric)
        .with_budget(parse_budget(flags)?)
        .with_trace(parse_trace(flags));
    let resp = lake.execute(&q, query.store()).map_err(|e| e.to_string())?;
    println!(
        "\ntop-{k} joinable columns (tau={tau}){}:",
        outcome_suffix(&resp)
    );
    print_hits(&resp.hits);
    print_trace(&resp);
    Ok(())
}

/// Arm the process-wide structured logger from a `--log <level>` flag
/// (no flag and `--log off` leave it disabled: one relaxed load per
/// would-be call site).
fn init_logging(flags: &HashMap<String, String>) -> CliResult<()> {
    if let Some(spec) = flags.get("log") {
        match pexeso_core::log::LogLevel::parse(spec) {
            Some(Some(level)) => {
                pexeso_core::log::init_stderr(level);
            }
            Some(None) => {}
            None => return Err(format!("bad --log '{spec}' (error|warn|info|debug|off)")),
        }
    }
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let addr = match (flags.get("addr"), flags.get("port")) {
        (Some(_), Some(_)) => return Err("--addr and --port are mutually exclusive".into()),
        (Some(addr), None) => addr.clone(),
        (None, Some(port)) => format!("127.0.0.1:{port}"),
        (None, None) => "127.0.0.1:7878".to_string(),
    };
    let soft_watermark: Option<usize> = match flags.get("soft-queue") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|e| format!("bad --soft-queue '{v}': {e}"))?,
        ),
    };
    let default = ServeConfig::default();
    let config = ServeConfig {
        workers: parse_or(flags, "workers", 4)?,
        queue_capacity: parse_or(flags, "queue", 64)?,
        queue_soft_watermark: soft_watermark,
        cache_capacity: parse_or(flags, "cache", 4096)?,
        metrics_sample_rate: parse_or(flags, "metrics-sample-rate", default.metrics_sample_rate)?,
        slow_log_capacity: parse_or(flags, "slow-log", default.slow_log_capacity)?,
        ..default
    };
    let workers = config.workers;
    // Dev-only: arm deterministic faults in this process before the
    // daemon starts, so chaos tests can crash it at a chosen point.
    if let Some(profile) = flags.get("fault-profile") {
        pexeso_core::fault::arm_profile(profile).map_err(|e| format!("--fault-profile: {e}"))?;
        eprintln!("pexeso serve: FAULT INJECTION ARMED ({profile}) — dev/chaos use only");
    }
    init_logging(flags)?;
    let handle = Server::start(&index_dir, addr.as_str(), config).map_err(|e| e.to_string())?;
    println!(
        "pexeso serve: listening on {} ({} workers, index {})",
        handle.addr(),
        workers,
        index_dir.display()
    );
    // Runs until a client sends SHUTDOWN (`pexeso query --addr ... --shutdown`).
    handle.join();
    pexeso_core::log::flush();
    println!("pexeso serve: shut down");
    Ok(())
}

/// Preview how `shard-split` would cut the deployment: print the shard
/// map (with `-` replica placeholders) without writing anything.
fn cmd_shard_plan(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let shards: usize = parse_or(flags, "shards", 2)?;
    let map = pexeso_router::plan_shards(&index_dir, shards).map_err(|e| e.to_string())?;
    print!("{}", map.render());
    Ok(())
}

/// Cut a built deployment into per-shard deployment directories plus a
/// `shardmap.txt` the operator fills replica addresses into.
fn cmd_shard_split(flags: &HashMap<String, String>) -> CliResult<()> {
    let index_dir = PathBuf::from(flags.get("index").ok_or("--index is required")?);
    let out_dir = PathBuf::from(flags.get("out").ok_or("--out is required")?);
    let shards: usize = parse_or(flags, "shards", 2)?;
    let map = pexeso_router::split_lake(&index_dir, shards, &out_dir).map_err(|e| e.to_string())?;
    println!(
        "split {} into {} shard deployments under {}:",
        index_dir.display(),
        map.len(),
        out_dir.display()
    );
    print!("{}", map.render());
    println!(
        "fill in replica addresses in {} and start `pexeso serve` per shard directory, \
         then `pexeso router --map {}`",
        out_dir.join(pexeso_router::SHARD_MAP_FILE).display(),
        out_dir.join(pexeso_router::SHARD_MAP_FILE).display()
    );
    Ok(())
}

/// Run the scatter-gather router daemon over a shard map.
fn cmd_router(flags: &HashMap<String, String>) -> CliResult<()> {
    let map_path = PathBuf::from(flags.get("map").ok_or("--map is required")?);
    let addr = match (flags.get("addr"), flags.get("port")) {
        (Some(_), Some(_)) => return Err("--addr and --port are mutually exclusive".into()),
        (Some(addr), None) => addr.clone(),
        (None, Some(port)) => format!("127.0.0.1:{port}"),
        (None, None) => "127.0.0.1:7900".to_string(),
    };
    let default = pexeso_router::RouterServeConfig::default();
    let config = pexeso_router::RouterServeConfig {
        workers: parse_or(flags, "workers", default.workers)?,
        queue_capacity: parse_or(flags, "queue", default.queue_capacity)?,
        slow_log_capacity: parse_or(flags, "slow-log", default.slow_log_capacity)?,
        ..default
    };
    let workers = config.workers;
    init_logging(flags)?;
    let handle = pexeso_router::RouterServer::start(&map_path, addr.as_str(), config)
        .map_err(|e| e.to_string())?;
    println!(
        "pexeso router: listening on {} ({} workers, {} shards, map {})",
        handle.addr(),
        workers,
        handle.router().shard_count(),
        map_path.display()
    );
    // Runs until a client sends SHUTDOWN (`pexeso query --addr ... --shutdown`).
    handle.join();
    pexeso_core::log::flush();
    println!("pexeso router: shut down");
    Ok(())
}

/// Connect to the first reachable replica and fetch the lake facts the
/// query embedding needs (the dimension). Replicas serve one deployment,
/// so any of them is authoritative.
fn probe_info(addrs: &[String]) -> CliResult<pexeso_serve::InfoReply> {
    let mut last = String::from("no address given");
    for addr in addrs {
        match ServeClient::connect(addr.as_str())
            .map_err(|e| e.to_string())
            .and_then(|c| c.info().map_err(|e| e.to_string()))
        {
            Ok(info) => return Ok(info),
            Err(e) => last = format!("{addr}: {e}"),
        }
    }
    Err(format!("no replica reachable ({last})"))
}

fn cmd_query(flags: &HashMap<String, String>) -> CliResult<()> {
    // `--addr` takes a comma-separated replica list; queries fail over
    // between them, admin verbs address exactly one daemon.
    let addrs: Vec<String> = flags
        .get("addr")
        .ok_or("--addr is required")?
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err("--addr needs at least one host:port".into());
    }
    let addr = &addrs[0];
    // Exactly one mode: at most one admin verb, no silently-ignored flags.
    let admin_verbs: Vec<&str> = [
        "stats",
        "metrics",
        "slow",
        "health",
        "drain",
        "undrain",
        "shutdown",
        "reload",
        "reload-dir",
        "apply",
    ]
    .into_iter()
    .filter(|v| flags.contains_key(*v))
    .collect();
    if admin_verbs.len() > 1 && admin_verbs != ["reload", "reload-dir"] {
        return Err(format!(
            "--{} and --{} are mutually exclusive",
            admin_verbs[0], admin_verbs[1]
        ));
    }
    if !admin_verbs.is_empty() {
        for q in [
            "query",
            "column",
            "tau",
            "t",
            "k",
            "policy",
            "budget",
            "deadline-ms",
            "trace",
        ] {
            if flags.contains_key(q) {
                return Err(format!(
                    "--{q} cannot be combined with --{}",
                    admin_verbs[0]
                ));
            }
        }
    }
    if flags.contains_key("t") && flags.contains_key("k") {
        return Err("--t (threshold search) and --k (top-k) are mutually exclusive".into());
    }
    if flags.contains_key("shard") && !flags.contains_key("apply") {
        return Err("--shard only addresses routed ingest; combine it with --apply".into());
    }
    if !admin_verbs.is_empty() && addrs.len() > 1 {
        return Err(format!(
            "--{} addresses one daemon; pass a single --addr",
            admin_verbs[0]
        ));
    }

    if !admin_verbs.is_empty() {
        let client = ServeClient::connect(addr.as_str())
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        return run_admin_verb(flags, addr, &client);
    }

    let tau: f32 = parse_or(flags, "tau", 0.06)?;
    let policy = parse_policy(flags)?;
    let budget = parse_budget(flags)?;
    let info = probe_info(&addrs)?;
    let (values, embedder) = load_query(flags, info.dim as usize)?;
    let query = embed_query(&embedder, &values);

    let t: f64 = parse_or(flags, "t", 0.5)?;
    let q = if let Some(k) = flags.get("k") {
        let k: usize = k.parse().map_err(|e| format!("bad --k '{k}': {e}"))?;
        Query::topk(Tau::Ratio(tau), k)
    } else {
        Query::threshold(Tau::Ratio(tau), JoinThreshold::Ratio(t))
    }
    .with_policy(policy)
    .expect_metric("euclidean")
    .with_budget(budget)
    .with_trace(parse_trace(flags));
    // A traced query is someone debugging: mint the correlation id at the
    // outermost hop and print it, so the operator can grep the same rid
    // out of the router log, every shard log, and the SLOW entry.
    let q = if q.trace.enabled() {
        let rid = pexeso_core::log::mint_request_id();
        println!("request id: {}", pexeso_core::log::fmt_request_id(rid));
        q.with_request_id(rid)
    } else {
        q
    };

    if addrs.len() == 1 {
        // One daemon: the detailed client surfaces the serve-side
        // generation and cache-hit flag alongside the unified reply.
        let client = ServeClient::connect(addr.as_str())
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let (resp, meta) = client
            .execute_detailed(&q, query.store())
            .map_err(|e| e.to_string())?;
        match q.mode {
            QueryMode::Topk(k) => println!(
                "\ntop-{k} joinable columns (tau={tau}, snapshot generation {}{}{}):",
                meta.generation,
                if meta.cached { ", cached" } else { "" },
                outcome_suffix(&resp)
            ),
            QueryMode::Threshold(_) => println!(
                "\n{} joinable columns (tau={tau}, T={t}, snapshot generation {}{}{}):",
                resp.hits.len(),
                meta.generation,
                if meta.cached { ", cached" } else { "" },
                outcome_suffix(&resp)
            ),
        }
        print_hits(&resp.hits);
        print_trace(&resp);
        return Ok(());
    }

    // Replica set: the resilient client retries with jittered backoff,
    // fails over between addresses, and never retries past the deadline.
    // Exactness makes the failover invisible: every replica serves the
    // same deployment, so the reply is byte-identical regardless of which
    // one answered.
    let resilient =
        ResilientClient::new(&addrs, ResilientConfig::default()).map_err(|e| e.to_string())?;
    let remote: &dyn Queryable = &resilient;
    let resp = remote
        .execute(&q, query.store())
        .map_err(|e| e.to_string())?;
    match q.mode {
        QueryMode::Topk(k) => println!(
            "\ntop-{k} joinable columns (tau={tau}, {} replicas{}):",
            addrs.len(),
            outcome_suffix(&resp)
        ),
        QueryMode::Threshold(_) => println!(
            "\n{} joinable columns (tau={tau}, T={t}, {} replicas{}):",
            resp.hits.len(),
            addrs.len(),
            outcome_suffix(&resp)
        ),
    }
    print_hits(&resp.hits);
    print_trace(&resp);
    let s = resilient.stats();
    if s != RetryStats::default() {
        println!(
            "client resilience: retries={} failovers={} busy={} shed={} \
             desyncs={} deadline_stops={} circuit_opens={}",
            s.retries, s.failovers, s.busy, s.shed, s.desyncs, s.deadline_stops, s.circuit_opens
        );
    }
    Ok(())
}

/// Run one query with the explain plane on and print the candidate
/// funnel alongside the hits. Local (`--index`) runs explain the
/// delta-aware lake; remote (`--addr`) ones carry the report back over
/// the wire from the daemon or router that executed — a router's report
/// is the stage-wise fold of every shard's funnel.
fn cmd_explain(flags: &HashMap<String, String>) -> CliResult<()> {
    match (flags.get("index"), flags.get("addr")) {
        (Some(_), Some(_)) => return Err("--index and --addr are mutually exclusive".into()),
        (None, None) => {
            return Err("pass --index <dir> (local) or --addr <host:port> (daemon/router)".into())
        }
        _ => {}
    }
    if flags.contains_key("t") && flags.contains_key("k") {
        return Err("--t (threshold search) and --k (top-k) are mutually exclusive".into());
    }
    let tau: f32 = parse_or(flags, "tau", 0.06)?;
    let t: f64 = parse_or(flags, "t", 0.5)?;
    let policy = parse_policy(flags)?;
    let build_query = |metric: &str| -> CliResult<Query> {
        let q = if let Some(k) = flags.get("k") {
            let k: usize = k.parse().map_err(|e| format!("bad --k '{k}': {e}"))?;
            Query::topk(Tau::Ratio(tau), k)
        } else {
            Query::threshold(Tau::Ratio(tau), JoinThreshold::Ratio(t))
        }
        .with_policy(policy)
        .expect_metric(metric)
        .with_budget(parse_budget(flags)?)
        .with_trace(parse_trace(flags))
        .with_explain(true);
        Ok(q)
    };

    let resp = if let Some(index) = flags.get("index") {
        let lake = open_delta_lake(Path::new(index)).map_err(|e| e.to_string())?;
        let manifest = lake.manifest().clone();
        let (values, embedder) = load_query(flags, manifest.dim)?;
        let query = embed_query(&embedder, &values);
        let q = build_query(&manifest.metric)?.with_exec(policy);
        lake.execute(&q, query.store()).map_err(|e| e.to_string())?
    } else {
        let addr = flags.get("addr").expect("checked above").clone();
        let info = probe_info(std::slice::from_ref(&addr))?;
        let (values, embedder) = load_query(flags, info.dim as usize)?;
        let query = embed_query(&embedder, &values);
        // Explained queries always get a correlation id: the funnel on
        // this side, the log lines on the server side, one handle.
        let rid = pexeso_core::log::mint_request_id();
        println!("request id: {}", pexeso_core::log::fmt_request_id(rid));
        let q = build_query("euclidean")?.with_request_id(rid);
        let client = ServeClient::connect(addr.as_str())
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let (resp, _meta) = client
            .execute_detailed(&q, query.store())
            .map_err(|e| e.to_string())?;
        resp
    };

    println!(
        "\n{} joinable columns (tau={tau}){}:",
        resp.hits.len(),
        outcome_suffix(&resp)
    );
    print_hits(&resp.hits);
    match &resp.explain {
        Some(report) => {
            println!("\nquery plan:");
            print!("{}", report.render());
        }
        // The daemon answered a pre-explain frame (old server) — say so
        // rather than printing an empty plan.
        None => println!("\n(server returned no explain report; is it running an older build?)"),
    }
    print_trace(&resp);
    Ok(())
}

/// Dump index statistics (`INSPECT`) from a daemon or router: partition
/// occupancy histograms, pivot spread, delta-overlay depth — the same
/// numbers METRICS exposes as `pexeso_index_*` gauges, as text.
fn cmd_inspect(flags: &HashMap<String, String>) -> CliResult<()> {
    let addr = flags.get("addr").ok_or("--addr is required")?;
    let client = ServeClient::connect(addr.as_str())
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    print!("{}", client.inspect_text().map_err(|e| e.to_string())?);
    Ok(())
}

/// Dispatch one admin verb (`--stats`, `--shutdown`, `--reload`,
/// `--apply`) on a connected daemon.
fn run_admin_verb(
    flags: &HashMap<String, String>,
    addr: &str,
    client: &ServeClient,
) -> CliResult<()> {
    if flags.contains_key("stats") {
        print!("{}", client.stats_text().map_err(|e| e.to_string())?);
        return Ok(());
    }
    if flags.contains_key("metrics") {
        print!("{}", client.metrics_text().map_err(|e| e.to_string())?);
        return Ok(());
    }
    if flags.contains_key("slow") {
        let text = client.slow_log_text().map_err(|e| e.to_string())?;
        if text.is_empty() {
            println!(
                "slow-query log is empty (traced or sampled queries feed it; \
                 see serve --metrics-sample-rate)"
            );
        } else {
            print!("{text}");
        }
        return Ok(());
    }
    if flags.contains_key("health") {
        print!("{}", client.health_text().map_err(|e| e.to_string())?);
        return Ok(());
    }
    if let Some(replica) = flags.get("drain") {
        print!(
            "{}",
            client.drain(replica, true).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if let Some(replica) = flags.get("undrain") {
        print!(
            "{}",
            client.drain(replica, false).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if flags.contains_key("shutdown") {
        client.shutdown().map_err(|e| e.to_string())?;
        println!("server at {addr} is shutting down");
        return Ok(());
    }
    if flags.contains_key("reload") || flags.contains_key("reload-dir") {
        let dir = flags.get("reload-dir").map(PathBuf::from);
        let (generation, partitions) = client.reload(dir.as_deref()).map_err(|e| e.to_string())?;
        println!("reloaded: generation {generation}, {partitions} partitions");
        return Ok(());
    }
    if flags.contains_key("apply") {
        // `--shard N` rides the V5 APPLY tail: against a router it names
        // the shard whose replicas should apply their delta log; a plain
        // `--apply` stays the historical bare V3 frame.
        let shard: Option<u32> = match flags.get("shard") {
            None => None,
            Some(v) => Some(v.parse().map_err(|e| format!("bad --shard '{v}': {e}"))?),
        };
        let (generation, delta_columns, tombstones) =
            client.apply_delta_shard(shard).map_err(|e| e.to_string())?;
        println!(
            "applied delta log: generation {generation}, \
             {delta_columns} delta columns, {tombstones} tombstoned tables"
        );
        return Ok(());
    }
    unreachable!("caller dispatches here only with an admin verb present")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let specs = match cmd.as_str() {
        "index" => INDEX_FLAGS,
        "ingest" => INGEST_FLAGS,
        "drop" => DROP_FLAGS,
        "compact" => COMPACT_FLAGS,
        "search" => SEARCH_FLAGS,
        "topk" => TOPK_FLAGS,
        "serve" => SERVE_FLAGS,
        "query" => QUERY_FLAGS,
        "explain" => EXPLAIN_FLAGS,
        "inspect" => INSPECT_FLAGS,
        "shard-plan" => SHARD_PLAN_FLAGS,
        "shard-split" => SHARD_SPLIT_FLAGS,
        "router" => ROUTER_FLAGS,
        _ => return usage(),
    };
    let flags = match parse_flags(cmd, specs, &args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if flags.contains_key("help") {
        println!("usage: {}", usage_text(cmd));
        return ExitCode::SUCCESS;
    }
    let result = match cmd.as_str() {
        "index" => cmd_index(&flags),
        "ingest" => cmd_ingest(&flags),
        "drop" => cmd_drop(&flags),
        "compact" => cmd_compact(&flags),
        "search" => cmd_search(&flags),
        "topk" => cmd_topk(&flags),
        "serve" => cmd_serve(&flags),
        "query" => cmd_query(&flags),
        "explain" => cmd_explain(&flags),
        "inspect" => cmd_inspect(&flags),
        "shard-plan" => cmd_shard_plan(&flags),
        "shard-split" => cmd_shard_split(&flags),
        "router" => cmd_router(&flags),
        _ => unreachable!("subcommand validated above"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
